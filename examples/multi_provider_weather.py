#!/usr/bin/env python3
"""A shared network-weather barometer across competing providers (§3.1).

Three "five computer" entities (think Netflix / YouTube / a large cloud)
each measure congestion toward the same destination region on their own
infrastructure.  None will reveal its raw telemetry to the others — but
all benefit from a common barometer.  The example:

1. runs three independent dumbbell simulations at different load levels,
   one per provider, and takes each provider's private utilization;
2. combines the three private values through additive-secret-sharing
   secure aggregation (only the mean is ever revealed);
3. keys each provider's Phi policy off the shared barometer and shows a
   provider that *locally* looks idle still behaving conservatively
   because the region as a whole is running hot.

Run:  python examples/multi_provider_weather.py
"""

import numpy as np

from repro.experiments import run_cubic_fixed
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import REFERENCE_POLICY, CongestionContext, SecureCongestionAggregation
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import OnOffConfig

PROVIDERS = {
    "streamco": OnOffConfig(mean_on_bytes=900_000, mean_off_s=0.3),   # busy
    "videotube": OnOffConfig(mean_on_bytes=700_000, mean_off_s=0.6),  # busy
    "cloudnine": OnOffConfig(mean_on_bytes=100_000, mean_off_s=3.0),  # quiet
}


def measure_private_utilization():
    """Each provider measures congestion on its own infrastructure."""
    measured = {}
    for i, (provider, workload) in enumerate(PROVIDERS.items()):
        preset = ScenarioPreset(
            name=provider,
            config=DumbbellConfig(n_senders=10),
            workload=workload,
            duration_s=20.0,
            description="",
        )
        result = run_cubic_fixed(CubicParams.default(), preset, seed=100 + i)
        measured[provider] = result.mean_utilization
    return measured


def main():
    print("== Step 1: private measurements ==")
    measured = measure_private_utilization()
    for provider, utilization in measured.items():
        print(f"  {provider:<10s} sees utilization {utilization:.2f} "
              f"(kept private)")

    print("\n== Step 2: secure aggregation (only the mean is revealed) ==")
    protocol = SecureCongestionAggregation(
        ["aggregator-a", "aggregator-b"], np.random.default_rng(31)
    )
    for provider, utilization in measured.items():
        protocol.submit(provider, utilization)
    barometer = protocol.reveal_mean()
    print(f"  shared barometer: mean utilization = {barometer:.2f} "
          f"across {protocol.round_size} providers")
    partial = protocol.aggregators[0].partial_sum
    print(f"  (a single aggregator's view is just noise: {partial})")

    print("\n== Step 3: every provider keys its policy off the barometer ==")
    for provider, local in measured.items():
        local_ctx = CongestionContext(local, 0.0, 0.0)
        shared_ctx = CongestionContext(barometer, 0.0, 0.0)
        local_params = REFERENCE_POLICY.params_for(local_ctx)
        shared_params = REFERENCE_POLICY.params_for(shared_ctx)
        note = ""
        if shared_ctx.level().rank > local_ctx.level().rank:
            note = "  <- more conservative than its local view alone"
        print(f"  {provider:<10s} local level {local_ctx.level().value:<9s}"
              f" shared level {shared_ctx.level().value:<9s}"
              f" ssthresh {local_params.initial_ssthresh:.0f} -> "
              f"{shared_params.initial_ssthresh:.0f}{note}")


if __name__ == "__main__":
    main()

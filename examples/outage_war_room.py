#!/usr/bin/env python3
"""Outage war room: cross-client diagnosis and user-facing prediction.

The paper's Section 3.4/3.5 story end to end:

1. A global cloud service's request telemetry (sliced by client AS,
   metro, and service) suffers a 2-hour unreachability event on one ISP
   in one metro — invisible to any single client, obvious in aggregate.
2. The provider's detector finds the dips, localizes the event to the
   (AS, metro) pair, and names the affected population.
3. Meanwhile the performance predictor — fed by other clients'
   observations — warns users in the affected location before they place
   a VoIP call.

Run:  python examples/outage_war_room.py
"""

import numpy as np

from repro.diagnosis import (
    OutageSpec,
    TelemetryConfig,
    TelemetryGenerator,
    UnreachabilityDetector,
    localize,
)
from repro.prediction import (
    ObservationStore,
    PerfObservation,
    PerformancePredictor,
)


def run_diagnosis():
    config = TelemetryConfig()
    train_bins = 3 * config.bins_per_day
    bins_2h = 120 // config.bin_minutes
    outage = OutageSpec(
        start_bin=train_bins + 150,
        duration_bins=bins_2h,
        severity=0.9,
        asn="isp-c",
        metro="lon",
    )
    print("== Step 1: telemetry with a hidden outage ==")
    print(f"{len(config.slice_keys())} telemetry slices "
          f"({len(config.ases)} ASes x {len(config.metros)} metros x "
          f"{len(config.services)} services), 5-minute bins")
    print("injected: isp-c in lon, 2 hours, 90% of requests lost\n")

    generator = TelemetryGenerator(config, np.random.default_rng(99), [outage])
    series = generator.generate(train_bins + config.bins_per_day)

    print("== Step 2: detect and localize ==")
    detector = UnreachabilityDetector(config.bins_per_day)
    dips = detector.detect(series, train_bins)
    print(f"per-slice dips flagged: {len(dips)}")
    events = localize(dips, config.slice_keys())
    for event in events:
        hours = event.duration_bins * config.bin_minutes / 60
        print(f"localized event: {event.describe()}  "
              f"(~{hours:.1f} h, mean drop {event.mean_drop_fraction:.0%}, "
              f"{event.affected_slices} slices affected)")
    print()
    return events


def run_prediction(events):
    print("== Step 3: warn users before they call ==")
    store = ObservationStore()
    rng = np.random.default_rng(7)
    # Healthy locations: the provider's other connections look fine.
    for i in range(300):
        store.record(
            PerfObservation(("isp-a", "nyc"), float(i),
                            float(rng.lognormal(np.log(12), 0.4)), 55.0, 0.002)
        )
    # The outage location: surviving probes see terrible loss and RTT.
    for i in range(60):
        store.record(
            PerfObservation(("isp-c", "lon"), float(i), 0.4, 700.0, 0.30)
        )

    predictor = PerformancePredictor(store)
    for location in [("isp-a", "nyc"), ("isp-c", "lon")]:
        call = predictor.predict_call_quality(location)
        download = predictor.predict_download_time(location, 50_000_000)
        verdict = "OK to call" if call.acceptable else "HOLD OFF — poor quality expected"
        print(f"  {location[0]}/{location[1]}: MOS {call.mos:.2f} -> {verdict}; "
              f"50 MB download ~{download.expected_seconds:.0f}s "
              f"[{call.confidence.value} confidence]")


def main():
    events = run_diagnosis()
    run_prediction(events)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A "five computers" CDN: coordinated streaming with prioritization.

Models the paper's motivating scenario — a dominant video provider whose
servers reach many clients behind a shared WAN bottleneck:

1. A fleet of on/off streaming sessions first runs uncoordinated (stock
   Cubic), then coordinated through a Phi context server.
2. The provider then prioritizes across its own flows (Section 3.3):
   HD movie streams get a larger share than background bulk transfers,
   while the ensemble stays TCP-friendly in aggregate.

Run:  python examples/cdn_coordination.py
"""

from repro.experiments import run_onoff_scenario, uniform_slots
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import (
    REFERENCE_POLICY,
    ContextServer,
    phi_cubic_factory,
    plain_cubic_factory,
)
from repro.prioritization import EnsembleAllocator, FlowClass, PriorityController
from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    Simulator,
)
from repro.workload import OnOffConfig

CDN = ScenarioPreset(
    name="cdn",
    config=DumbbellConfig(n_senders=20, bottleneck_bandwidth_bps=50e6, rtt_s=0.08),
    workload=OnOffConfig(mean_on_bytes=2_000_000, mean_off_s=1.0),
    duration_s=40.0,
    description="20 CDN servers streaming through a 50 Mbps peering link",
)


def streaming_comparison():
    print("== Part 1: uncoordinated vs Phi-coordinated streaming ==")
    print(CDN.description, "\n")

    uncoordinated = run_onoff_scenario(
        uniform_slots(lambda env: plain_cubic_factory()),
        config=CDN.config,
        workload=CDN.workload,
        duration_s=CDN.duration_s,
        seed=11,
    )

    def build_phi(env):
        server = ContextServer(env.sim, env.bottleneck_capacity_bps)
        return phi_cubic_factory(server, REFERENCE_POLICY, now=lambda: env.sim.now)

    coordinated = run_onoff_scenario(
        uniform_slots(build_phi),
        config=CDN.config,
        workload=CDN.workload,
        duration_s=CDN.duration_s,
        seed=11,
    )

    for label, result in [
        ("uncoordinated (default Cubic)", uncoordinated),
        ("Phi-coordinated", coordinated),
    ]:
        metrics = result.metrics
        print(f"{label:<32s} session-thr={metrics.throughput_mbps:5.2f} Mbps  "
              f"delay={metrics.queueing_delay_ms:6.1f} ms  "
              f"loss={metrics.loss_rate * 100:4.2f}%  P_l={metrics.power_l:.4f}")
    print()


def prioritized_streaming():
    print("== Part 2: prioritization across the provider's own flows ==")
    sim = Simulator()
    config = DumbbellConfig(
        n_senders=10, bottleneck_bandwidth_bps=30e6, rtt_s=0.06
    )
    topology = DumbbellTopology(sim, config)
    allocator = EnsembleAllocator(
        [FlowClass("hd-movie", 5.0), FlowClass("prefetch", 1.0)]
    )
    controller = PriorityController(sim, allocator)
    pairs = [(topology.senders[i], topology.receivers[i]) for i in range(10)]
    classes = ["hd-movie"] * 4 + ["prefetch"] * 6
    flows = controller.launch(pairs, classes, FlowIdAllocator())

    duration = 30.0
    sim.run(until=duration)
    by_class = controller.throughput_by_class(duration)
    controller.finish_all()

    print(f"10 persistent flows over a {config.bottleneck_bandwidth_bps / 1e6:.0f} "
          f"Mbps link, weights sum to {sum(f.weight for f in flows):.1f}\n")
    for name, count in [("hd-movie", 4), ("prefetch", 6)]:
        print(f"  {name:<10s} x{count}: aggregate {by_class[name]:5.2f} Mbps "
              f"({by_class[name] / count:5.2f} Mbps per flow)")
    ratio = (by_class["hd-movie"] / 4) / (by_class["prefetch"] / 6)
    print(f"\n  per-flow HD : prefetch ratio = {ratio:.1f} : 1 "
          f"(importance ratio was 5 : 1)")


def main():
    streaming_comparison()
    prioritized_streaming()


if __name__ == "__main__":
    main()

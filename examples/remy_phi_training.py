#!/usr/bin/env python3
"""Retraining Remy with the Phi utilization dimension (Section 2.2.4).

Trains two miniature RemyCC rule tables on the Table-3 workload — one
with the classic 3-feature memory, one whose memory and whisker
partition carry the shared bottleneck-utilization dimension ``u`` — and
compares them against each other and TCP Cubic, reproducing Table 3's
shape in a couple of minutes.

Run:  python examples/remy_phi_training.py  [--budget N]
"""

import argparse

from repro.experiments import run_table3, train_tables


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget",
        type=int,
        default=18,
        help="evaluator-call budget per table (default 18; more = better tables)",
    )
    args = parser.parse_args()

    print(f"training classic-Remy and Remy-Phi tables "
          f"(budget {args.budget} simulator evaluations each)...")
    remy_result, phi_result = train_tables(budget=args.budget, duration_s=12.0)

    print(f"\nclassic Remy : score {remy_result.score:.2f} after "
          f"{remy_result.evaluations} evaluations, "
          f"{len(remy_result.table)} whisker(s)")
    for whisker in remy_result.table.whiskers:
        print(f"  action: {whisker.action}")
    print(f"Remy-Phi     : score {phi_result.score:.2f} after "
          f"{phi_result.evaluations} evaluations, "
          f"{len(phi_result.table)} whisker(s) (partitioned on util)")
    for whisker in phi_result.table.whiskers:
        lo, hi = whisker.bounds["util"]
        print(f"  util in [{lo:.1f}, {hi:.1f}]: {whisker.action}")

    print("\nevaluating all four Table-3 arms (3 seeds each)...")
    table = run_table3(remy_result.table, phi_result.table, n_runs=3,
                       duration_s=30.0)
    print()
    print(table.format())
    print("\npaper's shape: Remy-Phi >= Remy > Cubic on the objective,")
    print("with Cubic showing the largest queueing delay.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: default TCP Cubic vs Phi-coordinated Cubic.

Runs the paper's Table-3 workload (8 on/off senders over a 15 Mbps,
150 ms dumbbell) twice — once with every sender using the stock Cubic
defaults, once with senders consulting a Phi context server at
connection start — and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro.experiments import TABLE3_REMY, run_cubic_fixed, run_phi_cubic
from repro.phi import REFERENCE_POLICY, SharingMode
from repro.transport import CubicParams


def show(label, result):
    metrics = result.metrics
    print(f"{label:<28s} thr={metrics.throughput_mbps:5.2f} Mbps  "
          f"delay={metrics.queueing_delay_ms:6.1f} ms  "
          f"loss={metrics.loss_rate * 100:5.2f}%  "
          f"P_l={metrics.power_l:7.4f}  "
          f"({result.connections} connections)")


def main():
    duration = 40.0
    print(f"workload: {TABLE3_REMY.description}")
    print(f"duration: {duration:.0f} simulated seconds per run\n")

    baseline = run_cubic_fixed(
        CubicParams.default(), TABLE3_REMY, seed=7, duration_s=duration
    )
    show("Cubic (default params)", baseline)

    practical = run_phi_cubic(
        REFERENCE_POLICY, TABLE3_REMY, SharingMode.PRACTICAL,
        seed=7, duration_s=duration,
    )
    show("Cubic-Phi (practical)", practical)

    ideal = run_phi_cubic(
        REFERENCE_POLICY, TABLE3_REMY, SharingMode.IDEAL,
        seed=7, duration_s=duration,
    )
    show("Cubic-Phi (ideal oracle)", ideal)

    gain = practical.metrics.power_l / max(baseline.metrics.power_l, 1e-9)
    print(f"\nphi practical improves the P_l objective by {gain:.1f}x over "
          f"the default settings")


if __name__ == "__main__":
    main()

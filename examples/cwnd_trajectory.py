#!/usr/bin/env python3
"""Visualize a Cubic congestion-window trajectory with the tracer.

Runs one long Cubic flow through a shallow-buffered bottleneck so losses
occur, records every window change with the structured tracer, and
renders the classic Cubic sawtooth — concave recovery toward W_max, then
convex probing beyond it — as ASCII art.

Run:  python examples/cwnd_trajectory.py
"""

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowSpec,
    Simulator,
    TraceEventType,
    TracedSenderMixin,
    Tracer,
)
from repro.transport import CubicSender, TcpSink


class TracedCubic(TracedSenderMixin, CubicSender):
    """Cubic sender that logs every cwnd change."""


def render(trajectory, width=64, rows=20):
    """Downsample (time, cwnd) points into an ASCII plot."""
    if not trajectory:
        return "no samples"
    t_max = trajectory[-1][0]
    w_max = max(w for _t, w in trajectory)
    grid = [[" "] * width for _ in range(rows)]
    for t, w in trajectory:
        x = min(width - 1, int(t / t_max * (width - 1)))
        y = min(rows - 1, int(w / w_max * (rows - 1)))
        grid[rows - 1 - y][x] = "*"
    lines = [f"{w_max:7.0f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("        |" + "".join(row))
    lines.append(f"{0:7.0f} +" + "".join(grid[-1]))
    lines.append("         " + "-" * width)
    lines.append(f"         0 s{' ' * (width - 14)}{t_max:.0f} s")
    return "\n".join(lines)


def main():
    sim = Simulator()
    config = DumbbellConfig(
        n_senders=1,
        bottleneck_bandwidth_bps=10_000_000.0,
        rtt_s=0.06,
        buffer_bdp_multiple=1.0,
    )
    topology = DumbbellTopology(sim, config)
    spec = FlowSpec(1, topology.senders[0].name, 1, topology.receivers[0].name, 443)
    TcpSink(sim, topology.receivers[0], spec)
    tracer = Tracer(lambda: sim.now, max_events=200_000)
    sender = TracedCubic(
        sim, topology.senders[0], spec, 10**9, tracer=tracer
    )
    sender.start()
    sim.run(until=30.0)
    sender.abort()

    trajectory = tracer.series(TraceEventType.CWND, f"flow-{spec.flow_id}")
    print(f"cwnd samples: {len(trajectory)}, "
          f"loss events: {sender.stats.fast_retransmits}, "
          f"timeouts: {sender.stats.timeouts}\n")
    print("congestion window (segments) over time — the Cubic sawtooth:\n")
    print(render(trajectory))


if __name__ == "__main__":
    main()

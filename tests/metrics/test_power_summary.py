"""Tests for power metrics and run summaries."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    RunMetrics,
    log_power,
    power,
    power_with_loss,
    summarize_connections,
    summarize_runs,
)
from repro.metrics.summary import finite_mean
from repro.transport.base import ConnectionStats


class TestPowerFunctions:
    def test_power_basic(self):
        assert power(10.0, 5.0) == 2.0

    def test_power_with_loss(self):
        assert power_with_loss(10.0, 5.0, 0.5) == 1.0

    def test_zero_loss_equals_plain_power(self):
        assert power_with_loss(3.0, 2.0, 0.0) == power(3.0, 2.0)

    def test_total_loss_zeroes_power(self):
        assert power_with_loss(3.0, 2.0, 1.0) == 0.0

    def test_log_power(self):
        assert log_power(math.e, 1.0) == pytest.approx(1.0)

    def test_log_power_zero_throughput(self):
        assert log_power(0.0, 1.0) == -math.inf

    def test_delay_floor(self):
        assert power(1.0, 0.0) == power(1.0, 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            power(-1.0, 1.0)
        with pytest.raises(ValueError):
            power(1.0, -1.0)
        with pytest.raises(ValueError):
            power_with_loss(1.0, 1.0, 1.5)

    @given(
        st.floats(min_value=0.01, max_value=1000),
        st.floats(min_value=0.01, max_value=1000),
        st.floats(min_value=0, max_value=0.99),
    )
    @settings(max_examples=100)
    def test_loss_monotonically_reduces_power(self, r, d, l):
        assert power_with_loss(r, d, l) <= power(r, d)

    @given(
        st.floats(min_value=0.01, max_value=1000),
        st.floats(min_value=0.01, max_value=1000),
    )
    @settings(max_examples=100)
    def test_power_monotone_in_throughput_and_delay(self, r, d):
        assert power(r * 2, d) > power(r, d)
        assert power(r, d * 2) < power(r, d)


class TestNonFiniteInputsRejected:
    """Regression: NaN/inf must be rejected, not silently propagated.

    A NaN throughput used to flow straight through ``power`` into sweep
    summaries (NaN compares false with everything, so the optimizer's
    argmax silently skipped the poisoned point instead of failing)."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_power_rejects_non_finite_throughput(self, bad):
        with pytest.raises(ValueError):
            power(bad, 1.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_power_rejects_non_finite_delay(self, bad):
        with pytest.raises(ValueError):
            power(1.0, bad)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_power_with_loss_rejects_non_finite_loss(self, bad):
        with pytest.raises(ValueError):
            power_with_loss(1.0, 1.0, bad)

    def test_power_with_loss_rejects_non_finite_rate_and_delay(self):
        with pytest.raises(ValueError):
            power_with_loss(math.nan, 1.0, 0.0)
        with pytest.raises(ValueError):
            power_with_loss(1.0, math.inf, 0.0)

    def test_log_power_still_allows_zero_throughput(self):
        # By design: log power of an idle run is -inf, not an error.
        assert log_power(0.0, 1.0) == -math.inf


def conn(goodput=100_000, duration=1.0, rtts=(0.15, 0.17), min_rtt=0.15,
         packets=100, retrans=0):
    stats = ConnectionStats(flow_id=1)
    stats.start_time = 0.0
    stats.end_time = duration
    stats.bytes_goodput = goodput
    stats.rtt_samples = list(rtts)
    stats.min_rtt = min_rtt
    stats.packets_sent = packets
    stats.retransmits = retrans
    return stats


class TestSummarizeConnections:
    def test_empty_gives_zero_metrics(self):
        metrics = summarize_connections([])
        assert metrics.throughput_mbps == 0.0
        assert metrics.connections == 0

    def test_throughput_definition(self):
        # "throughput = bits transferred / ontime"
        metrics = summarize_connections([conn(goodput=125_000, duration=1.0)])
        assert metrics.throughput_mbps == pytest.approx(1.0)

    def test_two_connections_pool_on_time(self):
        metrics = summarize_connections(
            [conn(goodput=125_000, duration=1.0), conn(goodput=125_000, duration=3.0)]
        )
        assert metrics.throughput_mbps == pytest.approx(0.5)

    def test_queueing_delay_is_rtt_inflation(self):
        metrics = summarize_connections(
            [conn(rtts=(0.15, 0.25), min_rtt=0.15)]
        )
        assert metrics.queueing_delay_ms == pytest.approx(50.0)

    def test_ground_truth_loss_preferred(self):
        metrics = summarize_connections([conn(retrans=50)], bottleneck_loss_rate=0.02)
        assert metrics.loss_rate == pytest.approx(0.02)

    def test_retransmit_fallback_loss(self):
        metrics = summarize_connections([conn(packets=100, retrans=4)])
        assert metrics.loss_rate == pytest.approx(0.04)

    def test_zero_goodput_connections_excluded(self):
        empty = ConnectionStats(flow_id=2)
        metrics = summarize_connections([conn(), empty])
        assert metrics.connections == 1

    def test_power_properties_consistent(self):
        metrics = summarize_connections([conn()])
        assert metrics.power == pytest.approx(
            metrics.throughput_mbps / metrics.queueing_delay_ms, rel=1e-6
        )
        assert metrics.power_l <= metrics.power

    def test_delay_floor_applied(self):
        metrics = summarize_connections([conn(rtts=(0.15,), min_rtt=0.15)])
        assert metrics.queueing_delay_ms >= 0.05


class TestSummarizeRuns:
    def _runs(self):
        return [
            RunMetrics(1.0, 10.0, 0.0, 5, 1000),
            RunMetrics(2.0, 20.0, 0.02, 5, 1000),
            RunMetrics(3.0, 30.0, 0.04, 5, 1000),
        ]

    def test_means_and_medians(self):
        summary = summarize_runs(self._runs())
        assert summary.mean_throughput_mbps == pytest.approx(2.0)
        assert summary.median_throughput_mbps == pytest.approx(2.0)
        assert summary.mean_queueing_delay_ms == pytest.approx(20.0)
        assert summary.runs == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])


class TestFiniteMean:
    def test_ignores_non_finite(self):
        assert finite_mean([1.0, math.inf, 3.0, math.nan]) == pytest.approx(2.0)

    def test_empty(self):
        assert finite_mean([]) == 0.0
        assert finite_mean([math.inf]) == 0.0

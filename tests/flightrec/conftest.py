"""Shared guard: no test may leak an active flight recorder or session."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    yield
    telemetry.disable()

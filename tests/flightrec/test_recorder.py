"""Flight-recorder core: ring bounds, accounting, dumps, scoping."""

import json
import math

import pytest

from repro import flightrec, telemetry
from repro.flightrec.recorder import (
    LAYERS,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    iter_layer,
    load_dump,
)


class TestRings:
    def test_each_layer_has_its_own_bounded_ring(self):
        rec = FlightRecorder(
            simnet_capacity=2, transport_capacity=3, phi_capacity=1,
            fault_capacity=2,
        )
        for i in range(5):
            rec.simnet("enqueue", float(i), "link", flow_id=1, packet_id=i)
            rec.transport("cwnd", float(i), 1, cwnd=float(i))
            rec.phi("rpc", float(i), "lookup")
            rec.fault("fault_absorb", float(i), "link")
        assert rec.simnet_emitted == 5 and rec.simnet_evicted == 3
        assert rec.transport_emitted == 5 and rec.transport_evicted == 2
        assert rec.phi_emitted == 5 and rec.phi_evicted == 4
        assert rec.fault_emitted == 5 and rec.fault_evicted == 3
        assert len(rec) == 2 + 3 + 1 + 2

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(simnet_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(fault_capacity=0)

    def test_records_time_sorted_across_layers(self):
        rec = FlightRecorder()
        rec.phi("rpc", 3.0, "lookup")
        rec.simnet("drop", 1.0, "queue", flow_id=7, packet_id=42)
        rec.transport("rto", 2.0, 7)
        records = rec.records()
        assert [r["t"] for r in records] == [1.0, 2.0, 3.0]
        assert [r["layer"] for r in records] == ["simnet", "transport", "phi"]

    def test_detail_omitted_when_none(self):
        rec = FlightRecorder()
        rec.simnet("enqueue", 0.0, "link")
        rec.simnet("drop", 0.0, "queue", detail={"queued_bytes": 9})
        plain, detailed = rec.records()
        assert "detail" not in plain
        assert detailed["detail"] == {"queued_bytes": 9}

    def test_clear_resets_rings_and_counters(self):
        rec = FlightRecorder()
        rec.simnet("enqueue", 0.0, "link")
        rec.fault("fault_begin", 0.0, "link")
        rec.clear()
        assert len(rec) == 0
        assert rec.simnet_emitted == 0
        assert rec.fault_emitted == 0


class TestDump:
    def test_dump_load_round_trip(self, tmp_path):
        rec = FlightRecorder()
        rec.simnet("transmit", 0.5, "bottleneck", flow_id=1, packet_id=10)
        rec.transport("flow_start", 0.25, 1, cwnd=2.0,
                      detail={"flavour": "cubic"})
        rec.phi("mode", 0.75, "context", detail={"from": "fresh", "to": "stale"})
        rec.fault("fault_begin", 0.6, "bottleneck",
                  detail={"fault": "LinkOutage", "start_s": 0.6, "end_s": 1.0})
        path = tmp_path / "dump.jsonl"
        retained = rec.dump(str(path), reason="unit", sim_time=1.0)
        assert retained == 4
        header, records = load_dump(str(path))
        assert header["reason"] == "unit"
        assert header["sim_time"] == 1.0
        assert set(header["layers"]) == set(LAYERS)
        assert [r["layer"] for r in records] == [
            "transport", "simnet", "fault", "phi",
        ]
        assert list(iter_layer(records, "fault"))[0]["detail"]["end_s"] == 1.0

    def test_header_carries_eviction_accounting(self, tmp_path):
        rec = FlightRecorder(simnet_capacity=1)
        rec.simnet("enqueue", 0.0, "link")
        rec.simnet("enqueue", 1.0, "link")
        path = tmp_path / "dump.jsonl"
        rec.dump(str(path), reason="unit")
        header, _ = load_dump(str(path))
        assert header["layers"]["simnet"] == {
            "emitted": 2, "evicted": 1, "capacity": 1,
        }

    def test_dump_rejects_nan(self, tmp_path):
        rec = FlightRecorder()
        rec.transport("cwnd", 0.0, 1, cwnd=math.nan)
        with pytest.raises(ValueError):
            rec.dump(str(tmp_path / "dump.jsonl"), reason="unit")

    def test_nan_dump_leaves_no_artifact(self, tmp_path):
        rec = FlightRecorder()
        rec.transport("cwnd", 0.0, 1, cwnd=math.inf)
        path = tmp_path / "dump.jsonl"
        with pytest.raises(ValueError):
            rec.dump(str(path), reason="unit")
        assert not path.exists()

    def test_dump_is_strict_jsonl(self, tmp_path):
        rec = FlightRecorder()
        rec.simnet("drop", 1.5, "queue", flow_id=3, packet_id=77)
        path = tmp_path / "dump.jsonl"
        rec.dump(str(path), reason="unit")
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_maybe_autodump_without_path_is_noop(self):
        rec = FlightRecorder()
        assert rec.maybe_autodump("anything") is None
        assert rec.autodumps == 0

    def test_maybe_autodump_writes_and_counts(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        rec = FlightRecorder(autodump_path=str(path))
        rec.simnet("drop", 0.0, "queue")
        assert rec.maybe_autodump("watchdog:max_events", sim_time=4.0) == str(path)
        assert rec.autodumps == 1
        assert rec.last_dump_reason == "watchdog:max_events"
        header, _ = load_dump(str(path))
        assert header["reason"] == "watchdog:max_events"
        assert header["sim_time"] == 4.0

    def test_redump_replaces_with_superset(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        rec = FlightRecorder(autodump_path=str(path))
        rec.simnet("enqueue", 0.0, "link")
        rec.maybe_autodump("first")
        rec.simnet("enqueue", 1.0, "link")
        rec.maybe_autodump("second")
        header, records = load_dump(str(path))
        assert header["reason"] == "second"
        assert len(records) == 2


class TestNullRecorder:
    def test_shared_singleton_is_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullFlightRecorder)

    def test_emitters_record_nothing(self):
        NULL_RECORDER.simnet("enqueue", 0.0, "link")
        NULL_RECORDER.transport("cwnd", 0.0, 1)
        NULL_RECORDER.phi("rpc", 0.0, "lookup")
        NULL_RECORDER.fault("fault_begin", 0.0, "link")
        assert len(NULL_RECORDER) == 0

    def test_dump_and_autodump_are_noops(self, tmp_path):
        path = tmp_path / "never.jsonl"
        assert NULL_RECORDER.dump(str(path), reason="x") == 0
        assert NULL_RECORDER.maybe_autodump("x") is None
        assert not path.exists()


class TestScoping:
    def test_disabled_by_default(self):
        assert flightrec.session() is NULL_RECORDER
        assert flightrec.session().enabled is False

    def test_use_activates_and_restores(self):
        with flightrec.use() as rec:
            assert flightrec.session() is rec
            assert rec.enabled
        assert flightrec.session() is NULL_RECORDER

    def test_use_composes_with_telemetry_in_either_order(self):
        with flightrec.use() as rec:
            with telemetry.use() as tele:
                assert tele.flightrec is rec
                assert flightrec.session() is rec
        with telemetry.use():
            with flightrec.use() as rec:
                assert flightrec.session() is rec
                assert telemetry.session().registry.enabled

    def test_capture_dumps_on_exception(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError):
            with flightrec.capture(str(path)) as rec:
                rec.simnet("enqueue", 0.0, "link")
                raise RuntimeError("worker died")
        header, records = load_dump(str(path))
        assert header["reason"] == "RuntimeError: worker died"
        assert len(records) == 1

    def test_capture_keeps_more_specific_anomaly_reason(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError):
            with flightrec.capture(str(path)) as rec:
                rec.maybe_autodump("invariant:wire_conservation")
                raise RuntimeError("unwinding after the violation")
        header, _ = load_dump(str(path))
        assert header["reason"] == "invariant:wire_conservation"

    def test_capture_no_dump_on_success(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        with flightrec.capture(str(path)) as rec:
            rec.simnet("enqueue", 0.0, "link")
        assert not path.exists()

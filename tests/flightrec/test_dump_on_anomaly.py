"""Dump-on-anomaly funnels: watchdog trips, invariant violations, sweeps.

The acceptance path for the flight recorder: a sweep point that dies —
here, a watchdog trip provoked by an injected bottleneck outage — must
leave ``flightrec-<point_key>.jsonl`` next to the sweep journal, and the
post-mortem over that dump must attribute the stall to the injected
fault window rather than ``unknown``.
"""

import os

import pytest

from repro import flightrec, telemetry
from repro.flightrec.postmortem import analyze_dump
from repro.flightrec.recorder import load_dump
from repro.runner.cache import NullCache
from repro.runner.core import SweepPoint, SweepRunner, SweepSpec, evaluate_point
from repro.runner.resilience import ResilienceConfig, RetryPolicy
from repro.simcheck.violations import InvariantViolation, record_violation
from repro.simnet.engine import WatchdogConfig

from tests.runner.conftest import MINI_GRID, MINI_PRESET

OUTAGE = ("outage", 0.5, 0.5)  # bottleneck dark over [0.5, 1.0) sim s


def _calibrated_budget():
    """An event budget that trips the watchdog *after* the fault window.

    Calibrated against the unwatched run so the test stays correct if
    the simulation's event count drifts: 90% of the full run's events
    lands well past the 1.0 s window end in a 2.0 s run.
    """
    spec = SweepSpec(preset=MINI_PRESET, fault=OUTAGE)
    point = SweepPoint(params=MINI_GRID[0], run_index=0, seed=0)
    full = evaluate_point(spec, point)
    return max(1, int(full.events_processed * 0.9))


def _make_runner(tmp_path, *, n_workers, max_events):
    return SweepRunner(
        MINI_PRESET,
        n_workers=n_workers,
        cache=NullCache(),
        checkpoint_dir=str(tmp_path),
        watchdog=WatchdogConfig(max_events=max_events),
        fault=OUTAGE,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, backoff_base_s=0.01),
            poll_interval_s=0.02,
        ),
    )


def _dump_path(runner, tmp_path):
    point = SweepPoint(params=MINI_GRID[0], run_index=0, seed=0)
    return str(tmp_path / f"flightrec-{point.key(runner.spec)}.jsonl")


def _assert_fault_attributed(analysis):
    (window,) = analysis["fault_windows"]
    assert window["fault"] == "LinkOutage"
    assert (window["start"], window["end"]) == (0.5, 1.0)
    attributed = [
        stall
        for entry in analysis["flows"]
        for stall in entry["stalls"]
        if stall["cause"] == "injected-fault"
    ]
    assert attributed, "no stall attributed to the injected fault window"
    for stall in attributed:
        spans = [s for s in stall["evidence"] if s["kind"] == "injected-fault"]
        assert spans and spans[0]["start"] == 0.5 and spans[0]["end"] == 1.0


class TestQuarantinedSweepPoint:
    def test_serial_point_dumps_and_postmortem_blames_the_outage(self, tmp_path):
        runner = _make_runner(
            tmp_path, n_workers=1, max_events=_calibrated_budget()
        )
        outcome = runner.run(
            [MINI_GRID[0]], n_runs=1, base_seed=0, parallel=False
        )
        assert len(outcome.quarantined) == 1
        assert outcome.quarantined[0].last_failure.kind == "stalled"
        dump = _dump_path(runner, tmp_path)
        assert os.path.exists(dump)
        analysis = analyze_dump(dump)
        assert analysis["anomaly"]["reason"] == "watchdog:max_events"
        assert isinstance(analysis["anomaly"]["sim_time"], float)
        _assert_fault_attributed(analysis)

    @pytest.mark.fault
    def test_worker_process_dump_survives_the_worker(self, tmp_path):
        # The dump is a file written inside the worker at the moment of
        # failure, so it outlives the worker process.
        runner = _make_runner(
            tmp_path, n_workers=2, max_events=_calibrated_budget()
        )
        outcome = runner.run([MINI_GRID[0]], n_runs=1, base_seed=0)
        assert len(outcome.quarantined) == 1
        header, records = load_dump(_dump_path(runner, tmp_path))
        assert header["reason"] == "watchdog:max_events"
        assert records

    def test_healthy_sweep_leaves_no_dumps(self, tmp_path):
        runner = SweepRunner(
            MINI_PRESET,
            n_workers=1,
            cache=NullCache(),
            checkpoint_dir=str(tmp_path),
            fault=OUTAGE,
        )
        outcome = runner.run(
            [MINI_GRID[0]], n_runs=1, base_seed=0, parallel=False
        )
        assert outcome.complete
        assert not list(tmp_path.glob("flightrec-*.jsonl"))


class TestInvariantViolationFunnel:
    def test_record_violation_autodumps_before_raising(self, tmp_path):
        path = tmp_path / "invariant.jsonl"
        with flightrec.use(autodump_path=str(path)) as rec:
            rec.simnet("enqueue", 1.4, "bottleneck", flow_id=1, packet_id=9)
            with pytest.raises(InvariantViolation):
                record_violation(
                    InvariantViolation(
                        "wire_conservation",
                        "bottleneck",
                        "packet neither delivered nor dropped",
                        sim_time=1.5,
                    )
                )
        header, records = load_dump(str(path))
        assert header["reason"] == "invariant:wire_conservation"
        assert header["sim_time"] == 1.5
        assert records[0]["kind"] == "enqueue"

    def test_violation_without_recorder_still_raises(self):
        assert not telemetry.session().flightrec.enabled
        with pytest.raises(InvariantViolation):
            record_violation(
                InvariantViolation("wire_conservation", "link", "lost", 0.1)
            )

"""Post-mortem analyzer: stall detection, attribution precedence, rendering."""

import pytest

from repro.flightrec.postmortem import (
    CAUSES,
    analyze,
    analyze_dump,
    fault_windows,
    render_text,
)
from repro.flightrec.recorder import FlightRecorder


def _transport(kind, t, flow_id, detail=None):
    record = {"layer": "transport", "kind": kind, "t": t, "flow_id": flow_id,
              "cwnd": -1.0, "ssthresh": -1.0}
    if detail is not None:
        record["detail"] = detail
    return record


def _simnet(kind, t, component, flow_id=-1, packet_id=-1, detail=None):
    record = {"layer": "simnet", "kind": kind, "t": t, "component": component,
              "flow_id": flow_id, "packet_id": packet_id}
    if detail is not None:
        record["detail"] = detail
    return record


def _fault(kind, t, component, detail=None):
    record = {"layer": "fault", "kind": kind, "t": t, "component": component,
              "flow_id": -1, "packet_id": -1}
    if detail is not None:
        record["detail"] = detail
    return record


def _phi(kind, t, subject, detail=None):
    record = {"layer": "phi", "kind": kind, "t": t, "subject": subject}
    if detail is not None:
        record["detail"] = detail
    return record


def _flow(flow_id, *activity_times, start=None, end=None):
    """A minimal flow timeline: flow_start, activity marks, flow_end."""
    records = [_transport("flow_start", start if start is not None
                          else activity_times[0], flow_id)]
    records += [_simnet("transmit", t, "link", flow_id, i)
                for i, t in enumerate(activity_times)]
    if end is not None:
        records.append(_transport("flow_end", end, flow_id))
    return records


class TestFaultWindows:
    def test_window_from_detail(self):
        records = [_fault("fault_absorb", 1.2, "bottleneck",
                          {"fault": "LinkOutage", "start_s": 1.0, "end_s": 2.0})]
        (window,) = fault_windows(records)
        assert window == {"fault": "LinkOutage", "component": "bottleneck",
                          "start": 1.0, "end": 2.0}

    def test_window_deduplicated_across_events(self):
        detail = {"fault": "LinkOutage", "start_s": 1.0, "end_s": 2.0}
        records = [_fault("fault_begin", 1.0, "bottleneck", dict(detail)),
                   _fault("fault_absorb", 1.5, "bottleneck", dict(detail)),
                   _fault("fault_end", 2.0, "bottleneck", dict(detail))]
        assert len(fault_windows(records)) == 1

    def test_windowless_fault_paired_from_edges(self):
        records = [_fault("fault_begin", 3.0, "r1", {"fault": "LinkFlap"}),
                   _fault("fault_end", 4.5, "r1", {"fault": "LinkFlap"})]
        (window,) = fault_windows(records)
        assert window["start"] == 3.0 and window["end"] == 4.5

    def test_non_fault_records_ignored(self):
        assert fault_windows([_simnet("drop", 0.0, "queue")]) == []


class TestStallDetection:
    def test_no_stall_below_threshold(self):
        records = _flow(1, 0.0, 0.1, 0.2, 0.3, end=0.4)
        analysis = analyze({}, records, stall_threshold_s=0.25)
        assert analysis["summary"]["stalls"] == 0

    def test_gap_above_threshold_is_a_stall(self):
        records = _flow(1, 0.0, 0.1, 1.0, end=1.1)
        analysis = analyze({}, records, stall_threshold_s=0.25)
        (flow,) = analysis["flows"]
        (stall,) = flow["stalls"]
        assert stall["start"] == 0.1 and stall["end"] == 1.0
        assert stall["duration_s"] == pytest.approx(0.9)
        assert stall["cause"] == "unknown"

    def test_final_gap_to_flow_end_counts(self):
        records = _flow(1, 0.0, 0.1, end=2.0)
        analysis = analyze({}, records, stall_threshold_s=0.25)
        (stall,) = analysis["flows"][0]["stalls"]
        assert stall["end"] == 2.0

    def test_unfinished_flow_stalls_until_dump_horizon(self):
        # No flow_end: the silence from the last activity to the dump's
        # sim_time is exactly what a post-mortem must flag.
        records = _flow(1, 0.0, 0.1)
        analysis = analyze({"sim_time": 5.0}, records, stall_threshold_s=0.25)
        (flow,) = analysis["flows"]
        assert not flow["completed"]
        (stall,) = flow["stalls"]
        assert stall["start"] == 0.1 and stall["end"] == 5.0

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            analyze({}, [], stall_threshold_s=0.0)

    def test_negative_flow_ids_ignored(self):
        records = [_simnet("fault_absorb", 0.0, "link")]
        analysis = analyze({}, records)
        assert analysis["summary"]["flows"] == 0


class TestAttribution:
    def _stall_records(self):
        """One flow with exactly one stall, over [1.0, 2.5]."""
        return _flow(1, 0.8, 0.9, 1.0, 2.5, end=2.6)

    def test_injected_fault_wins(self):
        # The rto record is also an activity mark, so it sits on an
        # existing checkpoint to keep the gap structure unchanged.
        records = self._stall_records() + [
            _fault("fault_begin", 1.2, "bottleneck",
                   {"fault": "LinkOutage", "start_s": 1.2, "end_s": 2.0}),
            _transport("rto", 1.0, 1, {"rto_s": 0.4}),
        ]
        (stall,) = analyze({}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "injected-fault"
        kinds = {span["kind"] for span in stall["evidence"]}
        assert kinds == {"injected-fault", "rto-backoff"}

    def test_breaker_failover(self):
        records = self._stall_records() + [
            _phi("breaker", 1.1, "breaker", {"from": "closed", "to": "open"}),
            _phi("breaker", 2.0, "breaker", {"from": "open", "to": "half_open"}),
            _phi("failover", 1.3, "lookup", {"primary": 0, "served_by": 1}),
        ]
        (stall,) = analyze({}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "breaker-failover"
        assert any("circuit breaker open" in s["description"]
                   for s in stall["evidence"])

    def test_breaker_open_at_dump_end_still_spans(self):
        records = self._stall_records() + [
            _phi("breaker", 1.1, "breaker", {"from": "closed", "to": "open"}),
        ]
        (stall,) = analyze({"sim_time": 3.0}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "breaker-failover"

    def test_queue_buildup(self):
        records = self._stall_records() + [
            _simnet("drop", 0.9, "queue", 1, 17,
                    {"queued_bytes": 56000, "capacity_bytes": 56250}),
        ]
        (stall,) = analyze({}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "queue-buildup"
        assert "drop-tailed" in stall["evidence"][0]["description"]

    def test_drop_of_another_flow_not_evidence(self):
        records = self._stall_records() + [
            _simnet("drop", 1.2, "queue", 2, 17,
                    {"queued_bytes": 56000, "capacity_bytes": 56250}),
        ]
        flows = analyze({}, records)["flows"]
        flow_one = [f for f in flows if f["flow_id"] == 1][0]
        assert flow_one["stalls"][0]["cause"] == "unknown"

    def test_rto_backoff(self):
        # An rto mid-gap splits the stall into two; both silences are
        # Karn backoff around the same timer.
        records = self._stall_records() + [
            _transport("rto", 1.4, 1, {"rto_s": 0.8, "snd_una": 9000}),
        ]
        stalls = analyze({}, records)["flows"][0]["stalls"]
        assert stalls and {s["cause"] for s in stalls} == {"rto-backoff"}

    def test_context_degradation_from_mode_span(self):
        records = self._stall_records() + [
            _phi("mode", 0.9, "context", {"from": "fresh", "to": "stale"}),
            _phi("mode", 2.8, "context", {"from": "stale", "to": "fresh"}),
        ]
        (stall,) = analyze({}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "context-degradation"

    def test_context_degradation_from_flow_lookup(self):
        records = self._stall_records() + [
            _phi("context", 0.5, "lookup", {"flow_id": 1, "decision": "fallback"}),
        ]
        (stall,) = analyze({}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "context-degradation"

    def test_precedence_order_is_documented_order(self):
        assert CAUSES[0] == "injected-fault"
        assert CAUSES[-1] == "unknown"
        records = self._stall_records() + [
            _fault("fault_begin", 1.2, "bottleneck",
                   {"fault": "LinkOutage", "start_s": 1.2, "end_s": 2.0}),
            _phi("breaker", 1.1, "breaker", {"from": "closed", "to": "open"}),
            _simnet("drop", 1.2, "queue", 1, 3,
                    {"queued_bytes": 1, "capacity_bytes": 2}),
            _transport("rto", 1.4, 1, {"rto_s": 0.8}),
            _phi("mode", 0.9, "context", {"from": "fresh", "to": "distrusted"}),
        ]
        (stall,) = analyze({}, records)["flows"][0]["stalls"]
        assert stall["cause"] == "injected-fault"
        assert len(stall["evidence"]) >= 4


class TestEndToEnd:
    def test_analyze_dump_round_trip(self, tmp_path):
        rec = FlightRecorder()
        rec.transport("flow_start", 0.0, 1)
        rec.simnet("transmit", 0.1, "link", 1, 1)
        rec.fault("fault_begin", 0.2, "bottleneck",
                  detail={"fault": "LinkOutage", "start_s": 0.2, "end_s": 1.5})
        rec.simnet("transmit", 1.6, "link", 1, 2)
        rec.transport("flow_end", 1.7, 1)
        path = tmp_path / "dump.jsonl"
        rec.dump(str(path), reason="watchdog:max_events", sim_time=2.0)
        analysis = analyze_dump(str(path))
        assert analysis["dump"] == str(path)
        assert analysis["anomaly"]["reason"] == "watchdog:max_events"
        (stall,) = analysis["flows"][0]["stalls"]
        assert stall["cause"] == "injected-fault"
        assert analysis["summary"] == {
            "flows": 1, "stalls": 1, "causes": {"injected-fault": 1},
        }

    def test_render_text_mentions_dump_cause_and_evidence(self):
        records = _flow(1, 0.5, 1.0, 2.5, end=2.6) + [
            _fault("fault_begin", 1.2, "bottleneck",
                   {"fault": "LinkOutage", "start_s": 1.2, "end_s": 2.0}),
        ]
        analysis = analyze({"reason": "quarantine:crash:point3"}, records)
        text = render_text(analysis)
        assert "quarantine:crash:point3" in text
        assert "injected-fault" in text
        assert "LinkOutage on bottleneck" in text

    def test_render_text_flow_filter(self):
        records = _flow(1, 0.0, 1.0, end=1.1) + _flow(2, 0.0, 2.0, end=2.1)
        analysis = analyze({}, records)
        only_two = render_text(analysis, flow=2)
        assert "flow 2" in only_two and "flow 1 " not in only_two

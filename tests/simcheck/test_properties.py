"""Property-based suite: random scenarios must run violation-free.

Hypothesis feeds seeds into the shared generator in
:mod:`repro.simcheck.fuzz`; every drawn topology/workload/flavour
combination must complete on a checked simulator with zero invariant
violations.  Marked ``simcheck`` (each example is a full, if small,
simulation run).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simcheck import ViolationReport
from repro.simcheck.fuzz import draw_scenario, run_fuzz_case

pytestmark = pytest.mark.simcheck

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestScenarioGenerator:
    @given(seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_draw_is_deterministic_and_bounded(self, seed):
        a, b = draw_scenario(seed), draw_scenario(seed)
        assert a == b
        assert 1 <= a.config.n_senders <= 5
        assert 2e6 <= a.config.bottleneck_bandwidth_bps <= 50e6
        assert 0.02 <= a.config.rtt_s <= 0.3
        assert 3.0 <= a.duration_s <= 8.0
        assert a.flavour in ("cubic", "newreno")

    def test_distinct_seeds_draw_distinct_scenarios(self):
        assert len({draw_scenario(s).as_dict()["rtt_ms"] for s in range(20)}) > 1


class TestRandomScenariosHoldInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_checked_run_completes_without_violations(self, seed):
        scenario = draw_scenario(seed)
        report = ViolationReport()
        result = run_fuzz_case(scenario, check_report=report)
        assert report.ok, [str(v) for v in report.violations]
        assert report.checks_performed > 0
        assert result.duration_s == scenario.duration_s

"""Tests for the CheckedSimulator: clock, heap, and calendar invariants."""

import heapq

import pytest

from repro import telemetry
from repro.simcheck import (
    CheckedSimulator,
    InvariantViolation,
    ViolationReport,
)
from repro.simnet.engine import SimulationError, Simulator


class TestDropInBehaviour:
    """A checked simulator is observably identical to the plain engine."""

    def test_events_fire_in_order(self):
        sim = CheckedSimulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]
        assert sim.now == 3.0

    def test_run_until_restores_undue_event(self):
        sim = CheckedSimulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1] and sim.now == 2.0
        sim.run()
        assert fired == [1, 5] and sim.now == 5.0

    def test_matches_unchecked_trace(self):
        def drive(sim):
            trace = []

            def chain(n):
                trace.append((sim.now, n))
                if n < 5:
                    sim.schedule(0.5 * (n + 1), chain, n + 1)

            sim.schedule(1.0, chain, 0)
            handle = sim.schedule(2.0, trace.append, "cancelled")
            handle.cancel()
            sim.run(until=100.0)
            return trace, sim.now, sim.events_processed

        assert drive(Simulator()) == drive(CheckedSimulator())

    def test_not_reentrant(self):
        sim = CheckedSimulator()
        sim.schedule(1.0, lambda: sim.run())
        with pytest.raises(SimulationError):
            sim.run()

    def test_counts_checks(self):
        sim = CheckedSimulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.checks_performed >= 10

    def test_interval_below_one_rejected(self):
        with pytest.raises(ValueError):
            CheckedSimulator(heap_check_interval=0)


def _inject_raw_event(sim, time, seq, callback=lambda: None):
    """Plant a calendar item behind the engine's back (corruption tool)."""
    heapq.heappush(sim._heap, (time, seq))
    sim._entries[seq] = (callback, ())


class TestClockInvariants:
    def test_past_event_raises_clock_monotonic(self):
        sim = CheckedSimulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        _inject_raw_event(sim, 1.0, 10**9)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert excinfo.value.invariant == "engine.clock_monotonic"

    def test_callback_clock_tamper_detected_and_restored(self):
        sim = CheckedSimulator(report=(report := ViolationReport()))

        def tamper():
            sim._now = 99.0

        sim.schedule(1.0, tamper)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert [v.invariant for v in report.violations] == ["engine.clock_tampered"]
        # The clock was restored, so the rest of the run was unperturbed.
        assert sim.now == 2.0


class TestHeapIntegrity:
    def test_clean_heap_passes(self):
        sim = CheckedSimulator()
        for i in range(100):
            sim.schedule(float(i + 1), lambda: None)
        sim.verify_heap()  # fresh calendar
        sim.run(until=50.0)
        sim.verify_heap()  # partially drained calendar

    def test_heap_order_corruption_detected(self):
        sim = CheckedSimulator()
        for i in range(8):
            sim.schedule(float(i + 1), lambda: None)
        sim._heap[0], sim._heap[-1] = sim._heap[-1], sim._heap[0]
        with pytest.raises(InvariantViolation) as excinfo:
            sim.verify_heap()
        assert excinfo.value.invariant == "engine.heap_order"

    def test_duplicate_seq_detected(self):
        sim = CheckedSimulator()
        sim.schedule(1.0, lambda: None)
        time, seq = sim._heap[0]
        heapq.heappush(sim._heap, (time + 1.0, seq))
        with pytest.raises(InvariantViolation) as excinfo:
            sim.verify_heap()
        assert excinfo.value.invariant == "engine.heap_duplicate"

    def test_orphaned_entry_detected(self):
        sim = CheckedSimulator()
        sim.schedule(1.0, lambda: None)
        sim._entries[10**9] = (lambda: None, ())
        with pytest.raises(InvariantViolation) as excinfo:
            sim.verify_heap()
        assert excinfo.value.invariant == "engine.heap_entry_orphan"

    def test_non_callable_entry_detected(self):
        sim = CheckedSimulator()
        sim.schedule(1.0, lambda: None)
        _, seq = sim._heap[0]
        sim._entries[seq] = ("not-callable", ())
        with pytest.raises(InvariantViolation) as excinfo:
            sim.verify_heap()
        assert excinfo.value.invariant == "engine.entry_not_callable"

    def test_periodic_check_catches_mid_run_corruption(self):
        sim = CheckedSimulator(heap_check_interval=1, report=(report := ViolationReport()))
        sim.schedule(1.0, lambda: _inject_raw_event(sim, 5.0, 10**9, "bogus"))
        sim.schedule(2.0, lambda: None)
        sim.run(until=3.0)  # the bogus event is detected, never executed
        assert any(
            v.invariant == "engine.entry_not_callable" for v in report.violations
        )


class TestReportingModes:
    def test_report_collects_instead_of_raising(self):
        report = ViolationReport()
        sim = CheckedSimulator(report=report)
        sim.schedule(1.0, lambda: None)
        sim._heap.append((0.0, 10**9))  # violates the heap property
        sim._entries[10**9] = (lambda: None, ())
        sim.verify_heap()
        assert not report.ok
        assert report.violations[0].invariant == "engine.heap_order"

    def test_violation_is_picklable_and_structured(self):
        import pickle

        violation = InvariantViolation(
            "engine.clock_monotonic", "simulator", "boom", 1.5, {"event_time": 1.0}
        )
        clone = pickle.loads(pickle.dumps(violation))
        assert clone.invariant == violation.invariant
        assert clone.as_dict() == violation.as_dict()
        assert isinstance(clone, AssertionError)

    def test_violations_counted_in_telemetry(self):
        with telemetry.use() as tele:
            report = ViolationReport()
            sim = CheckedSimulator(report=report)
            sim.schedule(2.0, lambda: None)
            sim.run()
            _inject_raw_event(sim, 1.0, 10**9)
            sim.run()
            assert not report.ok
            counter = tele.registry.counter(
                "simcheck.violations", invariant="engine.clock_monotonic"
            )
            assert counter.value >= 1

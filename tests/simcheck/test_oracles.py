"""Tests for the differential and metamorphic oracles (reduced scale)."""

import pytest

from repro.experiments.scenarios import TABLE3_REMY
from repro.simcheck.oracles import (
    ORACLES,
    dilated_preset,
    oracle_checked_vs_unchecked,
    oracle_flow_permutation,
    oracle_replica_convergence,
    oracle_replication_identity,
    oracle_time_dilation,
    oracle_unit_rescale,
    run_oracles,
)


class TestDilatedPreset:
    def test_bdp_is_invariant(self):
        for k in (2.0, 4.0, 8.0):
            scaled = dilated_preset(TABLE3_REMY, k)
            base_cfg, cfg = TABLE3_REMY.config, scaled.config
            assert cfg.bottleneck_bandwidth_bps == base_cfg.bottleneck_bandwidth_bps / k
            assert cfg.rtt_s == base_cfg.rtt_s * k
            assert (
                cfg.bottleneck_bandwidth_bps * cfg.rtt_s
                == pytest.approx(
                    base_cfg.bottleneck_bandwidth_bps * base_cfg.rtt_s
                )
            )
            assert cfg.buffer_bdp_multiple == base_cfg.buffer_bdp_multiple

    def test_workload_bytes_unscaled_times_scaled(self):
        scaled = dilated_preset(TABLE3_REMY, 2.0)
        assert scaled.workload.mean_on_bytes == TABLE3_REMY.workload.mean_on_bytes
        assert scaled.workload.mean_off_s == TABLE3_REMY.workload.mean_off_s * 2.0
        assert scaled.duration_s == TABLE3_REMY.duration_s * 2.0


class TestOracles:
    def test_unit_rescale_is_exact(self):
        outcome = oracle_unit_rescale()
        assert outcome.passed, outcome.failures
        assert outcome.details["worst_relative_error"] < 1e-9

    def test_checked_vs_unchecked_bit_identical(self):
        outcome = oracle_checked_vs_unchecked(duration_s=2.0, seed=3)
        assert outcome.passed, outcome.failures
        assert outcome.details["checks_performed"] > 0

    def test_flow_permutation_bit_identical(self):
        outcome = oracle_flow_permutation(duration_s=2.0, seed=3)
        assert outcome.passed, outcome.failures

    def test_time_dilation_within_tolerance(self):
        outcome = oracle_time_dilation(duration_s=2.0, seed=3)
        assert outcome.passed, outcome.failures
        assert outcome.details["k"] == 2.0

    def test_replication_identity_bit_identical(self):
        outcome = oracle_replication_identity(duration_s=4.0, seed=3)
        assert outcome.passed, outcome.failures

    def test_replica_convergence_bounded(self):
        outcome = oracle_replica_convergence(duration_s=8.0, seed=3)
        assert outcome.passed, outcome.failures
        assert outcome.details["max_divergence"] > 0

    def test_registry_covers_issue_matrix(self):
        assert {
            "checked-vs-unchecked",
            "flow-permutation",
            "serial-vs-parallel",
            "grid-permutation",
            "time-dilation",
            "unit-rescale",
            "replication-identity",
            "replica-convergence",
        } <= set(ORACLES)

    def test_run_oracles_selection_and_unknown_name(self):
        outcomes = run_oracles(["unit-rescale"], duration_s=1.0)
        assert [o.name for o in outcomes] == ["unit-rescale"]
        with pytest.raises(ValueError):
            run_oracles(["no-such-oracle"])

    def test_run_oracles_dispatches_replication_oracles(self):
        outcomes = run_oracles(
            ["replication-identity", "replica-convergence"],
            duration_s=4.0, seed=0,
        )
        assert all(o.passed for o in outcomes), [o.failures for o in outcomes]

    def test_outcome_serializes(self):
        import json

        outcome = oracle_unit_rescale()
        assert json.dumps(outcome.as_dict(), allow_nan=False)

"""Checked-mode edge cases: interrupted runs, aborted flows, and faults.

Every scenario here ends in a conservation audit, so the tests prove the
invariant layer tolerates the messy stopping conditions real sweeps hit
(watchdog trips, mid-flight aborts, flapping links, control-plane
outages) without false positives.  Marked ``simcheck`` so the slow ones
can be deselected with ``-m 'not simcheck'``.
"""

import pytest

from repro import simcheck
from repro.experiments.degraded import run_degraded_phi_cubic
from repro.experiments.dumbbell import ExperimentEnv, run_onoff_scenario, uniform_slots
from repro.experiments.scenarios import (
    TABLE3_REMY,
    ScenarioPreset,
    run_cubic_fixed,
)
from repro.transport import CubicParams
from repro.phi import REFERENCE_POLICY
from repro.phi.client import plain_cubic_factory
from repro.simcheck import ViolationReport
from repro.simnet import DelaySpike, DumbbellConfig, LinkFlap
from repro.simnet.engine import SimulationStalled, SimWatchdog, WatchdogConfig
from repro.workload.onoff import OnOffConfig, OnOffSource

pytestmark = pytest.mark.simcheck

BUSY_WORKLOAD = OnOffConfig(mean_on_bytes=100_000, mean_off_s=0.2)


def checked_env(n_senders=4, seed=1, report=None):
    env = ExperimentEnv.create(
        DumbbellConfig(n_senders=n_senders),
        seed=seed,
        checked=True,
        check_report=report,
    )
    sources = []
    for index in range(n_senders):
        source = OnOffSource(
            env.sim,
            env.topology.senders[index],
            env.topology.receivers[index],
            env.wrap_factory(plain_cubic_factory()),
            env.flow_ids,
            env.rngs.stream(f"onoff-{index}"),
            BUSY_WORKLOAD,
            flow_tracker=env.flow_tracker,
        )
        source.start()
        sources.append(source)
    return env, sources


class TestInterruptedRuns:
    def test_audit_holds_at_event_budget_stop(self):
        env, _ = checked_env()
        env.sim.run(until=10.0, max_events=5_000)  # stops mid-flight
        assert env.sim.now < 10.0
        env.audit()  # conservation holds at an arbitrary event boundary

    def test_audit_holds_after_watchdog_trip(self):
        env, _ = checked_env()
        env.sim.install_watchdog(SimWatchdog(WatchdogConfig(max_events=5_000)))
        with pytest.raises(SimulationStalled):
            env.sim.run(until=10.0)
        env.audit()

    def test_audit_holds_after_aborted_flows(self):
        env, sources = checked_env()
        env.sim.run(until=1.5)
        aborted = 0
        for source in sources:
            source.stop()  # aborts whatever is still in flight
            aborted += sum(
                1 for stats in source.all_stats(include_active=True)
                if not stats.completed
            )
        env.audit()
        assert aborted >= 0  # stop() ran cleanly whether or not flows were live


class TestFaultsUnderConservation:
    def test_link_flap_accounted(self):
        report = ViolationReport()
        env, sources = checked_env(report=report)
        flap = LinkFlap(
            env.sim, env.topology.bottleneck,
            start_s=0.5, down_s=0.3, up_s=0.4, cycles=3,
        )
        env.sim.run(until=4.0)
        for source in sources:
            source.stop()
        env.audit(faults=[flap])
        assert report.ok, [str(v) for v in report.violations]
        assert flap.packets_blackholed > 0  # the flap actually bit

    def test_delay_spike_leaves_wire_residual_only(self):
        report = ViolationReport()
        env, sources = checked_env(report=report)
        spike = DelaySpike(
            env.sim, env.topology.bottleneck,
            start_s=0.5, duration_s=2.0, extra_delay_s=0.8,
        )
        # Stop inside the spike window so parked packets are still parked.
        env.sim.run(until=1.0)
        env.audit(faults=[spike])
        assert report.ok, [str(v) for v in report.violations]
        assert spike.packets_delayed > 0

    def test_server_outage_run_stays_clean_in_checked_mode(self):
        # REPRO_SIMCHECK-style global enablement: every env the degraded
        # runner builds becomes checked, including the conservation audit
        # at the end of the run, with zero call-site changes.
        with simcheck.use():
            outcome = run_degraded_phi_cubic(
                REFERENCE_POLICY,
                TABLE3_REMY,
                unavailability=0.4,
                duration_s=4.0,
                seed=2,
                outage_period_s=1.0,
            )
        assert outcome.result.connections > 0
        assert outcome.decision_counts  # the outage path was exercised


class TestFlushedOutRegressions:
    #: The exact scenario in which the checked tier-1 gate first caught
    #: the stale-SACK bug: six long-running Cubic senders, seed 0.  A
    #: straggler ACK after an RTO re-admitted pre-rewind SACK blocks and
    #: tripped tcp.sack_overrun at t=3.007s.  Failing-before /
    #: passing-after for the snd_nxt clamp in TcpSender._process_ack.
    STALE_SACK_REPRO = ScenarioPreset(
        name="stale-sack-repro",
        config=DumbbellConfig(n_senders=6),
        workload=None,
        duration_s=20.0,
        description="six long-running senders, RTO + straggler ACKs",
    )

    def test_post_rto_straggler_acks_stay_violation_free(self):
        result = run_cubic_fixed(
            CubicParams.default(), self.STALE_SACK_REPRO, seed=0, checked=True
        )
        assert result.connections == 6
        assert result.mean_utilization > 0.8


class TestGlobalEnablement:
    def test_use_scopes_checked_mode(self):
        # Don't assume the ambient default: CI runs this very suite with
        # REPRO_SIMCHECK=1, so restore whatever state we started in.
        previous = simcheck.enabled()
        with simcheck.use():
            assert simcheck.enabled()
            result = run_onoff_scenario(
                uniform_slots(lambda env: plain_cubic_factory()),
                config=DumbbellConfig(n_senders=2),
                workload=BUSY_WORKLOAD,
                duration_s=1.0,
                seed=3,
            )
        assert simcheck.enabled() == previous
        with simcheck.use(False):
            assert not simcheck.enabled()
        assert simcheck.enabled() == previous
        assert result.connections >= 0

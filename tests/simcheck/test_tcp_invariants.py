"""Tests for the TCP sender invariant checks and their installation."""

import math
from types import SimpleNamespace

import pytest

from repro.simcheck import (
    InvariantViolation,
    ViolationReport,
    check_sender_invariants,
    checked_factory,
    install_sender_checks,
)
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport.base import TcpSender
from repro.transport.sink import TcpSink


def make_sender(flow_bytes=50_000, **kwargs):
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 10_000, top.receivers[0].name, 443)
    done = []
    TcpSink(sim, top.receivers[0], spec)
    sender = TcpSender(sim, top.senders[0], spec, flow_bytes, done.append, **kwargs)
    return sim, sender, done


def fake_sender(**overrides):
    """A minimal stand-in exposing exactly what the checker reads."""
    fields = dict(
        spec=SimpleNamespace(flow_id=7),
        sim=SimpleNamespace(now=1.0),
        snd_una=0,
        snd_nxt=0,
        flow_size=10_000,
        cwnd=2.0,
        pipe_segments=0.0,
        _sacked=SimpleNamespace(total_bytes=0),
        _rto_handle=None,
        finished=False,
    )
    fields.update(overrides)
    return SimpleNamespace(**fields)


def violations_for(sender):
    report = ViolationReport()
    check_sender_invariants(sender, report)
    return [v.invariant for v in report.violations]


class TestCheckerLogic:
    def test_consistent_sender_passes(self):
        assert violations_for(fake_sender()) == []

    def test_sequence_disorder_flagged(self):
        flagged = violations_for(fake_sender(snd_una=5000, snd_nxt=4000))
        assert "tcp.sequence_order" in flagged

    def test_snd_nxt_beyond_flow_size_flagged(self):
        sender = fake_sender(snd_una=0, snd_nxt=20_000, _rto_handle=SimpleNamespace(cancelled=False))
        assert "tcp.sequence_order" in violations_for(sender)

    def test_cwnd_below_one_segment_flagged(self):
        assert violations_for(fake_sender(cwnd=0.5)) == ["tcp.cwnd_floor"]

    def test_non_finite_cwnd_flagged(self):
        assert violations_for(fake_sender(cwnd=math.nan)) == ["tcp.cwnd_floor"]
        assert violations_for(fake_sender(cwnd=math.inf)) == ["tcp.cwnd_floor"]

    def test_negative_pipe_flagged(self):
        assert violations_for(fake_sender(pipe_segments=-1.0)) == ["tcp.pipe_negative"]

    def test_sack_overrun_flagged(self):
        sender = fake_sender(
            snd_una=0,
            snd_nxt=1000,
            _sacked=SimpleNamespace(total_bytes=2000),
            _rto_handle=SimpleNamespace(cancelled=False),
        )
        assert "tcp.sack_overrun" in violations_for(sender)

    def test_rto_armed_after_finish_flagged(self):
        sender = fake_sender(
            finished=True, _rto_handle=SimpleNamespace(cancelled=False)
        )
        assert violations_for(sender) == ["tcp.rto_after_finish"]

    def test_outstanding_without_rto_flagged(self):
        sender = fake_sender(snd_una=0, snd_nxt=3000)
        assert violations_for(sender) == ["tcp.rto_disarmed"]

    def test_cancelled_rto_handle_counts_as_disarmed(self):
        sender = fake_sender(
            snd_una=0, snd_nxt=3000, _rto_handle=SimpleNamespace(cancelled=True)
        )
        assert violations_for(sender) == ["tcp.rto_disarmed"]

    def test_raises_without_report(self):
        with pytest.raises(InvariantViolation) as excinfo:
            check_sender_invariants(fake_sender(cwnd=0.0))
        assert excinfo.value.invariant == "tcp.cwnd_floor"
        assert excinfo.value.subject == "flow-7"


class TestInstallation:
    def test_checked_flow_completes_clean(self):
        sim, sender, done = make_sender(200_000)
        report = ViolationReport()
        install_sender_checks(sender, report)
        sender.start()
        sim.run(until=120.0)
        assert done and sender.stats.completed
        assert report.ok
        assert report.checks_performed > 0

    def test_real_violation_raises_out_of_the_run(self):
        sim, sender, _ = make_sender(5_000_000)  # still in flight at t=1
        install_sender_checks(sender, report=None)
        sender.start()
        # Sabotage the sequence bookkeeping mid-flight (the window would
        # regrow within one ACK): the next stable point must trip.
        sim.schedule(
            1.0, lambda: setattr(sender, "snd_una", sender.snd_nxt + 1)
        )
        with pytest.raises(InvariantViolation):
            sim.run(until=120.0)

    def test_checked_factory_wraps_and_preserves_behaviour(self):
        report = ViolationReport()

        def factory(sim, host, spec, flow_size_bytes, on_complete):
            return TcpSender(sim, host, spec, flow_size_bytes, on_complete)

        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 10_000, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = checked_factory(factory, report)(
            sim, top.senders[0], spec, 30_000, done.append
        )
        sender.start()
        sim.run(until=60.0)
        assert done and sender.stats.completed
        assert report.ok and report.checks_performed > 0

    def test_checks_do_not_perturb_trajectory(self):
        def run(checked):
            sim, sender, _ = make_sender(500_000)
            if checked:
                install_sender_checks(sender, ViolationReport())
            sender.start()
            sim.run(until=120.0)
            return (
                sender.stats.end_time,
                sender.stats.packets_sent,
                tuple(sender.stats.rtt_samples),
            )

        assert run(False) == run(True)

"""Tests for the packet/byte conservation audits."""

import numpy as np
import pytest

from repro.simcheck import (
    InvariantViolation,
    ViolationReport,
    audit_host,
    audit_link,
    audit_queue,
    audit_router,
    audit_topology,
    fault_absorbed_packets,
)
from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    LinkOutage,
    RandomLoss,
    Simulator,
    make_data_packet,
)
from repro.simnet.link import Link


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, packet, link):
        self.packets.append(packet)


def loaded_link(sim, n_packets=20, bw=8e6, delay=0.001):
    """A link that has carried ``n_packets`` and drained completely."""
    link = Link(sim, "L", bw, delay)
    link.attach(Collector(sim))
    for i in range(n_packets):
        sim.schedule_at(
            0.01 * i, lambda i=i: link.send(make_data_packet(1, "a", "b", i, 1000))
        )
    sim.run()
    return link


class TestQueueLaw:
    def test_clean_queue_passes(self):
        sim = Simulator()
        link = loaded_link(sim)
        audit_queue(link.queue, "L.queue", sim.now)

    def test_tampered_packet_count_detected(self):
        sim = Simulator()
        link = loaded_link(sim)
        link.queue.stats.enqueued_packets += 1
        with pytest.raises(InvariantViolation) as excinfo:
            audit_queue(link.queue, "L.queue", sim.now)
        assert excinfo.value.invariant == "conservation.queue_packets"

    def test_tampered_byte_count_detected(self):
        sim = Simulator()
        link = loaded_link(sim)
        link.queue.stats.dequeued_bytes -= 500
        with pytest.raises(InvariantViolation) as excinfo:
            audit_queue(link.queue, "L.queue", sim.now)
        assert excinfo.value.invariant == "conservation.queue_bytes"


class TestLinkLaws:
    def test_drained_link_passes(self):
        sim = Simulator()
        link = loaded_link(sim)
        assert link.packets_delivered == 20
        audit_link(link, sim.now)

    def test_busy_link_passes_mid_serialization(self):
        sim = Simulator()
        link = Link(sim, "L", bandwidth_bps=1e4, delay_s=0.001)  # slow: stays busy
        link.attach(Collector(sim))
        for i in range(5):
            link.send(make_data_packet(1, "a", "b", i, 1000))
        sim.run(until=0.1)  # mid-transfer: one packet serializing, rest queued
        assert link.is_busy
        audit_link(link, sim.now)

    def test_lost_offered_packet_detected(self):
        sim = Simulator()
        link = loaded_link(sim)
        link.packets_offered += 1
        with pytest.raises(InvariantViolation) as excinfo:
            audit_link(link, sim.now)
        assert excinfo.value.invariant == "conservation.link_packets"

    def test_byte_ledger_mismatch_detected(self):
        sim = Simulator()
        link = loaded_link(sim)
        link.bytes_offered += 10  # idle link must have a zero byte residual
        report = ViolationReport()
        audit_link(link, sim.now, report=report)
        assert [v.invariant for v in report.violations] == ["conservation.link_bytes"]

    def test_overdelivery_detected(self):
        sim = Simulator()
        link = loaded_link(sim)
        link.packets_delivered += 1
        report = ViolationReport()
        audit_link(link, sim.now, report=report)
        assert any(
            v.invariant == "conservation.link_wire" for v in report.violations
        )

    def test_blackholed_packets_credited_to_faults(self):
        sim = Simulator()
        link = Link(sim, "L", 8e6, 0.001)
        link.attach(Collector(sim))
        outage = LinkOutage(sim, link, start_s=0.5, duration_s=10.0)
        loss = RandomLoss(sim, link, 0.5, np.random.default_rng(0))
        for i in range(30):
            sim.schedule_at(
                1.0 + 0.01 * i,
                lambda i=i: link.send(make_data_packet(1, "a", "b", i, 1000)),
            )
        sim.run()
        absorbed = fault_absorbed_packets(link, [outage, loss])
        assert absorbed == outage.packets_blackholed + loss.packets_dropped
        assert absorbed == 30  # whatever loss passes, the outage eats
        # Absorbed packets show up as the wire residual; crediting the
        # faults makes the law exact on this drained link.
        assert link.packets_transmitted - link.packets_delivered == absorbed
        audit_link(link, sim.now, faults=[outage, loss])

    def test_foreign_faults_not_credited(self):
        sim = Simulator()
        link = loaded_link(sim)
        other = Link(sim, "other", 8e6, 0.001)
        other.attach(Collector(sim))
        foreign = LinkOutage(sim, other, start_s=sim.now + 1.0, duration_s=1.0)
        assert fault_absorbed_packets(link, [foreign]) == 0


class TestNodeLaws:
    def test_router_tamper_detected(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        audit_router(top.left_router, sim.now)
        top.left_router.packets_received += 3
        with pytest.raises(InvariantViolation) as excinfo:
            audit_router(top.left_router, sim.now)
        assert excinfo.value.invariant == "conservation.router"

    def test_host_discard_overrun_detected(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        host = top.senders[0]
        audit_host(host, sim.now)
        host.packets_discarded = host.packets_received + 1
        with pytest.raises(InvariantViolation) as excinfo:
            audit_host(host, sim.now)
        assert excinfo.value.invariant == "conservation.host"


class TestTopologyAudit:
    def test_fresh_dumbbell_passes(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=4))
        report = ViolationReport()
        audit_topology(top, sim.now, report=report)
        assert report.ok
        assert report.checks_performed > 0

    def test_single_corruption_is_localized(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=4))
        top.right_router.packets_forwarded += 1
        report = ViolationReport()
        audit_topology(top, sim.now, report=report)
        assert [v.invariant for v in report.violations] == ["conservation.router"]
        assert report.violations[0].subject == top.right_router.name

"""Accounting regressions: flush conservation, mid-simulation queue
creation, and the heap-based priority queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.packet import make_data_packet
from repro.simnet.queues import DropTailQueue, PriorityQueue


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def data(seq=0, payload=1000, priority=0):
    return make_data_packet(1, "a", "b", seq, payload, priority=priority)


class TestFlushAccounting:
    def test_flush_credits_flushed_counters(self):
        q = DropTailQueue(None, FakeClock())
        total_bytes = 0
        for i in range(4):
            packet = data(seq=i)
            total_bytes += packet.size_bytes
            q.enqueue(packet)
        drained = q.flush()
        assert len(drained) == 4
        assert q.stats.flushed_packets == 4
        assert q.stats.flushed_bytes == total_bytes

    def test_conservation_after_flush(self):
        # The original bug: flush zeroed occupancy without crediting the
        # drained packets anywhere, so enqueued != dequeued + queued.
        q = DropTailQueue(None, FakeClock())
        for i in range(5):
            q.enqueue(data(seq=i))
        q.dequeue()
        q.flush()
        q.assert_conservation()
        stats = q.stats
        assert stats.enqueued_packets == stats.dequeued_packets + stats.flushed_packets

    def test_flush_empty_queue_is_noop(self):
        q = DropTailQueue(None, FakeClock())
        assert q.flush() == []
        assert q.stats.flushed_packets == 0
        q.assert_conservation()

    def test_assert_conservation_detects_violation(self):
        q = DropTailQueue(None, FakeClock())
        q.enqueue(data())
        q.stats.enqueued_packets += 1  # simulate lost accounting
        with pytest.raises(AssertionError, match="conservation"):
            q.assert_conservation()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["enqueue", "dequeue", "flush"]),
                st.integers(min_value=1, max_value=1460),
            ),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=60)
    def test_conservation_invariant_under_any_op_sequence(self, ops):
        clock = FakeClock()
        q = DropTailQueue(5000, clock)
        seq = 0
        for op, payload in ops:
            clock.t += 0.1
            if op == "enqueue":
                q.enqueue(make_data_packet(1, "a", "b", seq, payload))
                seq += 1
            elif op == "dequeue":
                q.dequeue()
            else:
                q.flush()
            q.assert_conservation()


class TestMidSimulationCreation:
    def test_no_phantom_occupancy_from_time_zero(self):
        # The original bug: last_change_time was hard-coded to 0.0, so a
        # queue created at t=30 integrated 30 phantom empty-queue seconds
        # on its first enqueue (and phantom *occupied* time had packets
        # been present), skewing time-averaged occupancy.
        clock = FakeClock(t=30.0)
        q = DropTailQueue(None, clock)
        assert q.created_at == 30.0
        assert q.stats.last_change_time == 30.0
        q.enqueue(data())
        clock.t = 32.0
        q.dequeue()
        # One packet held for exactly 2 seconds, not 32.
        assert q.stats.occupancy_packet_seconds == pytest.approx(2.0)

    def test_mean_occupancy_over_queue_lifetime(self):
        clock = FakeClock(t=30.0)
        q = DropTailQueue(None, clock)
        p = data(payload=960)  # 1000 bytes on the wire
        q.enqueue(p)
        clock.t = 32.0
        q.dequeue()
        lifetime = clock.t - q.created_at
        assert q.stats.mean_occupancy_bytes(lifetime) == pytest.approx(1000.0)

    def test_priority_queue_inherits_creation_time(self):
        clock = FakeClock(t=12.5)
        q = PriorityQueue(None, clock)
        assert q.stats.last_change_time == 12.5


class TestHeapPriorityQueue:
    def test_strict_priority_order(self):
        q = PriorityQueue(None, FakeClock())
        q.enqueue(data(seq=0, priority=5))
        q.enqueue(data(seq=1, priority=1))
        q.enqueue(data(seq=2, priority=3))
        assert [q.dequeue().seq for _ in range(3)] == [1, 2, 0]

    def test_fifo_within_priority_class_at_scale(self):
        q = PriorityQueue(None, FakeClock())
        for i in range(300):
            q.enqueue(data(seq=i, priority=i % 3, payload=100))
        out = [q.dequeue() for _ in range(300)]
        # Strictly sorted by (priority, arrival seq): a stable reference.
        expected = sorted(range(300), key=lambda i: (i % 3, i))
        assert [p.seq for p in out] == expected

    def test_flush_drains_in_dequeue_order(self):
        q = PriorityQueue(None, FakeClock())
        q.enqueue(data(seq=0, priority=2))
        q.enqueue(data(seq=1, priority=0))
        q.enqueue(data(seq=2, priority=2))
        q.enqueue(data(seq=3, priority=1))
        assert [p.seq for p in q.flush()] == [1, 3, 0, 2]
        assert len(q) == 0 and q.bytes_queued == 0
        q.assert_conservation()

    def test_conservation_with_drops_and_flush(self):
        q = PriorityQueue(2000, FakeClock())
        for i in range(6):
            q.enqueue(data(seq=i, priority=i % 2, payload=900))
        q.dequeue()
        q.flush()
        q.assert_conservation()
        assert q.stats.dropped_packets > 0  # capacity forced drops

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=40, max_value=1460),
            ),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=60)
    def test_heap_matches_stable_sort_reference(self, arrivals):
        q = PriorityQueue(None, FakeClock())
        for i, (priority, payload) in enumerate(arrivals):
            q.enqueue(make_data_packet(1, "a", "b", i, payload, priority=priority))
        out = []
        while True:
            packet = q.dequeue()
            if packet is None:
                break
            out.append(packet.seq)
        expected = [
            i
            for i, _ in sorted(
                enumerate(arrivals), key=lambda item: (item[1][0], item[0])
            )
        ]
        assert out == expected

"""SimWatchdog: event/wall budgets, structured stall errors, no lost events."""

import pickle
import time

import pytest

from repro.simnet.engine import (
    SimulationStalled,
    Simulator,
    SimWatchdog,
    WatchdogConfig,
)


class TestWatchdogConfig:
    def test_defaults_are_unlimited(self):
        config = WatchdogConfig()
        assert config.max_events is None
        assert config.max_wall_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_events": 0},
            {"max_events": -5},
            {"max_wall_s": 0.0},
            {"max_wall_s": -1.0},
            {"check_interval": 0},
        ],
    )
    def test_rejects_invalid_limits(self, kwargs):
        with pytest.raises(ValueError):
            WatchdogConfig(**kwargs)


class TestSimulationStalled:
    def test_carries_structured_fields(self):
        exc = SimulationStalled("max_events", 100, 100, 0.5, 3.25)
        assert exc.reason == "max_events"
        assert exc.limit == 100
        assert exc.events_processed == 100
        assert exc.wall_seconds == 0.5
        assert exc.sim_now == 3.25
        assert "max_events" in str(exc)

    def test_pickle_round_trip(self):
        # Stall errors cross the worker->supervisor process boundary.
        exc = SimulationStalled("max_wall_s", 2.0, 4321, 2.125, 7.5)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, SimulationStalled)
        assert clone.reason == exc.reason
        assert clone.limit == exc.limit
        assert clone.events_processed == exc.events_processed
        assert clone.wall_seconds == exc.wall_seconds
        assert clone.sim_now == exc.sim_now


def schedule_burst(sim, count):
    fired = []
    for i in range(count):
        sim.schedule(0.001 * (i + 1), fired.append, i)
    return fired


class TestMaxEvents:
    def test_raises_at_event_budget(self):
        sim = Simulator()
        fired = schedule_burst(sim, 10)
        sim.install_watchdog(SimWatchdog(WatchdogConfig(max_events=5)))
        with pytest.raises(SimulationStalled) as excinfo:
            sim.run()
        exc = excinfo.value
        assert exc.reason == "max_events"
        assert exc.limit == 5
        assert exc.events_processed == 5
        assert len(fired) == 5

    def test_stall_never_discards_pending_events(self):
        # The check runs before the pop, so the interrupted event is
        # still on the calendar and a resumed run executes everything.
        sim = Simulator()
        fired = schedule_burst(sim, 10)
        sim.install_watchdog(SimWatchdog(WatchdogConfig(max_events=5)))
        with pytest.raises(SimulationStalled):
            sim.run()
        assert sim.pending_events == 5
        sim.remove_watchdog()
        sim.run()
        assert fired == list(range(10))
        assert sim.events_processed == 10

    def test_budget_counts_all_runs_not_per_call(self):
        sim = Simulator()
        schedule_burst(sim, 10)
        sim.install_watchdog(SimWatchdog(WatchdogConfig(max_events=8)))
        sim.run(until=0.0055)  # executes 5 events
        assert sim.events_processed == 5
        with pytest.raises(SimulationStalled):
            sim.run()  # trips 3 events later, at the cumulative budget


class TestMaxWall:
    def test_raises_on_wall_budget(self):
        sim = Simulator()

        def spin(sim):
            time.sleep(0.002)
            sim.schedule(0.001, spin, sim)

        sim.schedule(0.001, spin, sim)
        sim.install_watchdog(
            SimWatchdog(WatchdogConfig(max_wall_s=0.02, check_interval=1))
        )
        with pytest.raises(SimulationStalled) as excinfo:
            sim.run(until=60.0)
        exc = excinfo.value
        assert exc.reason == "max_wall_s"
        assert exc.limit == 0.02
        assert exc.wall_seconds > 0.02

    def test_wall_checked_every_interval_events(self):
        # With a large interval the countdown shields the budget until
        # interval events have run, even though the wall is long blown.
        sim = Simulator()
        watchdog = SimWatchdog(
            WatchdogConfig(max_wall_s=1e-9, check_interval=1000)
        )
        sim.install_watchdog(watchdog)
        watchdog.arm()
        time.sleep(0.001)  # wall budget now exhausted
        for _ in range(999):
            watchdog.check(sim)  # countdown not yet elapsed
        with pytest.raises(SimulationStalled):
            watchdog.check(sim)


class TestInstallRemove:
    def test_install_returns_and_exposes_watchdog(self):
        sim = Simulator()
        assert sim.watchdog is None
        watchdog = sim.install_watchdog(SimWatchdog())
        assert sim.watchdog is watchdog
        sim.remove_watchdog()
        assert sim.watchdog is None

    def test_arm_is_idempotent(self):
        watchdog = SimWatchdog(WatchdogConfig(max_wall_s=60.0))
        assert watchdog.wall_elapsed_s == 0.0
        watchdog.arm()
        first = watchdog._wall_started
        watchdog.arm()
        assert watchdog._wall_started == first
        assert watchdog.wall_elapsed_s >= 0.0

    def test_unlimited_watchdog_never_trips(self):
        sim = Simulator()
        fired = schedule_burst(sim, 50)
        sim.install_watchdog(SimWatchdog())
        sim.run()
        assert len(fired) == 50

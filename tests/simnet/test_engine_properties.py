"""Stateful/property stress tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator


class TestClockMonotonicity:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),  # initial delay
                st.floats(min_value=0.0, max_value=5.0),   # chained delay
                st.integers(min_value=0, max_value=3),     # chain length
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=60)
    def test_clock_never_goes_backwards(self, seeds):
        sim = Simulator()
        observed = []

        def chain(remaining, delay):
            observed.append(sim.now)
            if remaining > 0:
                sim.schedule(delay, chain, remaining - 1, delay)

        for initial, chained, length in seeds:
            sim.schedule(initial, chain, length, chained)
        sim.run()
        assert observed == sorted(observed)
        assert sim.pending_events == 0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_run_until_boundary_exact(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, fired.append, delay)
        cutoff = 50.0
        sim.run(until=cutoff)
        assert all(t <= cutoff for t in fired)
        assert sim.now == max(cutoff, max((t for t in fired), default=0.0))
        sim.run()
        assert sorted(fired) == sorted(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.booleans()),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50)
    def test_max_events_is_exact(self, entries, budget):
        sim = Simulator()
        fired = []
        live = 0
        for delay, cancel in entries:
            handle = sim.schedule(delay, fired.append, delay)
            if cancel:
                handle.cancel()
            else:
                live += 1
        sim.run(max_events=budget)
        assert len(fired) == min(budget, live)


class TestEventsDuringRun:
    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30)
    def test_self_rescheduling_terminates_with_counter(self, rounds):
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < rounds:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count["n"] == rounds

    def test_zero_delay_events_fire_in_fifo_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("a"),
                                   sim.schedule(0.0, order.append, "b"),
                                   sim.schedule(0.0, order.append, "c")))
        sim.run()
        assert order == ["a", "b", "c"]

"""Tests for fault injection (outages, random loss) and the RED queue."""

import numpy as np
import pytest

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowSpec,
    LinkOutage,
    RandomLoss,
    RedQueue,
    Simulator,
    make_data_packet,
)
from repro.simnet.link import Link
from repro.transport import CubicSender, TcpSink


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, packet, link):
        self.packets.append((self.sim.now, packet))


def simple_link(sim, bw=8e6, delay=0.001):
    link = Link(sim, "L", bw, delay)
    dst = Collector(sim)
    link.attach(dst)
    return link, dst


class TestLinkOutage:
    def test_packets_blackholed_during_window(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        outage = LinkOutage(sim, link, start_s=1.0, duration_s=2.0)
        for t, seq in [(0.5, 0), (1.5, 1), (2.5, 2), (3.5, 3)]:
            sim.schedule_at(
                t, lambda s=seq: link.send(make_data_packet(1, "a", "b", s, 100))
            )
        sim.run()
        delivered = [p.seq for _t, p in dst.packets]
        assert delivered == [0, 3]
        assert outage.packets_blackholed == 2

    def test_validation(self):
        sim = Simulator()
        link, _ = simple_link(sim)
        with pytest.raises(ValueError):
            LinkOutage(sim, link, start_s=0.0, duration_s=0.0)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            LinkOutage(sim, link, start_s=0.5, duration_s=1.0)

    def test_tcp_survives_outage(self):
        """A connection stalls through a short outage and then completes
        via RTO-driven recovery."""
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = CubicSender(sim, top.senders[0], spec, 2_000_000, done.append)
        LinkOutage(sim, top.bottleneck, start_s=0.5, duration_s=1.5)
        sender.start()
        sim.run(until=120.0)
        assert done, "flow must finish after the outage clears"
        assert sender.stats.timeouts >= 1


class TestRandomLoss:
    def test_statistical_drop_rate(self):
        sim = Simulator()
        link, dst = simple_link(sim, bw=1e9)
        fault = RandomLoss(sim, link, 0.3, np.random.default_rng(0))
        for i in range(2000):
            link.send(make_data_packet(1, "a", "b", i, 100))
        sim.run()
        assert fault.observed_loss_rate == pytest.approx(0.3, abs=0.05)
        assert len(dst.packets) == fault.packets_passed

    def test_remove_restores_delivery(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        fault = RandomLoss(sim, link, 0.99, np.random.default_rng(0))
        fault.remove()
        for i in range(20):
            link.send(make_data_packet(1, "a", "b", i, 100))
        sim.run()
        assert len(dst.packets) == 20

    def test_validation(self):
        sim = Simulator()
        link, _ = simple_link(sim)
        with pytest.raises(ValueError):
            RandomLoss(sim, link, 1.0, np.random.default_rng(0))


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestRedQueue:
    def _queue(self, ecn=False, **kwargs):
        defaults = dict(
            capacity_bytes=100_000,
            clock=FakeClock(),
            rng=np.random.default_rng(1),
            min_thresh_bytes=5_000,
            max_thresh_bytes=20_000,
            ecn=ecn,
        )
        defaults.update(kwargs)
        return RedQueue(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._queue(min_thresh_bytes=0)
        with pytest.raises(ValueError):
            self._queue(min_thresh_bytes=30_000)  # above max
        with pytest.raises(ValueError):
            self._queue(max_probability=0.0)
        with pytest.raises(ValueError):
            self._queue(weight=2.0)

    def test_no_early_drops_below_min_threshold(self):
        q = self._queue()
        for i in range(4):  # ~4 KB < min threshold
            assert q.enqueue(make_data_packet(1, "a", "b", i, 960))
        assert q.early_drops == 0

    def test_early_drops_appear_under_sustained_load(self):
        q = self._queue(weight=0.1)
        accepted = 0
        for i in range(200):
            if q.enqueue(make_data_packet(1, "a", "b", i, 960)):
                accepted += 1
        assert q.early_drops > 0
        # RED drops early: occupancy stays below the hard capacity.
        assert q.bytes_queued < 100_000

    def test_average_tracks_occupancy(self):
        q = self._queue(weight=0.5)
        for i in range(20):
            q.enqueue(make_data_packet(1, "a", "b", i, 960))
        assert q.avg_queue_bytes > 0
        assert q.avg_queue_bytes <= q.bytes_queued + 1000

    def test_ecn_marks_instead_of_dropping(self):
        # Keep the average inside (min_thresh, max_thresh): ECN marks
        # replace early drops there.  (Above max_thresh RED still drops,
        # ECN or not, per RFC 3168.)
        q = self._queue(ecn=True, weight=0.5, max_probability=0.8)
        marks = 0
        for i in range(19):
            q.enqueue(make_data_packet(1, "a", "b", i, 960))
        assert q.avg_queue_bytes < q.max_thresh
        assert q.ecn_marks > 0
        assert q.early_drops == 0

    def test_ecn_still_drops_above_max_threshold(self):
        q = self._queue(ecn=True, weight=1.0)
        for i in range(60):
            q.enqueue(make_data_packet(1, "a", "b", i, 960))
        assert q.early_drops > 0

    def test_forced_drop_above_max_threshold(self):
        q = self._queue(weight=1.0)  # average == instantaneous
        dropped = 0
        for i in range(100):
            if not q.enqueue(make_data_packet(1, "a", "b", i, 960)):
                dropped += 1
        assert dropped > 0
        # With avg at max_thresh, everything beyond is an early drop.
        assert q.bytes_queued <= 25_000

"""Tests for the composable fault layer: stacking, ordering, teardown."""

import numpy as np
import pytest

from repro.simnet import (
    DelaySpike,
    FaultInjector,
    LinkFlap,
    LinkOutage,
    RandomLoss,
    Simulator,
    make_data_packet,
)
from repro.simnet.link import Link


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, packet, link):
        self.packets.append((self.sim.now, packet))


def simple_link(sim, bw=8e6, delay=0.001):
    link = Link(sim, "L", bw, delay)
    dst = Collector(sim)
    link.attach(dst)
    return link, dst


def send_at(sim, link, t, seq):
    sim.schedule_at(t, lambda: link.send(make_data_packet(1, "a", "b", seq, 100)))


class TestOverlappingFaults:
    def test_outage_plus_random_loss(self):
        """During the outage nothing is delivered (loss applies first in
        install order, the outage eats the rest); loss keeps acting after
        the outage ends (the old capture-the-hook scheme restored the
        pristine deliver here, silently disabling the loss fault)."""
        sim = Simulator()
        link, dst = simple_link(sim)
        loss = RandomLoss(sim, link, 0.5, np.random.default_rng(0))
        outage = LinkOutage(sim, link, start_s=1.0, duration_s=1.0)
        mid: dict = {}
        sim.schedule_at(
            2.5,
            lambda: mid.update(
                dropped=loss.packets_dropped, passed=loss.packets_passed
            ),
        )
        for i in range(10):
            send_at(sim, link, 1.2 + i * 0.01, i)      # inside the outage
        for i in range(10, 210):
            send_at(sim, link, 3.0 + i * 0.01, i)      # after recovery
        sim.run()
        # All 10 outage-window packets met the loss fault; whatever it
        # passed, the outage blackholed — nothing from the window arrives.
        assert mid["dropped"] + mid["passed"] == 10
        assert outage.packets_blackholed == mid["passed"]
        assert all(p.seq >= 10 for _t, p in dst.packets)
        # After recovery the loss fault is still in the path.
        after_total = loss.packets_dropped + loss.packets_passed - 10
        assert after_total == 200
        assert len(dst.packets) == loss.packets_passed - outage.packets_blackholed

    def test_loss_removed_while_outage_pending_keeps_outage(self):
        """Removing the first-installed fault must not unhook a fault
        installed after it (the non-LIFO teardown bug)."""
        sim = Simulator()
        link, dst = simple_link(sim)
        loss = RandomLoss(sim, link, 0.0, np.random.default_rng(0))
        outage = LinkOutage(sim, link, start_s=1.0, duration_s=1.0)
        sim.schedule_at(1.1, loss.remove)
        send_at(sim, link, 1.5, 0)   # outage must still blackhole this
        send_at(sim, link, 2.5, 1)   # delivered after the outage
        sim.run()
        assert outage.packets_blackholed == 1
        assert [p.seq for _t, p in dst.packets] == [1]

    def test_non_lifo_removal_restores_exact_delivery(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        pristine = link._deliver
        a = RandomLoss(sim, link, 0.0, np.random.default_rng(0))
        b = RandomLoss(sim, link, 0.0, np.random.default_rng(1))
        c = RandomLoss(sim, link, 0.0, np.random.default_rng(2))
        a.remove()  # first-installed first: non-LIFO
        c.remove()
        b.remove()
        assert link._deliver == pristine
        for i in range(5):
            link.send(make_data_packet(1, "a", "b", i, 100))
        sim.run()
        assert len(dst.packets) == 5
        # None of the removed faults saw the post-teardown traffic.
        assert a.packets_passed == b.packets_passed == c.packets_passed == 0

    def test_remove_is_idempotent(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        pristine = link._deliver
        a = RandomLoss(sim, link, 0.0, np.random.default_rng(0))
        b = RandomLoss(sim, link, 0.0, np.random.default_rng(1))
        a.remove()
        a.remove()
        b.remove()
        assert link._deliver == pristine

    def test_middle_fault_still_counts_after_outer_removal(self):
        """With three stacked loss faults, removing the outer two leaves
        the middle one exactly in the path."""
        sim = Simulator()
        link, dst = simple_link(sim)
        a = RandomLoss(sim, link, 0.0, np.random.default_rng(0))
        b = RandomLoss(sim, link, 0.0, np.random.default_rng(1))
        c = RandomLoss(sim, link, 0.0, np.random.default_rng(2))
        a.remove()
        c.remove()
        for i in range(7):
            link.send(make_data_packet(1, "a", "b", i, 100))
        sim.run()
        assert b.packets_passed == 7
        assert a.packets_passed == 0 and c.packets_passed == 0
        assert len(dst.packets) == 7


class TestBackToBackOutages:
    def test_sequential_outages_and_full_recovery(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        pristine = link._deliver
        first = LinkOutage(sim, link, start_s=1.0, duration_s=1.0)
        second = LinkOutage(sim, link, start_s=2.0, duration_s=1.0)
        send_at(sim, link, 0.5, 0)
        send_at(sim, link, 1.5, 1)
        send_at(sim, link, 2.5, 2)
        send_at(sim, link, 3.5, 3)
        sim.run()
        assert first.packets_blackholed == 1
        assert second.packets_blackholed == 1
        assert [p.seq for _t, p in dst.packets] == [0, 3]
        assert link._deliver == pristine

    def test_overlapping_outages(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        pristine = link._deliver
        first = LinkOutage(sim, link, start_s=1.0, duration_s=2.0)
        second = LinkOutage(sim, link, start_s=2.0, duration_s=2.0)
        send_at(sim, link, 2.5, 0)   # both active: first (older) counts it
        send_at(sim, link, 3.5, 1)   # only the second remains
        send_at(sim, link, 4.5, 2)   # both ended
        sim.run()
        assert first.packets_blackholed == 1
        assert second.packets_blackholed == 1
        assert [p.seq for _t, p in dst.packets] == [2]
        assert link._deliver == pristine


class TestLinkFlap:
    def test_down_windows_blackhole_up_windows_deliver(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        flap = LinkFlap(sim, link, start_s=1.0, down_s=0.5, up_s=0.5, cycles=2)
        # Windows: down [1.0,1.5), up [1.5,2.0), down [2.0,2.5), up after.
        send_at(sim, link, 1.2, 0)
        send_at(sim, link, 1.7, 1)
        send_at(sim, link, 2.2, 2)
        send_at(sim, link, 2.7, 3)
        sim.run()
        assert flap.packets_blackholed == 2
        assert flap.transitions == 4
        assert not flap.down
        assert [p.seq for _t, p in dst.packets] == [1, 3]

    def test_end_time_and_validation(self):
        sim = Simulator()
        link, _ = simple_link(sim)
        flap = LinkFlap(sim, link, start_s=1.0, down_s=0.5, up_s=0.25, cycles=4)
        assert flap.end_s == pytest.approx(4.0)
        with pytest.raises(ValueError):
            LinkFlap(sim, link, start_s=1.0, down_s=0.0, up_s=0.5)
        with pytest.raises(ValueError):
            LinkFlap(sim, link, start_s=1.0, down_s=0.5, up_s=0.5, cycles=0)


class TestDelaySpike:
    def test_delays_only_inside_window(self):
        sim = Simulator()
        link, dst = simple_link(sim, bw=8e8, delay=0.001)
        spike = DelaySpike(sim, link, start_s=1.0, duration_s=1.0, extra_delay_s=0.2)
        send_at(sim, link, 0.5, 0)
        send_at(sim, link, 1.5, 1)
        send_at(sim, link, 2.5, 2)
        sim.run()
        times = {p.seq: t for t, p in dst.packets}
        ser = 100 * 8.0 / 8e8
        assert times[0] == pytest.approx(0.5 + ser + 0.001, abs=1e-6)
        assert times[1] == pytest.approx(1.5 + ser + 0.001 + 0.2, abs=1e-6)
        assert times[2] == pytest.approx(2.5 + ser + 0.001, abs=1e-6)
        assert spike.packets_delayed == 1

    def test_delayed_packet_meets_later_outage(self):
        """A packet parked by the spike resumes into an outage that began
        meanwhile and is lost, like the real world would lose it."""
        sim = Simulator()
        link, dst = simple_link(sim, bw=8e8, delay=0.001)
        DelaySpike(sim, link, start_s=1.0, duration_s=0.5, extra_delay_s=0.5)
        outage = LinkOutage(sim, link, start_s=1.3, duration_s=1.0)
        send_at(sim, link, 1.1, 0)  # resumes ~1.6, inside the outage
        sim.run()
        assert outage.packets_blackholed == 1
        assert dst.packets == []

    def test_validation(self):
        sim = Simulator()
        link, _ = simple_link(sim)
        with pytest.raises(ValueError):
            DelaySpike(sim, link, start_s=0.5, duration_s=0.0, extra_delay_s=0.1)
        with pytest.raises(ValueError):
            DelaySpike(sim, link, start_s=0.5, duration_s=1.0, extra_delay_s=0.0)


class TestFaultInjector:
    def test_builds_and_tracks_faults(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        injector = FaultInjector(sim)
        outage = injector.link_outage(link, 1.0, 1.0)
        loss = injector.random_loss(link, 0.1, np.random.default_rng(0))
        flap = injector.link_flap(link, 3.0, 0.5, 0.5, cycles=1)
        spike = injector.delay_spike(link, 5.0, 1.0, 0.05)
        assert injector.faults == [outage, loss, flap, spike]
        assert injector.active_faults() == [loss]
        sim.run(until=1.5)
        assert set(injector.active_faults()) == {outage, loss}
        sim.run(until=10.0)
        assert injector.active_faults() == [loss]

    def test_server_outage_registration(self):
        class Target:
            def __init__(self):
                self.down = 0

            def mark_down(self):
                self.down += 1

            def mark_up(self):
                self.down -= 1

        sim = Simulator()
        target = Target()
        injector = FaultInjector(sim)
        fault = injector.server_outage(target, 1.0, 2.0)
        sim.run(until=1.5)
        assert target.down == 1 and fault.active
        sim.run(until=4.0)
        assert target.down == 0 and not fault.active

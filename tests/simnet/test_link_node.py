"""Tests for links (serialization, propagation, utilization) and nodes."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, bdp_bytes
from repro.simnet.node import Host, Router
from repro.simnet.packet import make_data_packet
from repro.simnet.queues import DropTailQueue


class Collector(Host):
    """Host that records every delivered packet with its arrival time."""

    def __init__(self, name, sim):
        super().__init__(name)
        self.sim = sim
        self.arrivals = []
        self.set_default_handler(self._collect)

    def _collect(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, bw=8_000_000.0, delay=0.01, capacity=None):
    queue = DropTailQueue(capacity, lambda: sim.now)
    return Link(sim, "L", bw, delay, queue)


class TestLinkTiming:
    def test_single_packet_delivery_time(self):
        sim = Simulator()
        link = make_link(sim, bw=8_000_000.0, delay=0.01)
        dst = Collector("dst", sim)
        link.attach(dst)
        p = make_data_packet(1, "a", "dst", 0, 960)  # 1000B -> 1ms at 8 Mbps
        link.send(p)
        sim.run()
        assert len(dst.arrivals) == 1
        t, _ = dst.arrivals[0]
        assert t == pytest.approx(0.001 + 0.01)

    def test_back_to_back_serialization(self):
        sim = Simulator()
        link = make_link(sim, bw=8_000_000.0, delay=0.0)
        dst = Collector("dst", sim)
        link.attach(dst)
        for i in range(3):
            link.send(make_data_packet(1, "a", "dst", i, 960))
        sim.run()
        times = [t for t, _ in dst.arrivals]
        assert times == pytest.approx([0.001, 0.002, 0.003])

    def test_no_reordering_through_link(self):
        sim = Simulator()
        link = make_link(sim)
        dst = Collector("dst", sim)
        link.attach(dst)
        for i in range(20):
            link.send(make_data_packet(1, "a", "dst", i, 500))
        sim.run()
        seqs = [p.seq for _, p in dst.arrivals]
        assert seqs == list(range(20))

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = make_link(sim, bw=8_000.0, delay=0.0, capacity=1100)  # slow link
        dst = Collector("dst", sim)
        link.attach(dst)
        for i in range(5):
            link.send(make_data_packet(1, "a", "dst", i, 960))
        sim.run()
        # One on the wire, one queued (1000 <= 1100); three dropped.
        assert len(dst.arrivals) == 2
        assert link.queue.stats.dropped_packets == 3

    def test_utilization_full_load(self):
        sim = Simulator()
        link = make_link(sim, bw=8_000_000.0, delay=0.0)
        dst = Collector("dst", sim)
        link.attach(dst)
        for i in range(10):
            link.send(make_data_packet(1, "a", "dst", i, 960))
        sim.run()
        assert link.utilization(0.0, 0.010) == pytest.approx(1.0, abs=1e-6)

    def test_utilization_idle(self):
        sim = Simulator()
        link = make_link(sim)
        dst = Collector("dst", sim)
        link.attach(dst)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert link.utilization() == 0.0

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "bad", 0.0, 0.01)
        with pytest.raises(ValueError):
            Link(sim, "bad", 1e6, -1.0)

    def test_unattached_link_raises_on_delivery(self):
        sim = Simulator()
        link = make_link(sim)
        link.send(make_data_packet(1, "a", "b", 0, 100))
        with pytest.raises(RuntimeError):
            sim.run()


class TestBdp:
    def test_paper_topology_bdp(self):
        # 15 Mbps x 150 ms = 281250 bytes.
        assert bdp_bytes(15e6, 0.150) == 281_250

    def test_buffer_is_five_bdp(self):
        from repro.simnet.topology import DumbbellConfig

        cfg = DumbbellConfig(bottleneck_bandwidth_bps=15e6, rtt_s=0.150)
        assert cfg.buffer_bytes == 5 * 281_250


class TestHost:
    def test_agent_dispatch_by_flow(self):
        sim = Simulator()
        host = Host("h")
        got = []

        class Agent:
            def handle_packet(self, packet):
                got.append(packet.flow_id)

        host.register_agent(7, Agent())
        link = make_link(sim)
        link.attach(host)
        link.send(make_data_packet(7, "a", "h", 0, 100))
        link.send(make_data_packet(8, "a", "h", 0, 100))  # unregistered: dropped
        sim.run()
        assert got == [7]

    def test_duplicate_registration_rejected(self):
        host = Host("h")

        class Agent:
            def handle_packet(self, packet):
                pass

        host.register_agent(1, Agent())
        with pytest.raises(ValueError):
            host.register_agent(1, Agent())

    def test_send_without_route_raises(self):
        host = Host("h")
        with pytest.raises(RuntimeError):
            host.send(make_data_packet(1, "h", "x", 0, 100))

    def test_explicit_route_overrides_uplink(self):
        sim = Simulator()
        host = Host("h")
        a = Collector("a", sim)
        b = Collector("b", sim)
        to_a = make_link(sim)
        to_a.attach(a)
        to_b = make_link(sim)
        to_b.attach(b)
        host.set_uplink(to_a)
        host.add_route("b", to_b)
        host.send(make_data_packet(1, "h", "b", 0, 100))
        host.send(make_data_packet(2, "h", "anything", 0, 100))
        sim.run()
        assert len(a.arrivals) == 1 and len(b.arrivals) == 1


class TestRouter:
    def test_forwarding_by_destination(self):
        sim = Simulator()
        router = Router("R")
        a = Collector("a", sim)
        b = Collector("b", sim)
        to_a = make_link(sim)
        to_a.attach(a)
        to_b = make_link(sim)
        to_b.attach(b)
        router.add_route("a", to_a)
        router.add_route("b", to_b)
        ingress = make_link(sim)
        ingress.attach(router)
        ingress.send(make_data_packet(1, "x", "b", 0, 100))
        ingress.send(make_data_packet(2, "x", "a", 0, 100))
        sim.run()
        assert [p.dst for _, p in a.arrivals] == ["a"]
        assert [p.dst for _, p in b.arrivals] == ["b"]
        assert router.packets_forwarded == 2

    def test_default_route(self):
        sim = Simulator()
        router = Router("R")
        sink = Collector("s", sim)
        out = make_link(sim)
        out.attach(sink)
        router.set_default_route(out)
        ingress = make_link(sim)
        ingress.attach(router)
        ingress.send(make_data_packet(1, "x", "unknown", 0, 100))
        sim.run()
        assert len(sink.arrivals) == 1

    def test_unroutable_counted(self):
        sim = Simulator()
        router = Router("R")
        ingress = make_link(sim)
        ingress.attach(router)
        ingress.send(make_data_packet(1, "x", "nowhere", 0, 100))
        sim.run()
        assert router.packets_unroutable == 1

    def test_hop_count_incremented(self):
        sim = Simulator()
        router = Router("R")
        sink = Collector("s", sim)
        out = make_link(sim)
        out.attach(sink)
        router.set_default_route(out)
        ingress = make_link(sim)
        ingress.attach(router)
        ingress.send(make_data_packet(1, "x", "s", 0, 100))
        sim.run()
        _, p = sink.arrivals[0]
        assert p.hops == 2

"""Tests for the Partition fault, multi-target ServerOutage, and the
lease-expiry-vs-outage race on the control plane."""

import pytest

from repro.phi.channel import ChannelConfig, ControlChannel
from repro.phi.replication import ReplicatedContextService, ReplicationConfig
from repro.phi.server import ConnectionReport, ContextServer
from repro.simnet import (
    FaultInjector,
    LinkFlap,
    Partition,
    ServerOutage,
    Simulator,
    make_data_packet,
)
from repro.simnet.link import Link


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, packet, link):
        self.packets.append((self.sim.now, packet))


class FakeTarget:
    def __init__(self):
        self.downs = 0
        self.ups = 0

    def mark_down(self):
        self.downs += 1

    def mark_up(self):
        self.ups += 1


class FakeMesh:
    def __init__(self):
        self.severed = set()

    def sever(self, i, j):
        self.severed.add((i, j))

    def heal(self, i, j):
        self.severed.discard((i, j))


def simple_link(sim, bw=8e6, delay=0.001):
    link = Link(sim, "L", bw, delay)
    dst = Collector(sim)
    link.attach(dst)
    return link, dst


def send_at(sim, link, t, seq):
    sim.schedule_at(t, lambda: link.send(make_data_packet(1, "a", "b", seq, 100)))


class TestMultiTargetServerOutage:
    def test_single_target_api_preserved(self):
        sim = Simulator()
        target = FakeTarget()
        outage = ServerOutage(sim, target, start_s=1.0, duration_s=1.0)
        assert outage.target is target
        assert outage.targets == (target,)
        sim.run()
        assert target.downs == 1 and target.ups == 1

    def test_multi_target_fails_and_heals_as_one(self):
        sim = Simulator()
        targets = [FakeTarget() for _ in range(3)]
        outage = ServerOutage(sim, targets, start_s=1.0, duration_s=2.0)
        assert outage.target is targets[0]
        sim.schedule_at(
            2.0, lambda: [t.downs for t in targets] == [1, 1, 1]
        )
        sim.run()
        assert all(t.downs == 1 and t.ups == 1 for t in targets)

    def test_empty_target_list_rejected(self):
        with pytest.raises(ValueError):
            ServerOutage(Simulator(), [], start_s=1.0, duration_s=1.0)


class TestPartitionValidation:
    def test_needs_a_path(self):
        with pytest.raises(ValueError):
            Partition(Simulator(), 1.0, 1.0)

    def test_edges_need_mesh(self):
        with pytest.raises(ValueError):
            Partition(Simulator(), 1.0, 1.0, edges=[(0, 1)])

    def test_rejects_bad_window(self):
        sim = Simulator()
        target = FakeTarget()
        with pytest.raises(ValueError):
            Partition(sim, 1.0, 0.0, targets=[target])
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            Partition(sim, 1.0, 1.0, targets=[target])


class TestPartitionSeversEverything:
    def test_targets_mesh_and_links_cut_then_healed(self):
        sim = Simulator()
        link, dst = simple_link(sim)
        target = FakeTarget()
        mesh = FakeMesh()
        partition = Partition(
            sim, 1.0, 2.0,
            links=[link], targets=[target], mesh=mesh, edges=[(0, 2), (1, 2)],
        )
        state = {}
        sim.schedule_at(
            2.0,
            lambda: state.update(
                active=partition.active,
                severed=set(mesh.severed),
                downs=target.downs,
                ups=target.ups,
            ),
        )
        send_at(sim, link, 2.0, 1)     # inside: blackholed
        send_at(sim, link, 4.0, 2)     # after heal: delivered
        sim.run()
        assert state["active"] and state["severed"] == {(0, 2), (1, 2)}
        assert state["downs"] == 1 and state["ups"] == 0
        assert partition.heals == 1 and not partition.active
        assert partition.packets_blackholed == 1
        assert len(dst.packets) == 1
        assert mesh.severed == set()
        assert target.downs == 1 and target.ups == 1
        assert partition.end_s == 3.0

    def test_composes_with_link_flap(self):
        """A flap stacked on a partitioned link: during the partition the
        blackhole eats what the flap lets through; after the partition
        heals, the flap keeps acting (no hook-restoration bug)."""
        sim = Simulator()
        link, dst = simple_link(sim)
        # Flap: down [0.5, 1.5), up [1.5, 2.0). Partition: [1.0, 2.0).
        LinkFlap(sim, link, start_s=0.5, down_s=1.0, up_s=0.5)
        partition = Partition(sim, 1.0, 2.0, links=[link])
        send_at(sim, link, 1.6, 1)     # flap up again, partition active
        send_at(sim, link, 3.5, 2)     # both over: delivered
        sim.run()
        assert partition.packets_blackholed >= 1
        assert any(packet.seq == 2 for _, packet in dst.packets)

    def test_nests_with_server_outage_downmarks(self):
        """An overlapping ServerOutage and Partition on the same channel:
        the channel stays down until BOTH have ended."""
        sim = Simulator()
        channel = ControlChannel(sim, ContextServer(sim, 10e6))
        ServerOutage(sim, channel, start_s=1.0, duration_s=3.0)
        Partition(sim, 2.0, 3.0, targets=[channel])
        probes = {}
        for t in (0.5, 1.5, 3.5, 4.5, 5.5):
            sim.schedule_at(t, lambda t=t: probes.update({t: channel.server_up}))
        sim.run()
        assert probes == {0.5: True, 1.5: False, 3.5: False, 4.5: False, 5.5: True}

    def test_injector_tracks_partitions(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        target = FakeTarget()
        fault = injector.partition(1.0, 1.0, targets=[target])
        assert isinstance(fault, Partition)
        assert fault in injector.faults


class TestLeaseExpiryOutageRace:
    """Satellite: a lease TTL expiring *inside* a ServerOutage window must
    not corrupt the lease table — clean re-acquire after heal, and
    ``active_connections`` never goes negative."""

    def _drive(self, sim, server, channel, observed):
        def lookup_at(t):
            def attempt():
                channel.call_lookup()  # RpcResult; failures are fine
                observed.append((t, server.active_connections))
            sim.schedule_at(t, attempt)

        return lookup_at

    def test_ttl_expiry_inside_outage_window(self):
        sim = Simulator()
        server = ContextServer(sim, 10e6, lease_ttl_s=2.0)
        channel = ControlChannel(sim, server, config=ChannelConfig())
        observed = []
        lookup_at = self._drive(sim, server, channel, observed)

        lookup_at(0.5)                 # lease issued at 0.5, expires 2.5
        ServerOutage(sim, channel, start_s=1.0, duration_s=3.0)
        lookup_at(2.0)                 # inside outage: no lease issued
        # Report for the (by now expired) lease lands after heal: the
        # FIFO release must not drive the count negative.
        sim.schedule_at(
            4.5,
            lambda: channel.call_report(
                ConnectionReport(
                    flow_id=1,
                    reported_at=sim.now,
                    bytes_transferred=1000,
                    duration_s=1.0,
                    mean_rtt_s=0.05,
                    min_rtt_s=0.04,
                    loss_indicator=0.0,
                )
            ),
        )
        lookup_at(5.0)                 # clean re-acquire post-heal
        probe = []
        sim.schedule_at(5.5, lambda: probe.append(server.active_connections))
        sim.run()
        counts = [count for _, count in observed]
        assert observed[0] == (0.5, 1)
        assert observed[1] == (2.0, 1)   # outage blocked the lookup
        assert observed[2] == (5.0, 1)   # expired lease gone, new one held
        assert all(count >= 0 for count in counts)
        assert probe == [1]

    def test_expiry_race_on_replicated_plane(self):
        """Same race through the replicated service: leases issued on a
        replica that goes down TTL-expire everywhere, and no replica's
        count goes negative after heal."""
        sim = Simulator()
        service = ReplicatedContextService(
            sim, 10e6,
            config=ReplicationConfig(n_replicas=2, anti_entropy_period_s=0.5),
            lease_ttl_s=2.0,
        )
        channels = [
            ControlChannel(sim, service.handle(i)) for i in range(2)
        ]
        sim.schedule_at(0.4, channels[0].call_lookup)
        Partition(sim, 1.0, 3.0, targets=[channels[0]], mesh=service,
                  edges=[(0, 1)])
        counts = []
        for t in (0.9, 2.0, 4.5, 5.5):
            sim.schedule_at(
                t,
                lambda: counts.append(
                    [s.active_connections for s in service.servers]
                ),
            )
        sim.run(until=6.0)
        # Merged before the partition: both replicas saw the lease.
        assert counts[0] == [1, 1]
        # TTL (2s) fires during the partition on both sides.
        assert counts[2] == [0, 0]
        assert counts[3] == [0, 0]
        assert all(c >= 0 for snapshot in counts for c in snapshot)

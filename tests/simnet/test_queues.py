"""Tests for queue disciplines: FIFO order, drop-tail law, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.packet import PacketKind, Packet, make_data_packet
from repro.simnet.queues import DropTailQueue, PriorityQueue


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def data(seq=0, payload=1000, priority=0):
    return make_data_packet(1, "a", "b", seq, payload, priority=priority)


class TestDropTailBasics:
    def test_enqueue_dequeue_fifo_order(self):
        q = DropTailQueue(None, FakeClock())
        packets = [data(seq=i) for i in range(5)]
        for p in packets:
            assert q.enqueue(p)
        out = [q.dequeue() for _ in range(5)]
        assert [p.seq for p in out] == [0, 1, 2, 3, 4]

    def test_dequeue_empty_returns_none(self):
        q = DropTailQueue(None, FakeClock())
        assert q.dequeue() is None

    def test_byte_accounting(self):
        q = DropTailQueue(None, FakeClock())
        p = data(payload=500)
        q.enqueue(p)
        assert q.bytes_queued == p.size_bytes
        q.dequeue()
        assert q.bytes_queued == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(0, FakeClock())

    def test_drop_when_full(self):
        q = DropTailQueue(1500, FakeClock())
        assert q.enqueue(data(payload=1000))  # 1040 bytes
        assert not q.enqueue(data(payload=1000))
        assert q.stats.dropped_packets == 1

    def test_drop_callback_invoked(self):
        dropped = []
        q = DropTailQueue(1000, FakeClock(), on_drop=dropped.append)
        q.enqueue(data(payload=900))
        q.enqueue(data(seq=99, payload=900))
        assert len(dropped) == 1 and dropped[0].seq == 99

    def test_small_packet_can_fit_after_big_drop(self):
        # Drop tail drops only the arriving packet; later smaller ones fit.
        q = DropTailQueue(2000, FakeClock())
        q.enqueue(data(payload=1400))  # 1440
        assert not q.enqueue(data(payload=1400))
        assert q.enqueue(data(payload=400))  # 440 fits in remaining 560

    def test_flush_empties_queue(self):
        q = DropTailQueue(None, FakeClock())
        for i in range(3):
            q.enqueue(data(seq=i))
        drained = q.flush()
        assert len(drained) == 3
        assert len(q) == 0 and q.bytes_queued == 0

    def test_enqueued_at_stamped(self):
        clock = FakeClock()
        clock.t = 4.2
        q = DropTailQueue(None, clock)
        p = data()
        q.enqueue(p)
        assert p.enqueued_at == 4.2


class TestOccupancyIntegral:
    def test_time_weighted_occupancy(self):
        clock = FakeClock()
        q = DropTailQueue(None, clock)
        p = data(payload=960)  # size 1000
        q.enqueue(p)
        clock.t = 2.0
        q.dequeue()
        # 1000 bytes held for 2 seconds.
        assert q.stats.occupancy_byte_seconds == pytest.approx(2000.0)
        assert q.stats.mean_occupancy_bytes(2.0) == pytest.approx(1000.0)
        assert q.stats.mean_occupancy_packets(2.0) == pytest.approx(1.0)

    def test_peak_tracking(self):
        q = DropTailQueue(None, FakeClock())
        for i in range(4):
            q.enqueue(data(seq=i))
        q.dequeue()
        assert q.stats.peak_packets == 4

    def test_drop_rate(self):
        q = DropTailQueue(1500, FakeClock())
        q.enqueue(data(payload=1000))
        q.enqueue(data(payload=1000))  # dropped
        assert q.stats.drop_rate() == pytest.approx(0.5)

    def test_drop_rate_empty(self):
        assert DropTailQueue(None, FakeClock()).stats.drop_rate() == 0.0


class TestPriorityQueue:
    def test_lower_priority_value_first(self):
        q = PriorityQueue(None, FakeClock())
        q.enqueue(data(seq=0, priority=5))
        q.enqueue(data(seq=1, priority=1))
        q.enqueue(data(seq=2, priority=3))
        assert q.dequeue().seq == 1
        assert q.dequeue().seq == 2
        assert q.dequeue().seq == 0

    def test_fifo_within_priority_class(self):
        q = PriorityQueue(None, FakeClock())
        for i in range(4):
            q.enqueue(data(seq=i, priority=2))
        assert [q.dequeue().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_byte_accounting_preserved(self):
        q = PriorityQueue(None, FakeClock())
        q.enqueue(data(seq=0, priority=2, payload=100))
        q.enqueue(data(seq=1, priority=1, payload=200))
        total = q.bytes_queued
        p = q.dequeue()
        assert q.bytes_queued == total - p.size_bytes


class TestQueueProperties:
    @given(
        st.lists(st.integers(min_value=40, max_value=2000), min_size=1, max_size=60),
        st.integers(min_value=1000, max_value=20000),
    )
    @settings(max_examples=60)
    def test_drop_tail_never_exceeds_capacity(self, sizes, capacity):
        q = DropTailQueue(capacity, FakeClock())
        for i, payload in enumerate(sizes):
            q.enqueue(make_data_packet(1, "a", "b", i, payload))
            assert q.bytes_queued <= capacity
        stats = q.stats
        assert stats.enqueued_packets + stats.dropped_packets == len(sizes)

    @given(st.lists(st.integers(min_value=1, max_value=1460), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_fifo_no_reordering_and_conservation(self, sizes):
        q = DropTailQueue(None, FakeClock())
        for i, payload in enumerate(sizes):
            q.enqueue(make_data_packet(1, "a", "b", i, payload))
        out = []
        while True:
            p = q.dequeue()
            if p is None:
                break
            out.append(p.seq)
        assert out == sorted(out)
        assert len(out) == len(sizes)
        assert q.stats.enqueued_bytes == q.stats.dequeued_bytes

"""Tests for topology builders, link monitor, flow tracker, RNG streams."""

import pytest

from repro.simnet import (
    ActiveFlowTracker,
    DumbbellConfig,
    DumbbellTopology,
    LinkMonitor,
    ParkingLotTopology,
    RngStreams,
    Simulator,
    exponential,
    make_data_packet,
)


class TestDumbbellConfig:
    def test_defaults_are_paper_table3(self):
        cfg = DumbbellConfig()
        assert cfg.n_senders == 8
        assert cfg.bottleneck_bandwidth_bps == 15e6
        assert cfg.rtt_s == pytest.approx(0.150)
        assert cfg.buffer_bdp_multiple == 5.0

    def test_delay_budget_adds_up(self):
        cfg = DumbbellConfig(rtt_s=0.2, access_delay_fraction=0.1)
        total = cfg.bottleneck_delay_s + 2 * cfg.access_delay_s
        assert total == pytest.approx(cfg.one_way_delay_s)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            DumbbellConfig(n_senders=0)
        with pytest.raises(ValueError):
            DumbbellConfig(rtt_s=0)
        with pytest.raises(ValueError):
            DumbbellConfig(access_delay_fraction=0.6)


class TestDumbbellTopology:
    def test_host_counts(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=5))
        assert len(top.senders) == 5
        assert len(top.receivers) == 5

    def test_forward_path_traverses_bottleneck(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        received = []
        top.receivers[0].set_default_handler(lambda p: received.append(p))
        packet = make_data_packet(1, top.senders[0].name, top.receivers[0].name, 0, 1000)
        top.senders[0].send(packet)
        sim.run()
        assert len(received) == 1
        assert top.bottleneck.packets_transmitted == 1

    def test_reverse_path_traverses_reverse_link(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        received = []
        top.senders[1].set_default_handler(lambda p: received.append(p))
        packet = make_data_packet(2, top.receivers[1].name, top.senders[1].name, 0, 40)
        top.receivers[1].send(packet)
        sim.run()
        assert len(received) == 1
        assert top.reverse.packets_transmitted == 1

    def test_end_to_end_delay_close_to_half_rtt(self):
        sim = Simulator()
        cfg = DumbbellConfig(n_senders=1, rtt_s=0.150)
        top = DumbbellTopology(sim, cfg)
        arrival = []
        top.receivers[0].set_default_handler(lambda p: arrival.append(sim.now))
        top.senders[0].send(
            make_data_packet(1, top.senders[0].name, top.receivers[0].name, 0, 1000)
        )
        sim.run()
        # One-way propagation is rtt/2; serialization adds a bit on top.
        assert arrival[0] == pytest.approx(0.075, rel=0.05)

    def test_pair_accessor(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=3))
        pair = top.pair(2)
        assert pair.sender is top.senders[2]
        assert pair.receiver is top.receivers[2]

    def test_links_map_contains_bottleneck(self):
        sim = Simulator()
        top = DumbbellTopology(sim)
        assert "bottleneck" in top.links


class TestParkingLot:
    def test_chain_delivery(self):
        sim = Simulator()
        top = ParkingLotTopology(sim, n_hops=3)
        got = []
        top.receivers[0].set_default_handler(lambda p: got.append(p))
        top.senders[0].send(
            make_data_packet(1, top.senders[0].name, top.receivers[0].name, 0, 500)
        )
        sim.run()
        assert len(got) == 1

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            ParkingLotTopology(Simulator(), n_hops=0)


class TestLinkMonitor:
    def test_utilization_sampling(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        monitor = LinkMonitor(sim, top.bottleneck, period_s=0.05)
        monitor.start()
        received = []
        top.receivers[0].set_default_handler(received.append)
        # Saturate the bottleneck for ~0.5 s.
        for i in range(70):
            top.senders[0].send(
                make_data_packet(
                    1, top.senders[0].name, top.receivers[0].name, i, 1400
                )
            )
        sim.run(until=0.5)
        busy = [s for s in monitor.samples if s.utilization > 0.5]
        assert busy, "expected some high-utilization samples"
        assert all(0.0 <= s.utilization <= 1.0 for s in monitor.samples)

    def test_idle_link_zero_utilization(self):
        sim = Simulator()
        top = DumbbellTopology(sim)
        monitor = LinkMonitor(sim, top.bottleneck, period_s=0.1)
        monitor.start()
        sim.run(until=1.0)
        assert monitor.mean_utilization() == 0.0
        assert monitor.current_utilization() == 0.0

    def test_start_idempotent(self):
        sim = Simulator()
        top = DumbbellTopology(sim)
        monitor = LinkMonitor(sim, top.bottleneck, period_s=0.1)
        monitor.start()
        monitor.start()
        sim.run(until=0.35)
        times = [s.time for s in monitor.samples]
        assert times == sorted(set(times)), "double-start must not double-sample"

    def test_invalid_period(self):
        sim = Simulator()
        top = DumbbellTopology(sim)
        with pytest.raises(ValueError):
            LinkMonitor(sim, top.bottleneck, period_s=0)

    def test_sample_times_stay_on_grid_without_drift(self):
        # 0.1 is not exactly representable in binary; repeatedly adding it
        # accumulates error, whereas epoch + k*period rounds once per tick.
        sim = Simulator()
        top = DumbbellTopology(sim)
        monitor = LinkMonitor(sim, top.bottleneck, period_s=0.1, history=20_000)
        monitor.start()
        sim.run(until=1000.0)
        times = [s.time for s in monitor.samples]
        assert len(times) >= 9_999
        for k, t in enumerate(times, start=1):
            assert t == k * 0.1, f"sample {k} drifted: {t!r} != {k * 0.1!r}"

    def test_grid_is_anchored_at_start_epoch(self):
        sim = Simulator()
        top = DumbbellTopology(sim)
        monitor = LinkMonitor(sim, top.bottleneck, period_s=0.25)
        sim.schedule_at(1.0, monitor.start)
        sim.run(until=2.6)
        times = [s.time for s in monitor.samples]
        assert times == [1.0 + k * 0.25 for k in range(1, len(times) + 1)]
        assert times, "monitor started mid-run must still sample"

    def test_telemetry_histograms_and_drop_counter(self):
        from repro import telemetry

        with telemetry.use() as tele:
            sim = Simulator()
            top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
            monitor = LinkMonitor(sim, top.bottleneck, period_s=0.05)
            monitor.start()
            for i in range(70):
                top.senders[0].send(
                    make_data_packet(
                        1, top.senders[0].name, top.receivers[0].name, i, 1400
                    )
                )
            sim.run(until=0.5)
            snapshot = tele.registry.snapshot()
        name = top.bottleneck.name
        utilization = snapshot["histograms"][f"link.utilization{{link={name}}}"]
        assert utilization["count"] == len(monitor.samples)
        depth = snapshot["histograms"][f"link.queue_depth_pkts{{link={name}}}"]
        assert depth["count"] == len(monitor.samples)


class TestActiveFlowTracker:
    def test_counts(self):
        tracker = ActiveFlowTracker()
        tracker.flow_started(1, 0.0)
        tracker.flow_started(2, 1.0)
        assert tracker.active_flows == 2
        tracker.flow_finished(1, 2.0)
        assert tracker.active_flows == 1
        assert tracker.peak_active == 2
        assert tracker.total_flows == 2

    def test_unbalanced_finish_raises(self):
        tracker = ActiveFlowTracker()
        with pytest.raises(RuntimeError):
            tracker.flow_finished(1, 0.0)

    def test_mean_active(self):
        tracker = ActiveFlowTracker()
        tracker.flow_started(1, 0.0)
        tracker.flow_finished(1, 1.0)
        tracker.flow_started(2, 1.0)
        tracker.flow_finished(2, 2.0)
        assert tracker.mean_active(0.0, 2.0) == pytest.approx(1.0)


class TestRngStreams:
    def test_same_name_same_stream(self):
        rngs = RngStreams(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(5).stream("x").random(4)
        b = RngStreams(5).stream("x").random(4)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        rngs = RngStreams(5)
        a = rngs.stream("x").random(4)
        b = rngs.stream("y").random(4)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(4)
        b = RngStreams(2).stream("x").random(4)
        assert list(a) != list(b)

    def test_spawn_independent(self):
        parent = RngStreams(3)
        child = parent.spawn("child")
        a = parent.stream("s").random(3)
        b = child.stream("s").random(3)
        assert list(a) != list(b)

    def test_exponential_helper(self):
        rng = RngStreams(0).stream("e")
        draws = [exponential(rng, 2.0) for _ in range(1000)]
        assert all(d >= 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.2)
        assert exponential(rng, 0.0) == 0.0

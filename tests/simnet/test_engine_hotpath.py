"""Regression and behaviour tests for the tuple-heap event core.

Covers the ``run(until=..., max_events=...)`` clock bug (the loop used
to fast-forward ``now`` to ``until`` even when it stopped early on
``max_events``, stranding still-pending events in the past), tie-break
ordering after the tuple rewrite, O(1) pending-event accounting, and
the opt-in profiling hook.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import SimulationError, Simulator


class TestMaxEventsClockRegression:
    def test_clock_not_fast_forwarded_past_pending_events(self):
        # The original bug: stopping on max_events jumped now to until,
        # stranding the events at t=2 and t=3 in the past.
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, fired.append, t)
        sim.run(until=10.0, max_events=1)
        assert fired == [1.0]
        assert sim.now == 1.0

    def test_schedule_after_early_stop_does_not_raise(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=10.0, max_events=1)
        # With the clock stuck at 10.0 this used to raise SimulationError.
        sim.schedule_at(1.5, lambda: None)

    def test_resumed_run_fires_stranded_events_in_order(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, fired.append, t)
        sim.run(until=10.0, max_events=1)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 10.0

    def test_clock_advances_when_calendar_exhausted_up_to_until(self):
        # Stopping on max_events with the only remaining event beyond
        # until still counts as exhausted up to until.
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(50.0, lambda: None)
        sim.run(until=10.0, max_events=1)
        assert sim.now == 10.0

    def test_clock_advances_to_until_when_calendar_empty(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_without_until_leaves_clock_at_last_event(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run(max_events=2)
        assert sim.now == 2.0
        assert sim.pending_events == 1


class TestTupleHeapOrdering:
    def test_ties_fire_in_insertion_order_with_interleaved_times(self):
        sim = Simulator()
        order = []
        # Schedule two tie groups out of time order; within each group
        # insertion order must be preserved.
        for i in range(5):
            sim.schedule_at(2.0, order.append, ("late", i))
        for i in range(5):
            sim.schedule_at(1.0, order.append, ("early", i))
        sim.run()
        assert order == [("early", i) for i in range(5)] + [
            ("late", i) for i in range(5)
        ]

    def test_ties_survive_cancellation_gaps(self):
        sim = Simulator()
        order = []
        handles = [sim.schedule_at(1.0, order.append, i) for i in range(8)]
        for i in (0, 3, 7):
            handles[i].cancel()
        sim.run()
        assert order == [1, 2, 4, 5, 6]

    def test_events_scheduled_mid_tie_fire_after_existing_ties(self):
        sim = Simulator()
        order = []

        def spawn():
            order.append("first")
            sim.schedule_at(1.0, order.append, "spawned")

        sim.schedule_at(1.0, spawn)
        sim.schedule_at(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "spawned"]

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_fire_order_is_time_then_insertion(self, entries):
        sim = Simulator()
        fired = []
        expected = []
        for index, (time_slot, cancel) in enumerate(entries):
            handle = sim.schedule_at(float(time_slot), fired.append, index)
            if cancel:
                handle.cancel()
            else:
                expected.append((float(time_slot), index))
        sim.run()
        expected.sort()  # stable: (time, insertion index)
        assert fired == [index for _, index in expected]


class TestPendingAccounting:
    def test_pending_events_counts_live_events(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending_events == 6

    def test_cancel_is_o1_and_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 0
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.run()
        handle.cancel()  # must not corrupt pending accounting
        assert fired == ["x"]
        assert sim.pending_events == 0

    def test_pending_drops_as_events_fire(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=2)
        assert sim.pending_events == 3

    def test_clear_resets_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.clear()
        assert sim.pending_events == 0
        assert sim.peek_time() is None

    def test_step_skips_cancelled_head(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        first.cancel()
        assert sim.step() is True
        assert fired == ["b"]
        assert sim.now == 2.0


class TestProfilingHook:
    def test_profiling_off_by_default(self):
        assert Simulator().profile is None

    def test_enable_is_idempotent(self):
        sim = Simulator()
        profile = sim.enable_profiling()
        assert sim.enable_profiling() is profile

    def test_counts_events_and_wall_time(self):
        sim = Simulator()
        profile = sim.enable_profiling()
        for i in range(100):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert profile.events == 100
        assert profile.run_calls == 1
        assert profile.wall_seconds > 0.0
        assert profile.events_per_second > 0.0

    def test_counts_accumulate_across_runs(self):
        sim = Simulator()
        profile = sim.enable_profiling()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert profile.events == 2
        assert profile.run_calls == 2

    def test_phase_timers_accumulate(self):
        sim = Simulator()
        profile = sim.enable_profiling()
        with profile.phase("setup"):
            pass
        with profile.phase("setup"):
            pass
        with profile.phase("teardown"):
            pass
        assert set(profile.phase_seconds) == {"setup", "teardown"}
        assert profile.phase_seconds["setup"] >= 0.0

    def test_as_dict_shape(self):
        sim = Simulator()
        profile = sim.enable_profiling()
        sim.schedule(1.0, lambda: None)
        sim.run()
        payload = profile.as_dict()
        assert payload["events"] == 1
        assert payload["run_calls"] == 1
        assert "events_per_second" in payload
        assert payload["phase_seconds"] == {}

    def test_events_per_second_zero_before_any_run(self):
        sim = Simulator()
        profile = sim.enable_profiling()
        assert profile.events_per_second == 0.0


class TestRunSemanticsPreserved:
    def test_until_restores_not_yet_due_event(self):
        # The tight loop pops the head before checking until; it must be
        # restored intact, including for a later cancel.
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert sim.pending_events == 1
        handle.cancel()
        sim.run()
        assert fired == []

    def test_exception_in_callback_leaves_engine_usable(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run()
        # The engine must not be stuck in the "running" state.
        sim.run()
        assert sim.pending_events == 0

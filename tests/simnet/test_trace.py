"""Tests for the tracing subsystem."""

import io

import pytest

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowSpec,
    Simulator,
    TraceEvent,
    TraceEventType,
    TracedSenderMixin,
    Tracer,
    attach_queue_tracing,
)
from repro.transport import CubicSender, TcpSink


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTracer:
    def test_emit_and_query(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.emit(TraceEventType.FLOW_START, "src0", flow_id=1)
        clock.t = 2.0
        tracer.emit(TraceEventType.FLOW_END, "src0", flow_id=1, value=5.0)
        assert len(tracer) == 2
        assert tracer.of_kind(TraceEventType.FLOW_END)[0].time == 2.0
        assert tracer.for_flow(1)[0].kind is TraceEventType.FLOW_START

    def test_kind_filter(self):
        tracer = Tracer(FakeClock(), kinds=[TraceEventType.DROP])
        tracer.emit(TraceEventType.ENQUEUE, "q")
        tracer.emit(TraceEventType.DROP, "q")
        assert len(tracer) == 1

    def test_max_events_bound(self):
        tracer = Tracer(FakeClock(), max_events=2)
        for __ in range(5):
            tracer.emit(TraceEventType.CUSTOM, "x")
        assert len(tracer) == 2
        assert tracer.dropped_records == 3

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            Tracer(FakeClock(), max_events=0)

    def test_series(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        for t, v in [(0.0, 2.0), (1.0, 4.0), (2.0, 3.0)]:
            clock.t = t
            tracer.emit(TraceEventType.CWND, "flow-1", value=v)
        assert tracer.series(TraceEventType.CWND) == [(0.0, 2.0), (1.0, 4.0), (2.0, 3.0)]

    def test_counts_by_kind(self):
        tracer = Tracer(FakeClock())
        tracer.emit(TraceEventType.DROP, "q")
        tracer.emit(TraceEventType.DROP, "q")
        tracer.emit(TraceEventType.ENQUEUE, "q")
        counts = tracer.counts_by_kind()
        assert counts[TraceEventType.DROP] == 2
        assert counts[TraceEventType.ENQUEUE] == 1

    def test_json_round_trip(self):
        tracer = Tracer(FakeClock())
        tracer.emit(TraceEventType.DELIVER, "link", flow_id=3, value=1.5,
                    detail="x")
        buffer = io.StringIO()
        assert tracer.dump(buffer) == 1
        buffer.seek(0)
        loaded = Tracer.load(buffer)
        assert loaded.events == tracer.events


class TestQueueTracing:
    def test_enqueue_dequeue_drop_traced(self):
        from repro.simnet.queues import DropTailQueue
        from repro.simnet.packet import make_data_packet

        clock = FakeClock()
        tracer = Tracer(clock)
        queue = DropTailQueue(1500, clock)
        attach_queue_tracing(queue, tracer, "bottleneck")
        queue.enqueue(make_data_packet(1, "a", "b", 0, 1000))
        queue.enqueue(make_data_packet(1, "a", "b", 1, 1000))  # dropped
        queue.dequeue()
        counts = tracer.counts_by_kind()
        assert counts[TraceEventType.ENQUEUE] == 1
        assert counts[TraceEventType.DROP] == 1
        assert counts[TraceEventType.DEQUEUE] == 1


class TracedCubic(TracedSenderMixin, CubicSender):
    """Cubic sender with cwnd tracing."""


class TestTracedSender:
    def test_cwnd_trajectory_recorded(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        tracer = Tracer(lambda: sim.now)
        sender = TracedCubic(
            sim, top.senders[0], spec, 500_000, tracer=tracer
        )
        sender.start()
        sim.run(until=60.0)
        trajectory = tracer.series(TraceEventType.CWND, f"flow-{spec.flow_id}")
        assert len(trajectory) > 10
        # Slow start grows the window beyond its initial value.
        values = [v for _t, v in trajectory]
        assert max(values) > values[0]
        # Times are non-decreasing.
        times = [t for t, _v in trajectory]
        assert times == sorted(times)

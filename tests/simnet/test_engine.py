"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import SimulationError, Simulator


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_single_event_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.5

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, fired.append, "a")
        sim.run()
        assert sim.now == 5.0 and fired == ["a"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_at(float("nan"), lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i + 1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_clear_drops_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.clear()
        sim.run()
        assert fired == []

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "no")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_arbitrary_delays_fire_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_cancellation_subset_fires(self, entries):
        sim = Simulator()
        fired = []
        expected = []
        for i, (delay, cancel) in enumerate(entries):
            handle = sim.schedule(delay, fired.append, i)
            if cancel:
                handle.cancel()
            else:
                expected.append(i)
        sim.run()
        assert sorted(fired) == sorted(expected)

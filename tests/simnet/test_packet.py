"""Tests for packet primitives and flow identification."""

import pytest

from repro.simnet.packet import (
    ACK_BYTES,
    HEADER_BYTES,
    MSS_BYTES,
    FlowIdAllocator,
    FlowSpec,
    PacketKind,
    make_ack_packet,
    make_data_packet,
)


class TestPackets:
    def test_data_packet_size_includes_header(self):
        p = make_data_packet(1, "a", "b", 0, 1000)
        assert p.size_bytes == 1000 + HEADER_BYTES
        assert p.kind is PacketKind.DATA

    def test_ack_packet_is_small(self):
        ack = make_ack_packet(1, "b", "a", 1460)
        assert ack.size_bytes == ACK_BYTES
        assert ack.kind is PacketKind.ACK
        assert ack.seq == 1460

    def test_ack_echo_timestamp(self):
        ack = make_ack_packet(1, "b", "a", 100, echo_timestamp=3.25)
        assert ack.echo_timestamp == 3.25

    def test_packet_ids_unique(self):
        ids = {make_data_packet(1, "a", "b", i, 10).packet_id for i in range(100)}
        assert len(ids) == 100

    def test_retransmit_flag(self):
        p = make_data_packet(1, "a", "b", 0, 100, is_retransmit=True)
        assert p.is_retransmit

    def test_default_mss(self):
        assert MSS_BYTES == 1460


class TestFlowSpec:
    def test_key_is_4tuple(self):
        spec = FlowSpec(1, "10.0.0.1", 555, "10.0.0.2", 443)
        assert spec.key == ("10.0.0.1", 555, "10.0.0.2", 443)

    def test_reversed_swaps_endpoints(self):
        spec = FlowSpec(1, "a", 1, "b", 2)
        rev = spec.reversed()
        assert rev.key == ("b", 2, "a", 1)
        assert rev.flow_id == spec.flow_id

    def test_specs_hashable_and_frozen(self):
        spec = FlowSpec(1, "a", 1, "b", 2)
        assert hash(spec)
        with pytest.raises(AttributeError):
            spec.src = "x"


class TestFlowIdAllocator:
    def test_dense_and_unique(self):
        alloc = FlowIdAllocator()
        ids = [alloc.next_id() for _ in range(10)]
        assert ids == list(range(1, 11))

    def test_independent_allocators(self):
        a, b = FlowIdAllocator(), FlowIdAllocator()
        assert a.next_id() == b.next_id() == 1

"""Integration: RED queue with live TCP traffic."""

import numpy as np

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    FlowSpec,
    RedQueue,
    RngStreams,
    Simulator,
)
from repro.transport import CubicSender, TcpSink
from repro.workload import launch_long_running_flows


def run_with_queue(make_queue, n=8, duration=40.0):
    sim = Simulator()
    config = DumbbellConfig(n_senders=n)
    top = DumbbellTopology(sim, config)
    if make_queue is not None:
        top.bottleneck.queue = make_queue(config, sim)

    def factory(sim_, host, spec, size, done):
        return CubicSender(sim_, host, spec, size, done)

    pairs = [(top.senders[i], top.receivers[i]) for i in range(n)]
    flows = launch_long_running_flows(
        sim, pairs, factory, FlowIdAllocator(), RngStreams(4).stream("lr")
    )
    sim.run(until=duration)
    stats = [f.finish() for f in flows]
    queue = top.bottleneck.queue
    mean_occupancy = queue.stats.mean_occupancy_bytes(duration)
    goodput = sum(s.bytes_goodput for s in stats) * 8 / duration
    return queue, mean_occupancy, goodput, config


def make_red(config, sim):
    return RedQueue(
        config.buffer_bytes,
        lambda: sim.now,
        np.random.default_rng(0),
        min_thresh_bytes=0.1 * config.buffer_bytes,
        max_thresh_bytes=0.4 * config.buffer_bytes,
    )


class TestRedWithTcp:
    def test_red_keeps_average_queue_below_droptail(self):
        __, droptail_occupancy, droptail_goodput, config = run_with_queue(None)
        red_queue, red_occupancy, red_goodput, __ = run_with_queue(make_red)
        assert red_occupancy < droptail_occupancy
        assert red_queue.early_drops > 0
        # RED trades a little throughput for a much shorter queue, but
        # must not collapse the link.
        assert red_goodput > 0.5 * droptail_goodput

    def test_red_average_tracks_between_thresholds(self):
        red_queue, occupancy, __, config = run_with_queue(make_red)
        # Under persistent overload the EWMA average should sit in the
        # vicinity of the RED control band, far below the hard capacity.
        assert red_queue.avg_queue_bytes < 0.8 * config.buffer_bytes

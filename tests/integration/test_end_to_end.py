"""Integration tests: paper-shaped claims exercised end-to-end.

These are slower than unit tests (each runs full packet simulations) but
verify the properties the benches report: conservation, Phi's benefit
over default Cubic, the beta effect on long flows, and the Remy pipeline.
"""

import pytest

from repro.experiments import (
    run_cubic_fixed,
    run_phi_cubic,
    run_remy_scenario,
)
from repro.experiments.scenarios import ScenarioPreset
from repro.metrics import summarize_connections
from repro.phi import REFERENCE_POLICY, SharingMode
from repro.remy import WhiskerTable
from repro.remy.whisker import Action
from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    FlowSpec,
    LinkMonitor,
    RngStreams,
    Simulator,
)
from repro.transport import CubicParams, CubicSender, TcpSink
from repro.workload import OnOffConfig

LOADED = ScenarioPreset(
    name="loaded",
    config=DumbbellConfig(n_senders=12),
    workload=OnOffConfig(mean_on_bytes=400_000, mean_off_s=0.5),
    duration_s=25.0,
    description="moderately loaded integration preset",
)


class TestConservation:
    def test_bytes_conserved_through_bottleneck(self):
        """Everything the sink receives crossed the bottleneck exactly once
        (plus retransmits); drops + deliveries = arrivals."""
        sim = Simulator()
        config = DumbbellConfig(
            n_senders=2,
            bottleneck_bandwidth_bps=4_000_000.0,
            rtt_s=0.1,
            buffer_bdp_multiple=1.0,
        )
        top = DumbbellTopology(sim, config)
        specs = []
        sinks = []
        senders = []
        for i in range(2):
            spec = FlowSpec(i + 1, top.senders[i].name, 1, top.receivers[i].name, 443)
            sinks.append(TcpSink(sim, top.receivers[i], spec))
            sender = CubicSender(sim, top.senders[i], spec, 800_000)
            senders.append(sender)
            sender.start()
            specs.append(spec)
        sim.run(until=120.0)
        assert all(s.finished for s in senders)
        stats = top.bottleneck_queue.stats
        q_in = stats.enqueued_packets + stats.dropped_packets
        # Direct transmissions (queue empty) bypass enqueue; account via
        # the link's packet counter instead.
        delivered = top.bottleneck.packets_transmitted
        assert delivered + stats.dropped_packets >= q_in
        for sink, spec in zip(sinks, specs):
            assert sink.received.contiguous_from(0) == 800_000

    def test_sum_of_goodput_under_capacity(self):
        result = run_cubic_fixed(CubicParams.default(), LOADED, seed=0)
        total_bits = sum(
            s.bytes_goodput * 8
            for sender in result.per_sender_stats
            for s in sender
        )
        assert total_bits <= 15e6 * LOADED.duration_s * 1.02


class TestPaperShapes:
    def test_phi_beats_default_cubic_on_power(self):
        """The headline claim: context-driven parameters beat the static
        defaults on the P_l objective (both sharing modes)."""
        base = run_cubic_fixed(CubicParams.default(), LOADED, seed=3)
        practical = run_phi_cubic(
            REFERENCE_POLICY, LOADED, SharingMode.PRACTICAL, seed=3
        )
        ideal = run_phi_cubic(REFERENCE_POLICY, LOADED, SharingMode.IDEAL, seed=3)
        assert practical.metrics.power_l > base.metrics.power_l
        assert ideal.metrics.power_l > base.metrics.power_l

    def test_tuned_ssthresh_cuts_queueing_delay_under_load(self):
        """Figure 2b's mechanism: a bounded initial ssthresh stops slow
        start from flooding the 5xBDP buffer."""
        default = run_cubic_fixed(CubicParams.default(), LOADED, seed=1)
        tuned = run_cubic_fixed(
            CubicParams(window_init=8, initial_ssthresh=32, beta=0.3),
            LOADED,
            seed=1,
        )
        assert tuned.metrics.queueing_delay_ms < default.metrics.queueing_delay_ms

    def test_beta_effect_on_long_running_flows(self):
        """Figure 2c: with persistent connections, a larger beta (sharper
        backoff) yields significantly lower queueing delay."""
        preset = ScenarioPreset(
            name="fig2c-mini",
            config=DumbbellConfig(n_senders=16),
            workload=None,
            duration_s=30.0,
            description="",
        )
        gentle = run_cubic_fixed(CubicParams(beta=0.1), preset, seed=2)
        sharp = run_cubic_fixed(CubicParams(beta=0.8), preset, seed=2)
        assert sharp.metrics.queueing_delay_ms < gentle.metrics.queueing_delay_ms

    def test_window_init_irrelevant_for_long_flows(self):
        """Figure 2c: 'varying the initial window size or the slow start
        threshold does not have much impact' on persistent flows."""
        # 60 s, not 30: the Ha et al. TCP-friendly window (anchored at the
        # epoch-start window) makes Cubic more aggressive early, so the
        # initial-window transient takes longer to wash out of the mean.
        preset = ScenarioPreset(
            name="fig2c-mini2",
            config=DumbbellConfig(n_senders=8),
            workload=None,
            duration_s=60.0,
            description="",
        )
        small = run_cubic_fixed(CubicParams(window_init=2), preset, seed=4)
        large = run_cubic_fixed(CubicParams(window_init=64), preset, seed=4)
        ratio = small.metrics.throughput_mbps / max(
            large.metrics.throughput_mbps, 1e-9
        )
        assert 0.8 < ratio < 1.25


class TestRemyIntegration:
    def _decent_table(self, dimensions=WhiskerTable.CLASSIC_DIMENSIONS):
        table = WhiskerTable(dimensions)
        table.whiskers[0].action = Action(
            window_increment=3.0, window_multiple=1.0, intersend_s=0.004
        )
        return table

    def test_remy_scenario_all_modes(self):
        preset = ScenarioPreset(
            name="remy-mini",
            config=DumbbellConfig(n_senders=4),
            workload=OnOffConfig(mean_on_bytes=80_000, mean_off_s=0.4),
            duration_s=15.0,
            description="",
        )
        classic = self._decent_table()
        phi = self._decent_table(WhiskerTable.PHI_DIMENSIONS)
        for mode, table in [
            (SharingMode.NONE, classic),
            (SharingMode.PRACTICAL, phi),
            (SharingMode.IDEAL, phi),
        ]:
            result = run_remy_scenario(table, mode, preset, seed=0)
            assert result.connections > 0, mode
            assert result.metrics.throughput_mbps > 0, mode

    def test_remy_keeps_queue_short(self):
        """Remy's paced, learned control holds queueing delay far below
        default Cubic's slow-start overshoot (Table 3's delay column)."""
        preset = ScenarioPreset(
            name="remy-vs-cubic",
            config=DumbbellConfig(n_senders=8),
            workload=OnOffConfig(mean_on_bytes=100_000, mean_off_s=0.5),
            duration_s=20.0,
            description="",
        )
        remy = run_remy_scenario(self._decent_table(), SharingMode.NONE, preset, seed=0)
        cubic = run_cubic_fixed(CubicParams.default(), preset, seed=0)
        assert remy.metrics.queueing_delay_ms < cubic.metrics.queueing_delay_ms

"""Robustness under injected faults: random loss and link outages.

The reliability invariant: whatever the network does (short of a
permanent partition), a TCP flow eventually delivers exactly its bytes,
in order, with no duplicates counted as goodput.
"""

import numpy as np
import pytest

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowSpec,
    LinkOutage,
    RandomLoss,
    Simulator,
)
from repro.transport import CubicSender, NewRenoSender, TcpSink, VegasSender


def run_lossy_flow(loss_probability, seed, sender_cls=CubicSender,
                   flow_bytes=600_000, until=600.0):
    sim = Simulator()
    top = DumbbellTopology(
        sim, DumbbellConfig(n_senders=1, bottleneck_bandwidth_bps=8e6, rtt_s=0.06)
    )
    spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
    sink = TcpSink(sim, top.receivers[0], spec)
    done = []
    sender = sender_cls(sim, top.senders[0], spec, flow_bytes, done.append)
    fault = RandomLoss(
        sim, top.bottleneck, loss_probability, np.random.default_rng(seed)
    )
    sender.start()
    sim.run(until=until)
    return sender, sink, fault, done


class TestRandomLossRobustness:
    @pytest.mark.parametrize("loss_probability", [0.01, 0.03, 0.08])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_flow_completes_exactly(self, loss_probability, seed):
        sender, sink, fault, done = run_lossy_flow(loss_probability, seed)
        assert done, (
            f"flow failed to complete at p={loss_probability}, seed={seed}"
        )
        assert sink.received.contiguous_from(0) == 600_000
        assert sink.bytes_received == 600_000
        assert fault.packets_dropped > 0

    def test_heavy_loss_still_progresses(self):
        sender, sink, fault, done = run_lossy_flow(
            0.15, seed=3, flow_bytes=150_000, until=900.0
        )
        assert done
        assert sink.received.contiguous_from(0) == 150_000

    @pytest.mark.parametrize("sender_cls", [CubicSender, NewRenoSender, VegasSender])
    def test_all_flavours_survive_loss(self, sender_cls):
        sender, sink, fault, done = run_lossy_flow(
            0.03, seed=5, sender_cls=sender_cls, flow_bytes=300_000
        )
        assert done, sender_cls.flavour
        assert sink.received.contiguous_from(0) == 300_000

    def test_goodput_excludes_duplicates(self):
        sender, sink, fault, done = run_lossy_flow(0.05, seed=7)
        assert done
        # Retransmissions may duplicate-deliver; goodput must not count them.
        assert sink.bytes_received == 600_000
        assert sender.stats.bytes_sent >= 600_000


class TestOutageRobustness:
    def test_repeated_outages(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        sink = TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = CubicSender(sim, top.senders[0], spec, 2_000_000, done.append)
        LinkOutage(sim, top.bottleneck, start_s=0.5, duration_s=1.0)
        LinkOutage(sim, top.bottleneck, start_s=3.0, duration_s=2.0)
        sender.start()
        sim.run(until=300.0)
        assert done
        assert sink.received.contiguous_from(0) == 2_000_000
        assert sender.stats.timeouts >= 2

    def test_outage_on_ack_path(self):
        """Losing ACKs (reverse path) must not break delivery either."""
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        sink = TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = CubicSender(sim, top.senders[0], spec, 1_000_000, done.append)
        LinkOutage(sim, top.reverse, start_s=0.4, duration_s=1.2)
        sender.start()
        sim.run(until=300.0)
        assert done
        assert sink.received.contiguous_from(0) == 1_000_000

    def test_rto_backoff_during_outage(self):
        """During a long outage the RTO backs off exponentially instead of
        hammering the dead link."""
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = CubicSender(sim, top.senders[0], spec, 1_000_000)
        LinkOutage(sim, top.bottleneck, start_s=0.3, duration_s=20.0)
        sender.start()
        sim.run(until=15.0)
        # ~15 s into a dead link: without backoff there would be ~70
        # attempts at the 0.2 s floor; with doubling there are only a few.
        assert 1 <= sender.stats.timeouts <= 8

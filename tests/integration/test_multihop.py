"""Integration tests on the multi-bottleneck parking-lot topology."""

import pytest

from repro.experiments import run_phi_cubic
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import REFERENCE_POLICY, SharingMode
from repro.simnet import (
    DumbbellConfig,
    FlowIdAllocator,
    FlowSpec,
    ParkingLotTopology,
    Simulator,
)
from repro.transport import CubicSender, TcpSink


class TestParkingLotFlows:
    def _launch(self, sim, topology, index, flow_bytes, flow_ids, done):
        spec = FlowSpec(
            flow_ids.next_id(),
            topology.senders[index].name,
            10_000 + index,
            topology.receivers[index].name,
            443,
        )
        sink = TcpSink(sim, topology.receivers[index], spec)
        sender = CubicSender(
            sim, topology.senders[index], spec, flow_bytes, done.append
        )
        sender.start()
        return sender, sink

    def test_concurrent_flows_all_complete(self):
        sim = Simulator()
        topology = ParkingLotTopology(sim, n_hops=3)
        flow_ids = FlowIdAllocator()
        done = []
        senders = []
        for i in range(3):
            sender, _sink = self._launch(sim, topology, i, 500_000, flow_ids, done)
            senders.append(sender)
        sim.run(until=120.0)
        assert len(done) == 3
        assert all(s.stats.completed for s in senders)

    def test_later_hops_aggregate_more_traffic(self):
        sim = Simulator()
        topology = ParkingLotTopology(sim, n_hops=3)
        flow_ids = FlowIdAllocator()
        done = []
        for i in range(3):
            self._launch(sim, topology, i, 300_000, flow_ids, done)
        sim.run(until=120.0)
        # Flow i enters at hop i, so hop 2 carries all three flows' bytes.
        bytes_per_hop = [link.bytes_transmitted for link in topology.hop_links]
        assert bytes_per_hop[2] > bytes_per_hop[1] > 0
        assert bytes_per_hop[2] > bytes_per_hop[0]

    def test_last_hop_is_the_bottleneck_under_load(self):
        sim = Simulator()
        topology = ParkingLotTopology(
            sim, n_hops=2, hop_bandwidth_bps=4_000_000.0
        )
        flow_ids = FlowIdAllocator()
        done = []
        senders = []
        for i in range(2):
            sender, _sink = self._launch(
                sim, topology, i, 10_000_000, flow_ids, done
            )
            senders.append(sender)
        sim.run(until=30.0)
        for sender in senders:
            sender.abort()
        # Both flows traverse the final hop; it sees the combined load, so
        # it moves the most bytes and is persistently congested.  Raw drop
        # *counts* are burst-shape dependent and not ordered across hops:
        # hop 0 absorbs flow 0's unsmoothed post-recovery bursts directly
        # from the sender, so a single window-sized dump there can out-drop
        # the shared bottleneck's steady trickle.
        drops = [link.queue.stats.dropped_packets for link in topology.hop_links]
        bytes_per_hop = [link.bytes_transmitted for link in topology.hop_links]
        assert bytes_per_hop[-1] > bytes_per_hop[0]
        assert drops[-1] > 0


class TestPhiOnLongRunningPreset:
    def test_phi_cubic_long_running_path(self):
        """run_phi_cubic must handle persistent-flow presets too."""
        preset = ScenarioPreset(
            name="phi-lr",
            config=DumbbellConfig(n_senders=6),
            workload=None,
            duration_s=15.0,
            description="",
        )
        result = run_phi_cubic(
            REFERENCE_POLICY, preset, SharingMode.IDEAL, seed=2
        )
        assert result.connections == 6
        assert result.metrics.throughput_mbps > 0

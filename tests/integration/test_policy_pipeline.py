"""Integration: the full Phi workflow from sweep to deployment.

Exercises the paper's pipeline end to end: run the Table-2 sweep per
congestion level (reduced grid), build a policy table from the winners,
and deploy it with a practical context server — verifying the deployed
policy beats the defaults it was derived against.
"""

import pytest

from repro.experiments import cubic_evaluator, run_cubic_fixed, run_phi_cubic
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import CongestionLevel, SharingMode, build_policy, sweep
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import OnOffConfig

LIGHT = ScenarioPreset(
    name="pipeline-light",
    config=DumbbellConfig(n_senders=4),
    workload=OnOffConfig(mean_on_bytes=200_000, mean_off_s=1.0),
    duration_s=15.0,
    description="light load for LOW-level sweep",
)
HEAVY = ScenarioPreset(
    name="pipeline-heavy",
    config=DumbbellConfig(n_senders=16),
    workload=OnOffConfig(mean_on_bytes=400_000, mean_off_s=0.4),
    duration_s=15.0,
    description="heavy load for HIGH-level sweep",
)

GRID = [
    CubicParams.default(),
    CubicParams(window_init=8, initial_ssthresh=32, beta=0.3),
    CubicParams(window_init=16, initial_ssthresh=64, beta=0.2),
    CubicParams(window_init=4, initial_ssthresh=8, beta=0.6),
]


@pytest.fixture(scope="module")
def trained_policy():
    light_results = sweep(cubic_evaluator(LIGHT, base_seed=50), GRID, n_runs=2)
    heavy_results = sweep(cubic_evaluator(HEAVY, base_seed=60), GRID, n_runs=2)
    return build_policy(
        {
            CongestionLevel.LOW: light_results,
            CongestionLevel.MODERATE: light_results,
            CongestionLevel.HIGH: heavy_results,
            CongestionLevel.SEVERE: heavy_results,
        }
    )


class TestSweepToPolicyToDeployment:
    def test_policy_covers_all_levels(self, trained_policy):
        for level in CongestionLevel:
            params = trained_policy.params_for_level(level)
            assert params.initial_ssthresh <= 256

    def test_policy_not_default_everywhere(self, trained_policy):
        entries = {
            trained_policy.params_for_level(level) for level in CongestionLevel
        }
        assert entries != {CubicParams.default()}

    def test_deployed_policy_beats_default_on_heavy_load(self, trained_policy):
        baseline = run_cubic_fixed(CubicParams.default(), HEAVY, seed=99)
        deployed = run_phi_cubic(
            trained_policy, HEAVY, SharingMode.PRACTICAL, seed=99
        )
        assert deployed.metrics.power_l > baseline.metrics.power_l

    def test_policy_serializes_for_shipping(self, trained_policy):
        from repro.phi import PolicyTable

        restored = PolicyTable.from_json(trained_policy.to_json())
        assert restored == trained_policy

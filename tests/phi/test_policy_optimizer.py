"""Tests for policy tables and the sweep optimizer (incl. leave-one-out)."""

import pytest

from repro.metrics.summary import RunMetrics
from repro.phi.context import CongestionContext, CongestionLevel
from repro.phi.optimizer import (
    CUBIC_SWEEP_GRID,
    SweepResult,
    build_policy,
    leave_one_out,
    select_optimal,
    sweep,
)
from repro.phi.policy import REFERENCE_POLICY, PolicyTable
from repro.transport.cubic import CubicParams


def metrics(throughput=1.0, delay=10.0, loss=0.0):
    return RunMetrics(
        throughput_mbps=throughput,
        queueing_delay_ms=delay,
        loss_rate=loss,
        connections=10,
        total_bytes=1000,
    )


class TestPolicyTable:
    def test_must_cover_all_levels(self):
        with pytest.raises(ValueError):
            PolicyTable({CongestionLevel.LOW: CubicParams.default()})

    def test_lookup_by_context(self):
        ctx = CongestionContext(0.95, 0.0, 10.0)
        params = REFERENCE_POLICY.params_for(ctx)
        assert params == REFERENCE_POLICY.params_for_level(CongestionLevel.SEVERE)

    def test_reference_policy_shape(self):
        # "optimal settings ... shift to be smaller as the link
        # utilization becomes higher"
        low = REFERENCE_POLICY.params_for_level(CongestionLevel.LOW)
        severe = REFERENCE_POLICY.params_for_level(CongestionLevel.SEVERE)
        assert low.window_init > severe.window_init
        assert low.initial_ssthresh > severe.initial_ssthresh
        assert low.beta < severe.beta  # sharper backoff under load
        default = CubicParams.default()
        for level in CongestionLevel:
            entry = REFERENCE_POLICY.params_for_level(level)
            assert entry.initial_ssthresh < default.initial_ssthresh

    def test_with_entry(self):
        new_params = CubicParams(window_init=7)
        table = REFERENCE_POLICY.with_entry(CongestionLevel.LOW, new_params)
        assert table.params_for_level(CongestionLevel.LOW) == new_params
        assert table != REFERENCE_POLICY

    def test_json_round_trip(self):
        restored = PolicyTable.from_json(REFERENCE_POLICY.to_json())
        assert restored == REFERENCE_POLICY


class TestSweep:
    def test_grid_matches_table2(self):
        assert len(CUBIC_SWEEP_GRID) == 576

    def test_sweep_runs_evaluator(self):
        calls = []

        def evaluator(params, run_index):
            calls.append((params, run_index))
            return metrics()

        grid = [CubicParams.default(), CubicParams(window_init=4)]
        results = sweep(evaluator, grid, n_runs=3)
        assert len(results) == 2
        assert all(len(r.runs) == 3 for r in results)
        assert len(calls) == 6

    def test_sweep_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            sweep(lambda p, i: metrics(), [CubicParams.default()], n_runs=0)

    def test_select_optimal_by_power_l(self):
        good = SweepResult(CubicParams(window_init=8), [metrics(throughput=5)])
        bad = SweepResult(CubicParams.default(), [metrics(throughput=1)])
        assert select_optimal([bad, good]) is good

    def test_select_optimal_empty(self):
        with pytest.raises(ValueError):
            select_optimal([])

    def test_sweep_result_means(self):
        result = SweepResult(
            CubicParams.default(),
            [metrics(throughput=1, delay=10), metrics(throughput=3, delay=20)],
        )
        assert result.mean_throughput_mbps == pytest.approx(2.0)
        assert result.mean_queueing_delay_ms == pytest.approx(15.0)
        assert result.mean_loss_rate == 0.0


class TestLeaveOneOut:
    def _results(self):
        # Setting A is consistently good; default is consistently bad;
        # setting B is noisy.
        a = SweepResult(
            CubicParams(window_init=16, initial_ssthresh=64),
            [metrics(throughput=4), metrics(throughput=4.2), metrics(throughput=3.9)],
        )
        default = SweepResult(
            CubicParams.default(),
            [metrics(throughput=1), metrics(throughput=1.1), metrics(throughput=0.9)],
        )
        b = SweepResult(
            CubicParams(window_init=4),
            [metrics(throughput=2), metrics(throughput=0.5), metrics(throughput=2.1)],
        )
        return [a, default, b]

    def test_stable_winner_transfers(self):
        records = leave_one_out(self._results())
        assert len(records) == 3
        for record in records:
            assert record.chosen_params.window_init == 16
            assert record.gain_over_default > 1.0
            assert 0 < record.fraction_of_oracle <= 1.0

    def test_requires_consistent_run_counts(self):
        results = self._results()
        results[0].runs.pop()
        with pytest.raises(ValueError):
            leave_one_out(results)

    def test_requires_two_runs(self):
        result = SweepResult(CubicParams.default(), [metrics()])
        with pytest.raises(ValueError):
            leave_one_out([result])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            leave_one_out([])


class TestBuildPolicy:
    def test_levels_inherit_downward(self):
        low_win = SweepResult(CubicParams(window_init=32), [metrics(throughput=9)])
        policy = build_policy({CongestionLevel.LOW: [low_win]})
        assert policy.params_for_level(CongestionLevel.LOW).window_init == 32
        # Uncovered levels inherit the nearest lower level's winner.
        assert policy.params_for_level(CongestionLevel.SEVERE).window_init == 32

    def test_defaults_when_no_data(self):
        policy = build_policy({})
        assert policy.params_for_level(CongestionLevel.LOW) == CubicParams.default()

    def test_per_level_winners(self):
        by_level = {
            CongestionLevel.LOW: [
                SweepResult(CubicParams(window_init=32), [metrics(throughput=9)])
            ],
            CongestionLevel.SEVERE: [
                SweepResult(CubicParams(window_init=2), [metrics(throughput=2)])
            ],
        }
        policy = build_policy(by_level)
        assert policy.params_for_level(CongestionLevel.LOW).window_init == 32
        assert policy.params_for_level(CongestionLevel.SEVERE).window_init == 2
        # MODERATE/HIGH inherit LOW's winner.
        assert policy.params_for_level(CongestionLevel.HIGH).window_init == 32

"""Tests for the context guardrails."""

import math

import pytest

from repro.phi.context import CongestionContext
from repro.phi.corruption import raw_context
from repro.phi.guard import (
    GUARD_REASONS,
    REASON_FUTURE_TIMESTAMP,
    REASON_INCONSISTENT,
    REASON_NON_FINITE,
    REASON_OUT_OF_RANGE,
    REASON_RATE_OF_CHANGE,
    ContextGuard,
    GuardConfig,
    GuardVerdict,
)


def honest(timestamp=0.0, **overrides):
    fields = dict(
        utilization=0.6,
        queue_delay_s=0.04,
        competing_senders=8.0,
        timestamp=timestamp,
        fair_share_mbps=1.875,
    )
    fields.update(overrides)
    return CongestionContext(**fields)


class TestVerdict:
    def test_truthiness(self):
        assert GuardVerdict(True)
        assert not GuardVerdict(False, REASON_NON_FINITE)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            GuardConfig(max_queue_delay_s=0.0)
        with pytest.raises(ValueError):
            GuardConfig(max_future_skew_s=-1.0)
        with pytest.raises(ValueError):
            GuardConfig(utilization_step=-0.1)
        with pytest.raises(ValueError):
            GuardConfig(capacity_mbps=0.0)
        with pytest.raises(ValueError):
            GuardConfig(fair_share_rel_tol=0.0)


class TestStaticChecks:
    def test_accepts_honest_context(self):
        guard = ContextGuard()
        verdict = guard.validate(honest())
        assert verdict.accepted
        assert guard.accepted_count == 1
        assert guard.last_accepted is not None

    def test_rejects_nan(self):
        guard = ContextGuard()
        verdict = guard.validate(raw_context(float("nan"), 0.0, 1.0))
        assert verdict.reason == REASON_NON_FINITE

    def test_rejects_inf_fair_share(self):
        guard = ContextGuard()
        verdict = guard.validate(
            raw_context(0.5, 0.0, 1.0, fair_share_mbps=math.inf)
        )
        assert verdict.reason == REASON_NON_FINITE

    def test_rejects_out_of_range(self):
        guard = ContextGuard()
        assert guard.validate(raw_context(1.5, 0.0, 1.0)).reason == REASON_OUT_OF_RANGE
        assert guard.validate(raw_context(0.5, -1.0, 1.0)).reason == REASON_OUT_OF_RANGE
        assert guard.validate(raw_context(0.5, 0.0, -2.0)).reason == REASON_OUT_OF_RANGE

    def test_rejects_absurd_queue_delay(self):
        guard = ContextGuard(GuardConfig(max_queue_delay_s=1.0))
        verdict = guard.validate(honest(queue_delay_s=40.0))
        assert verdict.reason == REASON_OUT_OF_RANGE

    def test_rejects_future_timestamp_with_clock(self):
        guard = ContextGuard(now=lambda: 10.0)
        verdict = guard.validate(honest(timestamp=30.0))
        assert verdict.reason == REASON_FUTURE_TIMESTAMP

    def test_no_clock_no_future_check(self):
        guard = ContextGuard()
        assert guard.validate(honest(timestamp=1e9)).accepted


class TestRateOfChange:
    def test_teleporting_utilization_rejected(self):
        guard = ContextGuard(
            GuardConfig(utilization_step=0.2, utilization_slew_per_s=0.0)
        )
        assert guard.validate(honest(utilization=0.1)).accepted
        verdict = guard.validate(honest(utilization=0.9, timestamp=0.1))
        assert verdict.reason == REASON_RATE_OF_CHANGE

    def test_slew_allows_change_given_time(self):
        guard = ContextGuard(
            GuardConfig(utilization_step=0.2, utilization_slew_per_s=0.1)
        )
        assert guard.validate(honest(utilization=0.1, timestamp=0.0)).accepted
        # 0.8 jump over 10 s: allowed envelope is 0.2 + 0.1*10 = 1.2.
        assert guard.validate(honest(utilization=0.9, timestamp=10.0)).accepted

    def test_rejected_snapshot_not_rate_baseline(self):
        guard = ContextGuard(
            GuardConfig(utilization_step=0.2, utilization_slew_per_s=0.0)
        )
        assert guard.validate(honest(utilization=0.1)).accepted
        assert not guard.validate(honest(utilization=0.9, timestamp=0.1))
        # Baseline is still the accepted 0.1 snapshot.
        assert guard.last_accepted.utilization == 0.1
        assert guard.validate(honest(utilization=0.25, timestamp=0.2)).accepted

    def test_queue_delay_rate_checked(self):
        guard = ContextGuard(
            GuardConfig(queue_delay_step_s=0.05, queue_delay_slew_per_s=0.0)
        )
        assert guard.validate(honest(queue_delay_s=0.01)).accepted
        verdict = guard.validate(honest(queue_delay_s=0.5, timestamp=0.1))
        assert verdict.reason == REASON_RATE_OF_CHANGE


class TestConsistency:
    def test_fair_share_must_match_capacity_over_n(self):
        guard = ContextGuard(GuardConfig(capacity_mbps=15.0))
        # 15 / 8 = 1.875: honest() is consistent.
        assert guard.validate(honest()).accepted
        verdict = guard.validate(honest(fair_share_mbps=9.0, timestamp=1.0))
        assert verdict.reason == REASON_INCONSISTENT

    def test_without_capacity_no_consistency_check(self):
        guard = ContextGuard()
        assert guard.validate(honest(fair_share_mbps=9.0)).accepted

    def test_self_consistent_lie_passes_the_guard(self):
        """The guard's documented blind spot: trust must catch this one."""
        guard = ContextGuard(GuardConfig(capacity_mbps=15.0))
        lie = honest(
            utilization=0.0, queue_delay_s=0.0, competing_senders=1.0,
            fair_share_mbps=15.0,
        )
        assert guard.validate(lie).accepted


class TestAccounting:
    def test_rejections_counted_by_reason(self):
        guard = ContextGuard()
        guard.validate(raw_context(float("nan"), 0.0, 1.0))
        guard.validate(raw_context(float("nan"), 0.0, 1.0))
        guard.validate(raw_context(2.0, 0.0, 1.0))
        assert guard.rejection_counts() == {
            REASON_NON_FINITE: 2,
            REASON_OUT_OF_RANGE: 1,
        }
        assert guard.rejected_count == 3
        assert guard.accepted_count == 0

    def test_reasons_are_registered(self):
        assert REASON_RATE_OF_CHANGE in GUARD_REASONS
        assert len(set(GUARD_REASONS)) == len(GUARD_REASONS)

    def test_telemetry_counters(self):
        from repro import telemetry

        guard = ContextGuard()
        with telemetry.use() as tele:
            guard.validate(raw_context(float("nan"), 0.0, 1.0))
            guard.validate(raw_context(3.0, 0.0, 1.0))
            counters = tele.registry.snapshot()["counters"]
        assert counters["phi.guard_rejections{reason=non_finite}"] == 1.0
        assert counters["phi.guard_rejections{reason=out_of_range}"] == 1.0

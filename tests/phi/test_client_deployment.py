"""Tests for Phi client factories and deployment mixes."""

import pytest

from repro.phi import (
    REFERENCE_POLICY,
    ContextServer,
    SharingMode,
    deployment_factories,
    phi_cubic_factory,
    phi_remy_factory,
    plain_cubic_factory,
    plain_remy_factory,
    split_stats,
)
from repro.remy import WhiskerTable
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicParams, CubicSender, RemySender
from repro.transport.sink import TcpSink


def setup_env():
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 10_000, top.receivers[0].name, 443)
    sink = TcpSink(sim, top.receivers[0], spec)
    return sim, top, spec, sink


class TestPhiCubicFactory:
    def test_lookup_and_report_cycle(self):
        sim, top, spec, sink = setup_env()
        server = ContextServer(sim, 15e6)
        factory = phi_cubic_factory(server, REFERENCE_POLICY, now=lambda: sim.now)
        done = []
        sender = factory(sim, top.senders[0], spec, 50_000, done.append)
        assert isinstance(sender, CubicSender)
        assert server.lookups == 1
        assert server.active_connections == 1
        sender.start()
        sim.run(until=30.0)
        assert done
        assert server.reports_received == 1
        assert server.active_connections == 0

    def test_params_follow_policy(self):
        sim, top, spec, sink = setup_env()
        server = ContextServer(sim, 15e6)  # idle -> LOW
        factory = phi_cubic_factory(server, REFERENCE_POLICY, now=lambda: sim.now)
        sender = factory(sim, top.senders[0], spec, 10_000, lambda s: None)
        from repro.phi.context import CongestionLevel

        assert sender.params == REFERENCE_POLICY.params_for_level(CongestionLevel.LOW)


class TestPhiRemyFactory:
    def test_none_mode_has_no_util(self):
        sim, top, spec, sink = setup_env()
        server = ContextServer(sim, 15e6)
        table = WhiskerTable()
        factory = phi_remy_factory(table, server, SharingMode.NONE, now=lambda: sim.now)
        sender = factory(sim, top.senders[0], spec, 10_000, lambda s: None)
        assert isinstance(sender, RemySender)
        assert sender.tracker._util_provider is None

    def test_practical_mode_freezes_util(self):
        sim, top, spec, sink = setup_env()
        server = ContextServer(sim, 15e6)
        table = WhiskerTable(WhiskerTable.PHI_DIMENSIONS)
        factory = phi_remy_factory(
            table, server, SharingMode.PRACTICAL, now=lambda: sim.now
        )
        sender = factory(sim, top.senders[0], spec, 10_000, lambda s: None)
        assert sender.tracker._util_provider is not None
        assert sender.tracker._util_provider() == 0.0  # idle at start
        assert server.lookups == 1

    def test_ideal_mode_requires_live_provider(self):
        sim, top, spec, sink = setup_env()
        server = ContextServer(sim, 15e6)
        with pytest.raises(ValueError):
            phi_remy_factory(
                WhiskerTable(), server, SharingMode.IDEAL, now=lambda: sim.now
            )

    def test_ideal_mode_uses_live_provider(self):
        sim, top, spec, sink = setup_env()
        server = ContextServer(sim, 15e6)
        live = {"u": 0.7}
        factory = phi_remy_factory(
            WhiskerTable(WhiskerTable.PHI_DIMENSIONS),
            server,
            SharingMode.IDEAL,
            now=lambda: sim.now,
            live_utilization=lambda: live["u"],
        )
        sender = factory(sim, top.senders[0], spec, 10_000, lambda s: None)
        assert sender.tracker._util_provider() == 0.7
        live["u"] = 0.2
        assert sender.tracker._util_provider() == 0.2


class TestPlainFactories:
    def test_plain_cubic_uses_given_params(self):
        sim, top, spec, sink = setup_env()
        params = CubicParams(window_init=8)
        factory = plain_cubic_factory(params)
        sender = factory(sim, top.senders[0], spec, 10_000, lambda s: None)
        assert sender.params == params

    def test_plain_cubic_defaults(self):
        sim, top, spec, sink = setup_env()
        sender = plain_cubic_factory()(sim, top.senders[0], spec, 10_000, lambda s: None)
        assert sender.params == CubicParams.default()

    def test_plain_remy(self):
        sim, top, spec, sink = setup_env()
        table = WhiskerTable()
        sender = plain_remy_factory(table)(
            sim, top.senders[0], spec, 10_000, lambda s: None
        )
        assert sender.table is table


class TestDeployment:
    def test_half_and_half(self):
        mod = object()
        unmod = object()
        assignments = deployment_factories(8, 0.5, mod, unmod)
        assert sum(1 for a in assignments if a.modified) == 4
        assert all(a.factory is mod for a in assignments if a.modified)
        assert all(a.factory is unmod for a in assignments if not a.modified)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            deployment_factories(8, 1.5, None, None)
        with pytest.raises(ValueError):
            deployment_factories(0, 0.5, None, None)

    def test_zero_and_full(self):
        assignments = deployment_factories(5, 0.0, "m", "u")
        assert not any(a.modified for a in assignments)
        assignments = deployment_factories(5, 1.0, "m", "u")
        assert all(a.modified for a in assignments)

    def test_rounding(self):
        assignments = deployment_factories(5, 0.5, "m", "u")
        assert sum(1 for a in assignments if a.modified) == 2  # round(2.5) == 2

    def test_split_stats(self):
        assignments = deployment_factories(4, 0.5, "m", "u")
        per_sender = [[1, 2], [3], [4], [5, 6]]
        modified, unmodified = split_stats(assignments, per_sender)
        assert modified == [1, 2, 3]
        assert unmodified == [4, 5, 6]

    def test_split_stats_length_mismatch(self):
        assignments = deployment_factories(2, 0.5, "m", "u")
        with pytest.raises(ValueError):
            split_stats(assignments, [[1]])

"""Tests for the context server (practical) and the ideal oracle."""

import pytest

from repro.phi.context import CongestionLevel
from repro.phi.server import ConnectionReport, ContextServer, IdealContextOracle
from repro.simnet import (
    ActiveFlowTracker,
    DumbbellConfig,
    DumbbellTopology,
    LinkMonitor,
    Simulator,
    make_data_packet,
)
from repro.transport.base import ConnectionStats


def make_report(reported_at, bytes_transferred=1_000_000, duration=1.0,
                mean_rtt=0.16, min_rtt=0.15, loss=0.0, flow_id=1):
    return ConnectionReport(
        flow_id=flow_id,
        reported_at=reported_at,
        bytes_transferred=bytes_transferred,
        duration_s=duration,
        mean_rtt_s=mean_rtt,
        min_rtt_s=min_rtt,
        loss_indicator=loss,
    )


class TestContextServerProtocol:
    def _server(self, capacity=15e6, **kwargs):
        sim = Simulator()
        return sim, ContextServer(sim, capacity, **kwargs)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ContextServer(sim, 0)
        with pytest.raises(ValueError):
            ContextServer(sim, 1e6, window_s=0)
        with pytest.raises(ValueError):
            ContextServer(sim, 1e6, ewma_alpha=0)

    def test_lookup_registers_active_connection(self):
        sim, server = self._server()
        server.lookup()
        server.lookup()
        assert server.active_connections == 2
        assert server.lookups == 2

    def test_report_deregisters(self):
        sim, server = self._server()
        server.lookup()
        server.report(make_report(0.0))
        assert server.active_connections == 0
        assert server.reports_received == 1

    def test_idle_server_reports_idle_context(self):
        sim, server = self._server()
        ctx = server.current_context()
        assert ctx.utilization == 0.0
        assert ctx.level() is CongestionLevel.LOW

    def test_utilization_estimate_from_reports(self):
        sim, server = self._server(capacity=8e6, window_s=10.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        # 5 MB in the last 5 seconds over an 8 Mbps capacity and a 10 s
        # window: 40 Mbit / 80 Mbit = 0.5.
        server.report(make_report(10.0, bytes_transferred=5_000_000, duration=5.0))
        assert server.estimated_utilization() == pytest.approx(0.5, rel=0.05)

    def test_long_connection_only_counts_window_overlap(self):
        sim, server = self._server(capacity=8e6, window_s=10.0)
        sim.schedule(100.0, lambda: None)
        sim.run()
        # 100 s connection at ~1 Mbps: only the last 10 s overlap.
        server.report(
            make_report(100.0, bytes_transferred=12_500_000, duration=100.0)
        )
        assert server.estimated_utilization() == pytest.approx(0.125, rel=0.05)

    def test_reports_age_out(self):
        sim, server = self._server(window_s=5.0)
        server.report(make_report(0.0, bytes_transferred=10_000_000))
        sim.schedule(20.0, lambda: None)
        sim.run()
        assert server.estimated_utilization() == 0.0

    def test_queue_delay_ewma(self):
        sim, server = self._server(ewma_alpha=0.5)
        server.report(make_report(0.0, mean_rtt=0.25, min_rtt=0.15))
        assert server.estimated_queue_delay() == pytest.approx(0.1)
        server.report(make_report(0.0, mean_rtt=0.15, min_rtt=0.15))
        assert server.estimated_queue_delay() == pytest.approx(0.05)

    def test_loss_ewma(self):
        sim, server = self._server(ewma_alpha=1.0)
        server.report(make_report(0.0, loss=0.04))
        assert server.estimated_loss() == pytest.approx(0.04)

    def test_utilization_capped_at_one(self):
        sim, server = self._server(capacity=1e3)
        sim.schedule(1.0, lambda: None)
        sim.run()
        server.report(make_report(1.0, bytes_transferred=10_000_000, duration=1.0))
        assert server.estimated_utilization() == 1.0

    def test_report_from_stats(self):
        sim, server = self._server()
        stats = ConnectionStats(flow_id=9)
        stats.start_time = 0.0
        stats.end_time = 2.0
        stats.bytes_goodput = 1000
        stats.rtt_samples = [0.15, 0.17]
        stats.min_rtt = 0.15
        stats.packets_sent = 10
        server.report_stats(stats)
        assert server.reports_received == 1


class TestLeases:
    """Regression tests for the lookup-without-report leak: a sender that
    crashes (or whose report is lost) must not inflate ``n`` forever."""

    def _server(self, **kwargs):
        sim = Simulator()
        return sim, ContextServer(sim, 15e6, **kwargs)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ContextServer(sim, 15e6, lease_ttl_s=0)

    def test_orphaned_lookup_expires(self):
        sim, server = self._server(lease_ttl_s=5.0)
        server.lookup()  # never reports back
        assert server.active_connections == 1
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert server.active_connections == 0
        assert server.leases_expired == 1

    def test_leak_is_bounded_under_sustained_orphans(self):
        sim, server = self._server(lease_ttl_s=5.0)
        # One orphaned lookup per second for a minute: without expiry n
        # would reach 60; with leases it stays at the TTL's worth.
        for t in range(60):
            sim.schedule_at(float(t), server.lookup)
        sim.run()
        assert server.active_connections <= 6
        assert server.leases_expired >= 54

    def test_report_after_expiry_does_not_go_negative(self):
        sim, server = self._server(lease_ttl_s=5.0)
        server.lookup()
        sim.schedule(10.0, lambda: None)
        sim.run()
        server.report(make_report(10.0))
        assert server.active_connections == 0
        server.lookup()
        assert server.active_connections == 1

    def test_live_connections_keep_their_lease(self):
        sim, server = self._server(lease_ttl_s=5.0)
        sim.schedule_at(0.0, server.lookup)   # orphan
        sim.schedule_at(4.0, server.lookup)   # young connection
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        # At t=7 the t=0 lease has expired; the t=4 one is still live.
        assert server.active_connections == 1

    def test_expiry_disabled_with_none(self):
        sim, server = self._server(lease_ttl_s=None)
        server.lookup()
        sim.schedule(10_000.0, lambda: None)
        sim.run()
        assert server.active_connections == 1

    def test_default_ttl_is_finite(self):
        sim, server = self._server()
        assert server.lease_ttl_s is not None


class TestConnectionReport:
    def test_queue_delay(self):
        report = make_report(0.0, mean_rtt=0.2, min_rtt=0.15)
        assert report.queue_delay_s == pytest.approx(0.05)

    def test_queue_delay_without_rtt(self):
        report = make_report(0.0, mean_rtt=0.0, min_rtt=0.0)
        assert report.queue_delay_s == 0.0

    def test_from_stats(self):
        stats = ConnectionStats(flow_id=3)
        stats.start_time = 1.0
        stats.end_time = 3.0
        stats.bytes_goodput = 500
        stats.packets_sent = 100
        stats.retransmits = 2
        stats.rtt_samples = [0.1]
        stats.min_rtt = 0.1
        report = ConnectionReport.from_stats(stats, reported_at=3.0)
        assert report.duration_s == pytest.approx(2.0)
        assert report.loss_indicator == pytest.approx(0.02)
        assert report.flow_id == 3


class TestIdealOracle:
    def _oracle(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        monitor = LinkMonitor(sim, top.bottleneck, period_s=0.05)
        monitor.start()
        tracker = ActiveFlowTracker()
        return sim, top, monitor, tracker, IdealContextOracle(sim, monitor, tracker)

    def test_idle_network(self):
        sim, top, monitor, tracker, oracle = self._oracle()
        sim.run(until=1.0)
        ctx = oracle.lookup()
        assert ctx.utilization == 0.0
        assert ctx.competing_senders == 0.0

    def test_sees_live_utilization(self):
        sim, top, monitor, tracker, oracle = self._oracle()
        top.receivers[0].set_default_handler(lambda p: None)
        for i in range(400):
            top.senders[0].send(
                make_data_packet(1, top.senders[0].name, top.receivers[0].name, i, 1400)
            )
        # 400 x 1440 B at 15 Mbps keeps the link busy for ~0.3 s; query the
        # oracle while the burst is still flowing.
        sim.run(until=0.25)
        ctx = oracle.current_context()
        assert ctx.utilization > 0.5

    def test_counts_active_flows(self):
        sim, top, monitor, tracker, oracle = self._oracle()
        tracker.flow_started(1, 0.0)
        tracker.flow_started(2, 0.0)
        assert oracle.current_context().competing_senders == 2.0

    def test_utilization_provider_is_live(self):
        sim, top, monitor, tracker, oracle = self._oracle()
        provider = oracle.utilization_provider()
        assert provider() == 0.0

    def test_report_is_noop(self):
        sim, top, monitor, tracker, oracle = self._oracle()
        oracle.report(make_report(0.0))
        oracle.report_stats(ConnectionStats(flow_id=1))


class TestRobustAggregation:
    def _server(self, sim=None, **kwargs):
        from repro.phi.server import RobustAggregationConfig

        sim = sim or Simulator()
        robust = RobustAggregationConfig(**kwargs)
        return sim, ContextServer(sim, 15e6, robust=robust)

    def test_config_validation(self):
        from repro.phi.server import RobustAggregationConfig

        with pytest.raises(ValueError):
            RobustAggregationConfig(trim_fraction=0.5)
        with pytest.raises(ValueError):
            RobustAggregationConfig(influence_bound=0.5)
        with pytest.raises(ValueError):
            RobustAggregationConfig(min_reports_for_trim=0)

    def test_default_server_is_trusting(self):
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        assert server.robust is None
        import math as _math

        server.report(make_report(0.0, mean_rtt=_math.nan))
        assert server.reports_rejected == 0  # swallowed, old behaviour

    def test_malformed_reports_rejected_by_reason(self):
        import math as _math

        sim, server = self._server()
        server.report(make_report(0.0, mean_rtt=_math.nan))
        server.report(make_report(0.0, bytes_transferred=-1))
        server.report(make_report(0.0, duration=-1.0))
        server.report(make_report(0.0, loss=2.0))
        server.report(make_report(0.0))  # honest
        assert server.reports_rejected == 4
        assert server.report_rejections == {
            "non_finite": 1,
            "negative_bytes": 1,
            "negative_duration": 1,
            "loss_out_of_range": 1,
        }
        assert len(server._reports) == 1

    def test_rejected_report_does_not_release_lease(self):
        import math as _math

        sim, server = self._server()
        server.lookup()
        server.report(make_report(0.0, mean_rtt=_math.nan))
        assert server.active_connections == 1
        server.report(make_report(0.0))
        assert server.active_connections == 0

    def test_trimmed_mean_discards_outlier_queue_delay(self):
        sim, server = self._server(trim_fraction=0.2, min_reports_for_trim=4)
        for i in range(9):
            server.report(make_report(0.0, mean_rtt=0.16, flow_id=i))
        # One liar claims 10 s of queueing.
        server.report(make_report(0.0, mean_rtt=10.15, flow_id=99))
        q = server.estimated_queue_delay()
        assert q == pytest.approx(0.01, abs=1e-6)

    def test_ewma_fallback_below_min_reports(self):
        sim, server = self._server(min_reports_for_trim=4)
        server.report(make_report(0.0, mean_rtt=0.25))
        # Only 1 report in window: the EWMA (seeded by it) answers.
        assert server.estimated_queue_delay() == pytest.approx(0.10)

    def test_influence_cap_bounds_utilization_lie(self):
        def loaded(server, sim):
            sim.schedule(5.0, lambda: None)
            sim.run()
            for i in range(8):
                server.report(
                    make_report(5.0, bytes_transferred=100_000, flow_id=i)
                )
            server.report(make_report(5.0, bytes_transferred=10**12, flow_id=99))

        sim = Simulator()
        trusting = ContextServer(sim, 15e6)
        loaded(trusting, sim)
        sim2, robust = self._server(influence_bound=4.0, min_reports_for_trim=4)
        loaded(robust, sim2)
        assert trusting.estimated_utilization() == 1.0  # saturated by the lie
        # Honest traffic alone is ~0.085; the capped liar may nudge the
        # estimate (one extra 4x-median contribution) but not seize it.
        assert robust.estimated_utilization() < 0.15

    def test_trimmed_loss(self):
        sim, server = self._server(trim_fraction=0.2, min_reports_for_trim=4)
        for i in range(9):
            server.report(make_report(0.0, loss=0.0, flow_id=i))
        server.report(make_report(0.0, loss=1.0, flow_id=99))
        assert server.estimated_loss() == pytest.approx(0.0)

    def test_telemetry_rejection_counter(self):
        import math as _math

        from repro import telemetry

        sim, server = self._server()
        with telemetry.use() as tele:
            server.report(make_report(0.0, mean_rtt=_math.nan))
            counters = tele.registry.snapshot()["counters"]
        assert counters["phi.report_rejections{reason=non_finite}"] == 1.0

    def test_report_invalid_reason_accepts_honest(self):
        from repro.phi.server import report_invalid_reason

        assert report_invalid_reason(make_report(0.0)) is None

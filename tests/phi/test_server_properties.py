"""Property-based tests for the context server's estimators."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi.server import ConnectionReport, ContextServer
from repro.simnet import Simulator


def report_strategy(max_time=100.0):
    return st.builds(
        ConnectionReport,
        flow_id=st.integers(min_value=1, max_value=10_000),
        reported_at=st.floats(min_value=0.0, max_value=max_time),
        bytes_transferred=st.integers(min_value=0, max_value=10**9),
        duration_s=st.floats(min_value=0.001, max_value=50.0),
        mean_rtt_s=st.floats(min_value=0.0, max_value=5.0),
        min_rtt_s=st.floats(min_value=0.0, max_value=5.0),
        loss_indicator=st.floats(min_value=0.0, max_value=1.0),
    )


class TestServerInvariants:
    @given(st.lists(report_strategy(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_utilization_always_in_unit_interval(self, reports):
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        sim.schedule(100.0, lambda: None)
        sim.run()
        for report in reports:
            server.report(report)
        u = server.estimated_utilization()
        assert 0.0 <= u <= 1.0

    @given(st.lists(report_strategy(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_context_always_constructible(self, reports):
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        sim.schedule(100.0, lambda: None)
        sim.run()
        for report in reports:
            server.lookup()
            server.report(report)
        ctx = server.current_context()
        assert 0.0 <= ctx.utilization <= 1.0
        assert ctx.queue_delay_s >= 0.0
        assert ctx.competing_senders >= 0.0
        assert ctx.level() is not None

    @given(
        st.lists(st.booleans(), min_size=1, max_size=100),
    )
    @settings(max_examples=60)
    def test_active_counter_never_negative(self, operations):
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        for is_lookup in operations:
            if is_lookup:
                server.lookup()
            else:
                server.report(
                    ConnectionReport(
                        flow_id=1,
                        reported_at=0.0,
                        bytes_transferred=1000,
                        duration_s=0.1,
                        mean_rtt_s=0.15,
                        min_rtt_s=0.15,
                        loss_indicator=0.0,
                    )
                )
            assert server.active_connections >= 0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_queue_delay_ewma_bounded_by_inputs(self, first_delay, second_delay):
        sim = Simulator()
        server = ContextServer(sim, 15e6, ewma_alpha=0.5)
        for delay in (first_delay, second_delay):
            server.report(
                ConnectionReport(
                    flow_id=1,
                    reported_at=0.0,
                    bytes_transferred=1000,
                    duration_s=0.1,
                    mean_rtt_s=0.15 + delay,
                    min_rtt_s=0.15,
                    loss_indicator=0.0,
                )
            )
        estimate = server.estimated_queue_delay()
        low, high = sorted((first_delay, second_delay))
        assert low - 1e-9 <= estimate <= high + 1e-9

"""Tests for the fair-share dimension of the congestion context."""

import pytest

from repro.phi import CongestionContext, CongestionLevel, ContextServer
from repro.phi.context import FAIR_SHARE_THRESHOLDS_MBPS
from repro.phi.policy import PolicyDecision, REFERENCE_POLICY
from repro.simnet import Simulator


class TestFairShareBucket:
    def _ctx(self, fair_share):
        return CongestionContext(
            utilization=0.0,
            queue_delay_s=0.0,
            competing_senders=1.0,
            fair_share_mbps=fair_share,
        )

    def test_abundant_share_is_low(self):
        assert self._ctx(50.0).level() is CongestionLevel.LOW

    def test_moderate_share(self):
        assert self._ctx(5.0).level() is CongestionLevel.MODERATE

    def test_scarce_share_is_high(self):
        assert self._ctx(1.0).level() is CongestionLevel.HIGH

    def test_starved_share_is_severe(self):
        assert self._ctx(0.1).level() is CongestionLevel.SEVERE

    def test_thresholds_are_descending(self):
        assert list(FAIR_SHARE_THRESHOLDS_MBPS) == sorted(
            FAIR_SHARE_THRESHOLDS_MBPS, reverse=True
        )

    def test_without_fair_share_level_unchanged(self):
        ctx = CongestionContext(0.1, 0.0, 100.0)
        assert ctx.level() is CongestionLevel.LOW

    def test_worst_metric_still_wins(self):
        # Plenty of fair share but saturated utilization: SEVERE.
        ctx = CongestionContext(0.95, 0.0, 1.0, fair_share_mbps=100.0)
        assert ctx.level() is CongestionLevel.SEVERE

    def test_negative_fair_share_rejected(self):
        with pytest.raises(ValueError):
            CongestionContext(0.1, 0.0, 1.0, fair_share_mbps=-1.0)


class TestServerFairShare:
    def test_lookup_burst_escalates_level_in_real_time(self):
        """The server's live n signal escalates congestion classification
        before any report arrives — the mechanism that keeps the
        practical mode from flying blind at connection-start bursts."""
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        assert server.lookup().level() is CongestionLevel.LOW
        for __ in range(8):
            server.lookup()
        # 9 active connections over 15 Mbps -> ~1.7 Mbps fair share.
        ctx = server.current_context()
        assert ctx.fair_share_mbps == pytest.approx(15.0 / 9, rel=0.01)
        assert ctx.level() is CongestionLevel.HIGH

    def test_reports_deescalate(self):
        from repro.phi.server import ConnectionReport

        sim = Simulator()
        server = ContextServer(sim, 15e6)
        for __ in range(9):
            server.lookup()
        for flow_id in range(8):
            server.report(
                ConnectionReport(
                    flow_id=flow_id,
                    reported_at=0.0,
                    bytes_transferred=1_000,
                    duration_s=0.01,
                    mean_rtt_s=0.15,
                    min_rtt_s=0.15,
                    loss_indicator=0.0,
                )
            )
        assert server.current_context().level() is CongestionLevel.LOW


class TestPolicyDecision:
    def test_decision_records_level(self):
        ctx = CongestionContext(0.95, 0.0, 4.0)
        decision = PolicyDecision(
            context=ctx, params=REFERENCE_POLICY.params_for(ctx)
        )
        assert decision.level is CongestionLevel.SEVERE
        assert decision.params == REFERENCE_POLICY.params_for_level(
            CongestionLevel.SEVERE
        )

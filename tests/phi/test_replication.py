"""Tests for the replicated context service (anti-entropy, quorum)."""

import pytest

from repro import telemetry
from repro.phi.replication import (
    QuorumUnavailable,
    ReadPolicy,
    ReplicatedContextService,
    ReplicationConfig,
)
from repro.phi.server import ConnectionReport, RobustAggregationConfig
from repro.simnet import Simulator

CAPACITY_BPS = 10e6


def make_report(flow_id=1, at=0.0, bytes_transferred=250_000, loss=0.0):
    return ConnectionReport(
        flow_id=flow_id,
        reported_at=at,
        bytes_transferred=bytes_transferred,
        duration_s=1.0,
        mean_rtt_s=0.05,
        min_rtt_s=0.04,
        loss_indicator=loss,
    )


def make_service(sim, n=3, period=1.0, policy=ReadPolicy.ANY, **kwargs):
    return ReplicatedContextService(
        sim,
        CAPACITY_BPS,
        config=ReplicationConfig(
            n_replicas=n, anti_entropy_period_s=period, read_policy=policy
        ),
        **kwargs,
    )


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ReplicationConfig(n_replicas=0)
        with pytest.raises(ValueError):
            ReplicationConfig(anti_entropy_period_s=0)
        with pytest.raises(ValueError):
            ReplicationConfig(quorum_staleness_s=0)

    def test_mesh_edge_validation(self):
        sim = Simulator()
        service = make_service(sim, n=3)
        with pytest.raises(ValueError):
            service.sever(0, 3)
        with pytest.raises(ValueError):
            service.sever(1, 1)


class TestSingleReplicaIdentity:
    def test_no_anti_entropy_events_for_one_replica(self):
        """N=1 must schedule nothing: the bit-identity oracle's backbone."""
        sim = Simulator()
        make_service(sim, n=1)
        sim.run(until=100.0)
        assert sim.events_processed == 0

    def test_multi_replica_ticks(self):
        sim = Simulator()
        service = make_service(sim, n=3, period=1.0)
        sim.run(until=10.5)
        assert sim.events_processed == 10
        assert len(service.divergence_history) == 10


class TestAntiEntropyMerge:
    def test_reports_replicate_to_all_replicas(self):
        sim = Simulator()
        service = make_service(sim, n=3)
        service.handle(0).report(make_report(flow_id=1, at=0.0))
        sim.run(until=1.5)
        assert service.anti_entropy_merges >= 1
        # Two other replicas each absorbed the report.
        assert service.reports_replicated == 2
        utils = [s.estimated_utilization() for s in service.servers]
        assert max(utils) == pytest.approx(min(utils))
        assert service.replica_divergence() == pytest.approx(0.0, abs=1e-12)

    def test_merge_is_assignment_invariant_on_window_state(self):
        """Same report set fed to different replicas converges to the
        same *windowed* state regardless of which replica heard what.
        (EWMA side-estimates keep per-replica fold history and are
        deliberately outside the convergence contract; divergence is
        defined on the windowed utilization estimator.)"""
        reports = [make_report(flow_id=i, at=0.0, loss=0.1 * i) for i in range(4)]

        def converged_state(assignment):
            sim = Simulator()
            service = make_service(sim, n=2)
            for replica, report in zip(assignment, reports):
                service.handle(replica).report(report)
            sim.run(until=1.5)
            utils = [s.estimated_utilization() for s in service.servers]
            assert utils[0] == utils[1]
            seen = [frozenset(h.seen) for h in service.handles]
            assert seen[0] == seen[1]
            return utils[0], seen[0]

        assert converged_state([0, 0, 0, 0]) == converged_state([1, 0, 1, 0])

    def test_severed_component_diverges_then_heals(self):
        sim = Simulator()
        service = make_service(sim, n=3)
        service.sever(0, 2)
        service.sever(1, 2)
        sim.schedule_at(0.5, service.handle(0).report, make_report(at=0.5))
        sim.run(until=2.5)
        assert service.replica_divergence() > 0
        service.heal(0, 2)
        service.heal(1, 2)
        sim.run(until=4.5)
        assert service.replica_divergence() == pytest.approx(0.0, abs=1e-9)

    def test_components_reflect_mesh(self):
        sim = Simulator()
        service = make_service(sim, n=4)
        assert service.components() == [[0, 1, 2, 3]]
        service.sever(0, 2)
        service.sever(0, 3)
        service.sever(1, 2)
        service.sever(1, 3)
        assert service.components() == [[0, 1], [2, 3]]
        assert service.component_of(3) == [2, 3]

    def test_robust_validation_respected_on_absorb(self):
        """A malformed report rejected at its home replica must not
        sneak into peers through anti-entropy."""
        sim = Simulator()
        service = make_service(
            sim, n=2, robust=RobustAggregationConfig()
        )
        bad = make_report(at=0.0, bytes_transferred=-5)
        service.handle(0).report(bad)
        assert service.servers[0].reports_rejected == 1
        assert bad not in service.handle(0).seen
        sim.run(until=1.5)
        assert service.reports_replicated == 0
        assert all(s.reports_absorbed == 0 for s in service.servers)


class TestLeaseReconciliation:
    def test_leases_counted_once_across_replicas(self):
        sim = Simulator()
        service = make_service(sim, n=3)
        service.handle(0).lookup()
        service.handle(1).lookup()
        sim.run(until=1.5)
        # After a merge every replica knows both outstanding leases.
        for server in service.servers:
            assert server.active_connections == 2

    def test_release_propagates(self):
        sim = Simulator()
        service = make_service(sim, n=3)
        service.handle(0).lookup()
        sim.run(until=1.5)
        assert all(s.active_connections == 1 for s in service.servers)
        service.handle(1).report(make_report(at=sim.now))
        sim.run(until=2.5)
        assert all(s.active_connections == 0 for s in service.servers)

    def test_lease_ttl_expiry_survives_merge(self):
        sim = Simulator()
        service = make_service(sim, n=2, lease_ttl_s=2.0)
        service.handle(0).lookup()
        sim.run(until=1.5)
        assert all(s.active_connections == 1 for s in service.servers)
        sim.run(until=4.5)
        assert all(s.active_connections == 0 for s in service.servers)
        # The handle logs expired too: nothing left to resurrect.
        assert service.handle(0).outstanding_leases() == {}


class TestQuorumPolicy:
    def test_minority_replica_refuses(self):
        sim = Simulator()
        service = make_service(sim, n=3, policy=ReadPolicy.QUORUM)
        sim.run(until=1.5)  # everyone has merged recently
        service.sever(0, 2)
        service.sever(1, 2)
        with pytest.raises(QuorumUnavailable):
            service.handle(2).lookup()
        # Majority side still answers.
        assert service.handle(0).lookup() is not None
        assert service.quorum_rejections == 1

    def test_stale_majority_replica_refuses(self):
        """Seeing a majority is not enough: the replica must have merged
        recently enough to speak for it."""
        sim = Simulator()
        service = make_service(sim, n=3, policy=ReadPolicy.QUORUM)
        sim.run(until=1.5)
        # Freeze merges by severing everything, then outwait staleness.
        for i, j in ((0, 1), (0, 2), (1, 2)):
            service.sever(i, j)
        sim.run(until=20.0)
        for index in range(3):
            with pytest.raises(QuorumUnavailable):
                service.handle(index).lookup()

    def test_any_policy_always_answers(self):
        sim = Simulator()
        service = make_service(sim, n=3, policy=ReadPolicy.ANY)
        service.sever(0, 1)
        service.sever(0, 2)
        assert service.handle(0).lookup() is not None


class TestTelemetry:
    def test_counters_and_gauge(self):
        with telemetry.use() as tele:
            sim = Simulator()
            service = make_service(sim, n=2)
            service.handle(0).report(make_report(at=0.0))
            sim.run(until=1.5)
            snapshot = tele.registry.snapshot()
        assert snapshot["counters"].get("phi.anti_entropy_merges") >= 1
        assert "phi.replica_divergence" in snapshot["gauges"]

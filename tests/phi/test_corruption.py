"""Tests for semantic fault injection (corruptors and Byzantine reports)."""

import math

import numpy as np
import pytest

from repro.phi.context import CongestionContext
from repro.phi.corruption import (
    CONTEXT_CORRUPTION_MODES,
    AdversarialCorruptor,
    BitFlipCorruptor,
    ByzantineReporter,
    CompositeCorruptor,
    CorruptingSource,
    CorruptionLayer,
    FrozenContextCorruptor,
    GarbageCorruptor,
    ReplayCorruptor,
    ScaleCorruptor,
    flip_float_bit,
    make_context_corruptor,
    raw_context,
)
from repro.phi.server import ConnectionReport


def rng(seed=7):
    return np.random.default_rng(seed)


def honest(timestamp=0.0):
    return CongestionContext(
        utilization=0.6,
        queue_delay_s=0.04,
        competing_senders=8.0,
        timestamp=timestamp,
        fair_share_mbps=1.875,
    )


def make_report(flow_id=1, reported_at=1.0):
    return ConnectionReport(
        flow_id=flow_id,
        reported_at=reported_at,
        bytes_transferred=100_000,
        duration_s=1.0,
        mean_rtt_s=0.18,
        min_rtt_s=0.15,
        loss_indicator=0.01,
    )


class TestRawContext:
    def test_bypasses_validation(self):
        ctx = raw_context(float("nan"), -5.0, math.inf)
        assert math.isnan(ctx.utilization)
        assert ctx.queue_delay_s == -5.0
        assert math.isinf(ctx.competing_senders)

    def test_constructor_now_rejects_the_same_values(self):
        with pytest.raises(ValueError):
            CongestionContext(
                utilization=float("nan"), queue_delay_s=0.0, competing_senders=1.0
            )


class TestFlipFloatBit:
    def test_round_trip(self):
        flipped = flip_float_bit(1.0, 3)
        assert flipped != 1.0
        assert flip_float_bit(flipped, 3) == 1.0

    def test_sign_bit(self):
        assert flip_float_bit(2.5, 63) == -2.5

    def test_bit_range_validated(self):
        with pytest.raises(ValueError):
            flip_float_bit(1.0, 64)


class TestSeverityGate:
    def test_severity_zero_never_corrupts(self):
        corruptor = GarbageCorruptor(rng(), 0.0)
        for _ in range(50):
            assert corruptor.corrupt(honest()) is not None
        assert corruptor.corrupted == 0
        assert corruptor.passed == 50

    def test_severity_one_always_corrupts(self):
        corruptor = GarbageCorruptor(rng(), 1.0)
        for _ in range(50):
            corruptor.corrupt(honest())
        assert corruptor.corrupted == 50
        assert corruptor.passed == 0

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            GarbageCorruptor(rng(), 1.5)

    def test_same_seed_same_trace(self):
        a = BitFlipCorruptor(rng(3), 0.5)
        b = BitFlipCorruptor(rng(3), 0.5)
        outs_a = [a.corrupt(honest(t)) for t in range(20)]
        outs_b = [b.corrupt(honest(t)) for t in range(20)]
        assert outs_a == outs_b


class TestIndividualCorruptors:
    def test_bitflip_changes_exactly_one_field(self):
        corruptor = BitFlipCorruptor(rng(), 1.0)
        before = honest()
        after = corruptor.corrupt(before)
        diffs = [
            name
            for name in (
                "utilization", "queue_delay_s", "competing_senders",
                "fair_share_mbps",
            )
            if getattr(after, name) != getattr(before, name)
            and not (
                isinstance(getattr(after, name), float)
                and math.isnan(getattr(after, name))
                and math.isnan(getattr(before, name))
            )
        ]
        assert len(diffs) == 1
        assert after.timestamp == before.timestamp

    def test_scale_is_power_of_ten(self):
        corruptor = ScaleCorruptor(rng(), 1.0, max_decades=2)
        before = honest()
        after = corruptor.corrupt(before)
        changed = [
            (getattr(after, n), getattr(before, n))
            for n in ("utilization", "queue_delay_s", "competing_senders",
                      "fair_share_mbps")
            if getattr(after, n) != getattr(before, n)
        ]
        assert len(changed) == 1
        new, old = changed[0]
        assert new / old == pytest.approx(10.0) or new / old == pytest.approx(
            0.1
        ) or new / old == pytest.approx(100.0) or new / old == pytest.approx(0.01)

    def test_frozen_serves_first_snapshot_restamped(self):
        corruptor = FrozenContextCorruptor(rng(), 1.0)
        first = honest(timestamp=1.0)
        corruptor.corrupt(first)
        later = CongestionContext(
            utilization=0.9, queue_delay_s=0.3, competing_senders=20.0,
            timestamp=50.0,
        )
        out = corruptor.corrupt(later)
        assert out.utilization == first.utilization
        assert out.competing_senders == first.competing_senders
        assert out.timestamp == 50.0  # claims freshness

    def test_replay_serves_oldest_history(self):
        corruptor = ReplayCorruptor(rng(42), 0.0, depth=4)
        snapshots = [honest(timestamp=float(t)) for t in range(4)]
        for snap in snapshots:
            corruptor.corrupt(snap)  # severity 0: pure observation
        corruptor.severity = 1.0
        out = corruptor.corrupt(honest(timestamp=99.0))
        # History window slid: oldest retained is snapshots[1].
        assert out.utilization == snapshots[1].utilization
        assert out.timestamp == 99.0

    def test_deflate_full_severity_claims_idle_network(self):
        corruptor = AdversarialCorruptor(rng(), 1.0)
        out = corruptor.corrupt(honest())
        assert out.utilization == 0.0
        assert out.queue_delay_s == 0.0
        assert out.competing_senders == 1.0

    def test_deflate_keeps_fair_share_consistent(self):
        corruptor = AdversarialCorruptor(rng(), 1.0)
        before = honest()
        out = corruptor.corrupt(before)
        capacity = before.fair_share_mbps * before.competing_senders
        assert out.fair_share_mbps == pytest.approx(
            capacity / max(1.0, out.competing_senders)
        )

    def test_inflate_claims_severe_congestion(self):
        corruptor = AdversarialCorruptor(rng(), 1.0, inflate=True)
        out = corruptor.corrupt(honest())
        assert out.utilization == 1.0
        assert out.competing_senders > honest().competing_senders

    def test_garbage_produces_invalid_values(self):
        corruptor = GarbageCorruptor(rng(), 1.0)
        saw_invalid = 0
        for _ in range(30):
            out = corruptor.corrupt(honest())
            values = [
                out.utilization, out.queue_delay_s, out.competing_senders,
                out.fair_share_mbps,
            ]
            if any(not math.isfinite(v) or v < 0 for v in values):
                saw_invalid += 1
        assert saw_invalid == 30


class TestComposite:
    def test_spreads_over_members(self):
        members = [
            BitFlipCorruptor(rng(1), 1.0),
            GarbageCorruptor(rng(2), 1.0),
        ]
        composite = CompositeCorruptor(rng(3), 1.0, members)
        for _ in range(40):
            composite.corrupt(honest())
        assert composite.corrupted == 40
        assert all(m.corrupted > 0 for m in members)
        assert sum(m.corrupted for m in members) == 40

    def test_requires_members(self):
        with pytest.raises(ValueError):
            CompositeCorruptor(rng(), 1.0, [])


class TestFactory:
    def test_single_mode(self):
        corruptor = make_context_corruptor(["garbage"], rng(), 0.5)
        assert isinstance(corruptor, GarbageCorruptor)

    def test_multiple_modes_compose(self):
        corruptor = make_context_corruptor(["bitflip", "scale"], rng(), 0.5)
        assert isinstance(corruptor, CompositeCorruptor)
        assert len(corruptor.members) == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption mode"):
            make_context_corruptor(["gremlins"], rng(), 0.5)

    def test_all_advertised_modes_build(self):
        for mode in CONTEXT_CORRUPTION_MODES:
            make_context_corruptor([mode], rng(), 0.5)


class TestByzantineReporter:
    def test_fraction_zero_never_poisons(self):
        reporter = ByzantineReporter(rng(), 0.0)
        report = make_report()
        for _ in range(20):
            assert reporter.corrupt(report) is report
        assert reporter.poisoned == 0

    def test_fraction_one_always_poisons(self):
        reporter = ByzantineReporter(rng(), 1.0)
        for i in range(20):
            poisoned = reporter.corrupt(make_report(i))
            assert poisoned != make_report(i)
        assert reporter.poisoned == 20

    def test_flavours_cover_inflate_understate_garbage(self):
        reporter = ByzantineReporter(rng(11), 1.0)
        inflated = understated = garbage = 0
        for i in range(60):
            out = reporter.corrupt(make_report(i))
            if out.bytes_transferred < 0:
                garbage += 1
            elif out.bytes_transferred == 0:
                understated += 1
            else:
                inflated += 1
        assert inflated and understated and garbage

    def test_validation(self):
        with pytest.raises(ValueError):
            ByzantineReporter(rng(), 1.5)
        with pytest.raises(ValueError):
            ByzantineReporter(rng(), 0.5, magnitude=0.0)


class TestCorruptionLayer:
    def test_none_sides_pass_through(self):
        layer = CorruptionLayer()
        ctx, report = honest(), make_report()
        assert layer.corrupt_context(ctx) is ctx
        assert layer.corrupt_report(report) is report
        assert layer.contexts_corrupted == 0
        assert layer.reports_poisoned == 0

    def test_counters_surface_member_activity(self):
        layer = CorruptionLayer(
            context_corruptor=GarbageCorruptor(rng(1), 1.0),
            report_corruptor=ByzantineReporter(rng(2), 1.0),
        )
        layer.corrupt_context(honest())
        layer.corrupt_report(make_report())
        assert layer.contexts_corrupted == 1
        assert layer.reports_poisoned == 1

    def test_corrupting_source_wraps_backend(self):
        class Backend:
            def __init__(self):
                self.reports = []

            def lookup(self):
                return honest()

            def report(self, report):
                self.reports.append(report)

        backend = Backend()
        layer = CorruptionLayer(
            context_corruptor=AdversarialCorruptor(rng(1), 1.0),
            report_corruptor=ByzantineReporter(rng(2), 1.0),
        )
        source = CorruptingSource(backend, layer)
        assert source.lookup().utilization == 0.0
        source.report(make_report())
        assert backend.reports[0] != make_report()

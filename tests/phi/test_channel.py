"""Tests for the failure-aware control channel (RPCs, retries, breaker)."""

import pytest

from repro.phi.channel import (
    BreakerState,
    ChannelConfig,
    CircuitBreaker,
    ControlChannel,
    RpcError,
    RpcStatus,
)
from repro.phi.context import CongestionContext
from repro.phi.server import ContextServer
from repro.simnet import ServerOutage, Simulator


class FakeBackend:
    """Records protocol calls; always answers."""

    def __init__(self):
        self.lookups = 0
        self.reports = []

    def lookup(self):
        self.lookups += 1
        return CongestionContext.idle()

    def report(self, report):
        self.reports.append(report)


class SeqRng:
    """Deterministic rng stub: random() pops from a list, uniform() is 0."""

    def __init__(self, draws):
        self.draws = list(draws)

    def random(self):
        return self.draws.pop(0) if self.draws else 1.0

    def uniform(self, low, high):
        return low


def make_report():
    from repro.phi.server import ConnectionReport

    return ConnectionReport(
        flow_id=1,
        reported_at=0.0,
        bytes_transferred=1000,
        duration_s=1.0,
        mean_rtt_s=0.16,
        min_rtt_s=0.15,
        loss_indicator=0.0,
    )


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ChannelConfig(latency_s=-1)
        with pytest.raises(ValueError):
            ChannelConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            ChannelConfig(timeout_s=0)
        with pytest.raises(ValueError):
            ChannelConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ChannelConfig(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ChannelConfig(deadline_s=0)

    def test_rng_required_for_loss(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ControlChannel(
                sim, FakeBackend(), config=ChannelConfig(loss_probability=0.1)
            )

    def test_backoff_schedule(self):
        cfg = ChannelConfig(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_max_s=0.3
        )
        assert cfg.backoff_s(0) == pytest.approx(0.1)
        assert cfg.backoff_s(1) == pytest.approx(0.2)
        assert cfg.backoff_s(2) == pytest.approx(0.3)  # capped
        assert cfg.backoff_s(5) == pytest.approx(0.3)


class TestHealthyChannel:
    def test_passthrough_lookup_and_report(self):
        sim = Simulator()
        backend = FakeBackend()
        channel = ControlChannel(sim, backend)
        ctx = channel.lookup()
        assert backend.lookups == 1
        assert ctx.utilization == 0.0
        channel.report(make_report())
        assert len(backend.reports) == 1
        assert channel.stats.successes == 2
        assert channel.stats.failures == 0

    def test_result_accounting(self):
        sim = Simulator()
        channel = ControlChannel(
            sim, FakeBackend(), config=ChannelConfig(latency_s=0.004)
        )
        result = channel.call_lookup()
        assert result.ok and result.attempts == 1
        assert result.elapsed_s == pytest.approx(0.004)

    def test_works_against_real_server(self):
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        channel = ControlChannel(sim, server)
        channel.lookup()
        assert server.active_connections == 1


class TestRetries:
    def test_transient_loss_retried_to_success(self):
        sim = Simulator()
        backend = FakeBackend()
        cfg = ChannelConfig(loss_probability=0.4, max_retries=3)
        # First two draws lose the message, third passes (0.9 >= 0.4).
        channel = ControlChannel(sim, backend, config=cfg, rng=SeqRng([0.1, 0.2, 0.9]))
        result = channel.call_lookup()
        assert result.ok
        assert result.attempts == 3
        assert backend.lookups == 1
        assert channel.stats.retries == 2
        # Two timeouts plus two backoffs plus the final latency.
        expected = 2 * cfg.timeout_s + cfg.backoff_s(0) + cfg.backoff_s(1) + cfg.latency_s
        assert result.elapsed_s == pytest.approx(expected)

    def test_exhausted_retries_fail(self):
        sim = Simulator()
        cfg = ChannelConfig(loss_probability=0.5, max_retries=2, deadline_s=10.0)
        channel = ControlChannel(
            sim, FakeBackend(), config=cfg, rng=SeqRng([0.0, 0.0, 0.0])
        )
        result = channel.call_lookup()
        assert not result.ok
        assert result.status is RpcStatus.TIMEOUT
        assert result.attempts == 3  # initial + 2 retries

    def test_deadline_bounds_total_elapsed(self):
        sim = Simulator()
        cfg = ChannelConfig(
            loss_probability=0.99,
            max_retries=50,
            timeout_s=0.25,
            backoff_base_s=0.05,
            deadline_s=1.0,
        )
        channel = ControlChannel(sim, FakeBackend(), config=cfg, rng=SeqRng([0.0] * 60))
        result = channel.call_lookup()
        assert not result.ok
        assert result.status is RpcStatus.DEADLINE_EXCEEDED
        # Retries stop while a worst-case follow-up still fits the budget.
        assert result.elapsed_s <= cfg.deadline_s
        assert result.attempts < 51

    def test_latency_above_timeout_is_a_timeout(self):
        sim = Simulator()
        cfg = ChannelConfig(latency_s=0.5, timeout_s=0.25, max_retries=0)
        channel = ControlChannel(sim, FakeBackend(), config=cfg)
        result = channel.call_lookup()
        assert result.status is RpcStatus.TIMEOUT

    def test_rpc_error_carries_result(self):
        sim = Simulator()
        cfg = ChannelConfig(max_retries=0)
        channel = ControlChannel(sim, FakeBackend(), config=cfg)
        channel.mark_down()
        with pytest.raises(RpcError) as excinfo:
            channel.lookup()
        assert excinfo.value.result.status is RpcStatus.SERVER_DOWN


class TestOutages:
    def test_marks_nest(self):
        sim = Simulator()
        channel = ControlChannel(sim, FakeBackend())
        channel.mark_down()
        channel.mark_down()
        channel.mark_up()
        assert not channel.server_up
        channel.mark_up()
        assert channel.server_up
        channel.mark_up()  # extra up is a no-op
        assert channel.server_up

    def test_scheduled_outage_window(self):
        sim = Simulator()
        backend = FakeBackend()
        cfg = ChannelConfig(max_retries=0)
        channel = ControlChannel(sim, backend, config=cfg)
        channel.add_outage(1.0, 2.0)
        outcomes = {}
        sim.schedule_at(0.5, lambda: outcomes.update(before=channel.call_lookup().ok))
        sim.schedule_at(2.0, lambda: outcomes.update(during=channel.call_lookup().ok))
        sim.schedule_at(3.5, lambda: outcomes.update(after=channel.call_lookup().ok))
        sim.run()
        assert outcomes == {"before": True, "during": False, "after": True}

    def test_outage_starting_now_takes_effect_immediately(self):
        sim = Simulator()
        channel = ControlChannel(sim, FakeBackend(), config=ChannelConfig(max_retries=0))
        channel.add_outage(0.0, 1.0)
        assert not channel.server_up
        sim.run(until=1.5)
        assert channel.server_up

    def test_server_outage_fault_drives_channel(self):
        sim = Simulator()
        channel = ControlChannel(sim, FakeBackend(), config=ChannelConfig(max_retries=0))
        ServerOutage(sim, channel, start_s=1.0, duration_s=1.0)
        sim.run(until=1.5)
        assert not channel.server_up
        sim.run(until=2.5)
        assert channel.server_up


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        sim = Simulator()
        breaker = CircuitBreaker(lambda: sim.now, failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_count(self):
        sim = Simulator()
        breaker = CircuitBreaker(lambda: sim.now, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        sim = Simulator()
        breaker = CircuitBreaker(
            lambda: sim.now, failure_threshold=1, reset_timeout_s=5.0
        )
        breaker.record_failure()
        assert not breaker.allow()
        sim.schedule(6.0, lambda: None)
        sim.run()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        sim = Simulator()
        breaker = CircuitBreaker(
            lambda: sim.now, failure_threshold=3, reset_timeout_s=5.0
        )
        for _ in range(3):
            breaker.record_failure()
        sim.schedule(6.0, lambda: None)
        sim.run()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # probe fails: straight back to OPEN
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_open_breaker_fails_fast_without_attempts(self):
        sim = Simulator()
        backend = FakeBackend()
        cfg = ChannelConfig(max_retries=0)
        channel = ControlChannel(
            sim,
            backend,
            config=cfg,
            breaker=CircuitBreaker(lambda: sim.now, failure_threshold=2),
        )
        channel.mark_down()
        assert not channel.call_lookup().ok
        assert not channel.call_lookup().ok
        result = channel.call_lookup()  # breaker now open
        assert result.status is RpcStatus.CIRCUIT_OPEN
        assert result.attempts == 0
        assert result.elapsed_s == 0.0
        assert channel.stats.fast_failures == 1
        assert backend.lookups == 0

    def test_breaker_recovers_with_server(self):
        sim = Simulator()
        backend = FakeBackend()
        channel = ControlChannel(
            sim,
            backend,
            config=ChannelConfig(max_retries=0),
            breaker=CircuitBreaker(
                lambda: sim.now, failure_threshold=1, reset_timeout_s=2.0
            ),
        )
        channel.add_outage(0.0, 1.0)
        outcomes = []
        sim.schedule_at(0.5, lambda: outcomes.append(channel.call_lookup().status))
        sim.schedule_at(1.5, lambda: outcomes.append(channel.call_lookup().status))
        sim.schedule_at(3.0, lambda: outcomes.append(channel.call_lookup().status))
        sim.run()
        assert outcomes == [
            RpcStatus.SERVER_DOWN,   # trips the breaker
            RpcStatus.CIRCUIT_OPEN,  # server is back but breaker still open
            RpcStatus.OK,            # half-open probe succeeds
        ]
        assert backend.lookups == 1


class TestBackoffJitter:
    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(backoff_jitter=-0.1)

    def test_jitter_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ControlChannel(
                sim, FakeBackend(), config=ChannelConfig(backoff_jitter=0.25)
            )

    def test_jitter_scales_retry_backoff(self):
        class TopRng(SeqRng):
            def uniform(self, low, high):
                return high

        sim = Simulator()
        cfg = ChannelConfig(
            loss_probability=0.4, max_retries=3, backoff_jitter=0.5
        )
        # Two losses, then success — two jittered backoffs at full swing.
        channel = ControlChannel(
            sim, FakeBackend(), config=cfg, rng=TopRng([0.1, 0.2, 0.9])
        )
        result = channel.call_lookup()
        assert result.ok and result.attempts == 3
        expected = (
            2 * cfg.timeout_s
            + 1.5 * (cfg.backoff_s(0) + cfg.backoff_s(1))
            + cfg.latency_s
        )
        assert result.elapsed_s == pytest.approx(expected)

    def test_zero_draw_matches_unjittered(self):
        """uniform() returning the low end reproduces the plain schedule —
        the jittered channel nests the deterministic one."""
        sim = Simulator()
        cfg = ChannelConfig(
            loss_probability=0.4, max_retries=3, backoff_jitter=0.5
        )
        channel = ControlChannel(
            sim, FakeBackend(), config=cfg, rng=SeqRng([0.1, 0.9])
        )
        result = channel.call_lookup()
        expected = cfg.timeout_s + cfg.backoff_s(0) + cfg.latency_s
        assert result.elapsed_s == pytest.approx(expected)

"""Tests for the resilient context client's degradation discipline."""

import pytest

from repro.phi.channel import ChannelConfig, ControlChannel
from repro.phi.context import CongestionContext, CongestionLevel
from repro.phi.fallback import (
    ContextDecision,
    ResilientContextClient,
    resilient_phi_cubic_factory,
)
from repro.phi.guard import ContextGuard, GuardConfig
from repro.phi.trust import TrustConfig, TrustTracker
from repro.phi.policy import REFERENCE_POLICY
from repro.phi.server import ConnectionReport, ContextServer
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport.cubic import CubicParams
from repro.transport.sink import TcpSink


class FlakySource:
    """A ContextSource whose availability is script-controlled."""

    def __init__(self, context=None):
        self.up = True
        self.context = context or CongestionContext(
            utilization=0.5, queue_delay_s=0.02, competing_senders=4.0
        )
        self.lookups = 0
        self.reports = []

    def lookup(self):
        if not self.up:
            raise ConnectionError("source down")
        self.lookups += 1
        return self.context

    def report(self, report):
        if not self.up:
            raise ConnectionError("source down")
        self.reports.append(report)


def make_report(flow_id=1):
    return ConnectionReport(
        flow_id=flow_id,
        reported_at=0.0,
        bytes_transferred=1000,
        duration_s=1.0,
        mean_rtt_s=0.16,
        min_rtt_s=0.15,
        loss_indicator=0.0,
    )


class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestDecisions:
    def test_fresh_on_success(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock)
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.FRESH
        assert resolved.context is source.context
        assert resolved.coordinated
        assert client.decisions[ContextDecision.FRESH] == 1

    def test_stale_within_ttl(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock, staleness_ttl_s=5.0)
        client.resolve()           # cache at t=0
        source.up = False
        clock.t = 3.0
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.STALE
        assert resolved.context is source.context
        assert resolved.age_s == pytest.approx(3.0)
        assert resolved.coordinated

    def test_fallback_past_ttl(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock, staleness_ttl_s=5.0)
        client.resolve()
        source.up = False
        clock.t = 6.0
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.FALLBACK
        assert resolved.context is None
        assert not resolved.coordinated

    def test_fallback_with_cold_cache(self):
        clock = Clock()
        source = FlakySource()
        source.up = False
        client = ResilientContextClient(source, now=clock)
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.FALLBACK

    def test_recovery_refreshes_cache(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock, staleness_ttl_s=5.0)
        source.up = False
        assert client.resolve().decision is ContextDecision.FALLBACK
        source.up = True
        assert client.resolve().decision is ContextDecision.FRESH
        source.up = False
        clock.t = 4.0
        assert client.resolve().decision is ContextDecision.STALE
        assert client.decision_counts() == {
            "fresh": 1, "stale": 1, "fallback": 1, "distrusted": 0,
        }

    def test_lookup_parity_returns_idle_on_fallback(self):
        clock = Clock()
        clock.t = 7.0
        source = FlakySource()
        source.up = False
        client = ResilientContextClient(source, now=clock)
        ctx = client.lookup()
        assert ctx.utilization == 0.0
        assert ctx.timestamp == pytest.approx(7.0)

    def test_validation(self):
        source = FlakySource()
        with pytest.raises(ValueError):
            ResilientContextClient(source, now=Clock(), staleness_ttl_s=-1)
        with pytest.raises(ValueError):
            ResilientContextClient(source, now=Clock(), max_pending_reports=0)


class TestReportRecovery:
    def test_failed_reports_queue_and_flush(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock)
        source.up = False
        client.report(make_report(1))
        client.report(make_report(2))
        assert client.pending_reports == 2
        assert client.reports_queued == 2
        source.up = True
        client.report(make_report(3))
        assert client.pending_reports == 0
        assert [r.flow_id for r in source.reports] == [1, 2, 3]
        assert client.reports_flushed == 2
        assert client.reports_sent == 3

    def test_successful_lookup_flushes_backlog(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock)
        source.up = False
        client.report(make_report(1))
        source.up = True
        client.resolve()
        assert client.pending_reports == 0
        assert [r.flow_id for r in source.reports] == [1]

    def test_bounded_queue_drops_oldest(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock, max_pending_reports=2)
        source.up = False
        for flow_id in (1, 2, 3):
            client.report(make_report(flow_id))
        assert client.pending_reports == 2
        assert client.reports_dropped == 1
        source.up = True
        client.resolve()
        assert [r.flow_id for r in source.reports] == [2, 3]

    def test_report_stats_parity(self):
        sim = Simulator()
        server = ContextServer(sim, 15e6)
        client = ResilientContextClient(server, now=lambda: sim.now)
        from repro.transport.base import ConnectionStats

        stats = ConnectionStats(flow_id=4)
        stats.start_time = 0.0
        stats.end_time = 1.0
        stats.bytes_goodput = 100
        stats.packets_sent = 1
        client.report_stats(stats)
        assert server.reports_received == 1


class TestResilientFactory:
    def _env(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        return sim, top, spec

    def test_fallback_uses_default_params(self):
        sim, top, spec = self._env()
        source = FlakySource()
        source.up = False
        client = ResilientContextClient(source, now=lambda: sim.now)
        factory = resilient_phi_cubic_factory(
            client, REFERENCE_POLICY, now=lambda: sim.now
        )
        sender = factory(sim, top.senders[0], spec, 50_000, lambda s: None)
        assert sender.params == CubicParams.default()
        assert client.decisions[ContextDecision.FALLBACK] == 1

    def test_fresh_uses_policy_params(self):
        sim, top, spec = self._env()
        source = FlakySource()  # utilization 0.5 -> MODERATE
        client = ResilientContextClient(source, now=lambda: sim.now)
        factory = resilient_phi_cubic_factory(
            client, REFERENCE_POLICY, now=lambda: sim.now
        )
        sender = factory(sim, top.senders[0], spec, 50_000, lambda s: None)
        expected = REFERENCE_POLICY.params_for(source.context)
        assert sender.params == expected

    def test_completed_connection_reports_through_client(self):
        sim, top, spec = self._env()
        server = ContextServer(sim, top.config.bottleneck_bandwidth_bps)
        channel = ControlChannel(sim, server, config=ChannelConfig(max_retries=0))
        client = ResilientContextClient(channel, now=lambda: sim.now)
        factory = resilient_phi_cubic_factory(
            client, REFERENCE_POLICY, now=lambda: sim.now
        )
        done = []
        sender = factory(sim, top.senders[0], spec, 30_000, done.append)
        sender.start()
        sim.run(until=30.0)
        assert done
        assert server.reports_received == 1
        assert server.active_connections == 0


class TestModeTimeAccounting:
    def test_mode_times_charge_elapsed_to_prior_mode(self):
        source, clock = FlakySource(), Clock()
        client = ResilientContextClient(source, now=clock, staleness_ttl_s=10.0)
        client.resolve()                      # FRESH at t=0
        clock.t = 4.0
        source.up = False
        client.resolve()                      # STALE at t=4: 4 s of FRESH
        clock.t = 9.0
        assert client.mode_times() == {
            "fresh": 4.0, "stale": 5.0, "fallback": 0.0, "distrusted": 0.0,
        }
        # The closed-out ledger excludes the still-open STALE interval.
        assert client.mode_time_s["stale"] == 0.0

    def test_no_mode_before_first_lookup(self):
        client = ResilientContextClient(FlakySource(), now=Clock())
        assert client.mode_times() == {
            "fresh": 0.0, "stale": 0.0, "fallback": 0.0, "distrusted": 0.0,
        }

    def test_telemetry_counters(self):
        from repro import telemetry

        source, clock = FlakySource(), Clock()
        with telemetry.use() as tele:
            client = ResilientContextClient(
                source, now=clock, staleness_ttl_s=10.0
            )
            client.resolve()                  # fresh
            clock.t = 3.0
            source.up = False
            client.resolve()                  # stale; 3 s charged to fresh
            clock.t = 5.0
            client.resolve()                  # stale; 2 s charged to stale
            counters = tele.registry.snapshot()["counters"]
        assert counters["phi.context_decisions{decision=fresh}"] == 1.0
        assert counters["phi.context_decisions{decision=stale}"] == 2.0
        assert counters["phi.mode_time_s{mode=fresh}"] == 3.0
        assert counters["phi.mode_time_s{mode=stale}"] == 2.0


class TestNarrowedExceptions:
    """Satellite: only transport failures are masked, and they are counted."""

    def test_transport_errors_counted_by_type(self):
        clock = Clock()
        source = FlakySource()
        client = ResilientContextClient(source, now=clock)
        source.up = False
        client.resolve()
        client.report(make_report(1))
        assert client.transport_errors == {"ConnectionError": 2}

    def test_programming_bug_propagates_from_resolve(self):
        class BuggySource:
            def lookup(self):
                raise KeyError("not a transport problem")

        client = ResilientContextClient(BuggySource(), now=Clock())
        with pytest.raises(KeyError):
            client.resolve()

    def test_programming_bug_propagates_from_report(self):
        class BuggySource:
            def lookup(self):
                return CongestionContext.idle()

            def report(self, report):
                raise TypeError("bad callback wiring")

        client = ResilientContextClient(BuggySource(), now=Clock())
        with pytest.raises(TypeError):
            client.report(make_report(1))

    def test_rpc_error_still_masked(self):
        from types import SimpleNamespace

        from repro.phi.channel import RpcError, RpcStatus

        class RpcFailingSource:
            def lookup(self):
                raise RpcError(SimpleNamespace(status=RpcStatus.TIMEOUT))

        client = ResilientContextClient(RpcFailingSource(), now=Clock())
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.FALLBACK
        assert client.transport_errors == {"RpcError": 1}


class TestGuardIntegration:
    def test_guard_rejection_degrades_like_rpc_failure(self):
        clock = Clock()
        source = FlakySource()
        guard = ContextGuard(GuardConfig(capacity_mbps=15.0))
        client = ResilientContextClient(source, now=clock, guard=guard)
        # fair_share inconsistent with capacity/n: 15/4 = 3.75, claim 9.
        source.context = CongestionContext(
            utilization=0.5, queue_delay_s=0.02, competing_senders=4.0,
            fair_share_mbps=9.0,
        )
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.FALLBACK
        assert guard.rejected_count == 1
        assert client.transport_errors == {}

    def test_guard_rejection_serves_stale_cache(self):
        clock = Clock()
        source = FlakySource()
        guard = ContextGuard()
        client = ResilientContextClient(
            source, now=clock, guard=guard, staleness_ttl_s=10.0
        )
        good = source.context
        assert client.resolve().decision is ContextDecision.FRESH
        clock.t = 2.0
        from repro.phi.corruption import raw_context

        # Bypasses __post_init__ the way a wire deserializer would.
        source.context = raw_context(0.5, 0.02, -3.0, timestamp=2.0)
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.STALE
        assert resolved.context is good

    def test_rejected_context_never_cached(self):
        clock = Clock()
        source = FlakySource()
        guard = ContextGuard()
        client = ResilientContextClient(source, now=clock, guard=guard)
        from repro.phi.corruption import raw_context

        source.context = raw_context(float("nan"), 0.0, 1.0)
        assert client.resolve().decision is ContextDecision.FALLBACK
        source.up = False
        # Nothing in the cache: degradation skips STALE entirely.
        assert client.resolve().decision is ContextDecision.FALLBACK


class TestDistrust:
    def _distrusting_client(self, source, clock):
        trust = TrustTracker(TrustConfig(min_samples=1, ewma_alpha=1.0))
        client = ResilientContextClient(source, now=clock, trust=trust)
        return client, trust

    def test_distrusted_lookup_carries_shadow_not_context(self):
        clock = Clock()
        source = FlakySource()
        client, trust = self._distrusting_client(source, clock)
        trust.record(CongestionLevel.LOW, CongestionLevel.SEVERE)  # score -> 0
        assert trust.distrusted
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.DISTRUSTED
        assert resolved.context is None
        assert resolved.shadow is source.context
        assert not resolved.coordinated

    def test_shadow_scoring_restores_trust(self):
        clock = Clock()
        source = FlakySource()
        client, trust = self._distrusting_client(source, clock)
        trust.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        resolved = client.resolve()
        assert resolved.decision is ContextDecision.DISTRUSTED
        # The shadow prediction turns out accurate -> trust restored.
        predicted = resolved.shadow.level()
        trust.record(predicted, predicted)
        assert not trust.distrusted
        assert client.resolve().decision is ContextDecision.FRESH

    def test_mode_times_across_fresh_distrusted_fresh(self):
        clock = Clock()
        source = FlakySource()
        client, trust = self._distrusting_client(source, clock)
        assert client.resolve().decision is ContextDecision.FRESH
        clock.t = 3.0
        trust.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        assert client.resolve().decision is ContextDecision.DISTRUSTED
        clock.t = 8.0
        level = source.context.level()
        trust.record(level, level)
        assert client.resolve().decision is ContextDecision.FRESH
        clock.t = 10.0
        assert client.mode_times() == {
            "fresh": 5.0, "stale": 0.0, "fallback": 0.0, "distrusted": 5.0,
        }
        assert client.decision_counts() == {
            "fresh": 2, "stale": 0, "fallback": 0, "distrusted": 1,
        }

    def test_observe_outcome_scores_fresh_and_shadow(self):
        from repro.transport.base import ConnectionStats

        clock = Clock()
        source = FlakySource()
        trust = TrustTracker(TrustConfig(min_samples=100))
        client = ResilientContextClient(source, now=clock, trust=trust)
        resolved = client.resolve()
        stats = ConnectionStats(flow_id=1)
        stats.start_time, stats.end_time = 0.0, 1.0
        stats.packets_sent = 10
        client.observe_outcome(resolved, stats)
        assert trust.samples == 1
        # FALLBACK resolutions carry no prediction: no-op.
        source.up = False
        clock.t = 100.0  # past the staleness TTL, so no STALE answer
        client.observe_outcome(client.resolve(), stats)
        assert trust.samples == 1

    def test_distrusted_lookup_still_flushes_reports(self):
        clock = Clock()
        source = FlakySource()
        client, trust = self._distrusting_client(source, clock)
        source.up = False
        client.report(make_report(1))
        assert client.pending_reports == 1
        source.up = True
        trust.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        assert client.resolve().decision is ContextDecision.DISTRUSTED
        assert client.pending_reports == 0
        assert [r.flow_id for r in source.reports] == [1]

"""Tests for secure cross-provider aggregation (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi.aggregation import (
    FIELD_PRIME,
    SecureCongestionAggregation,
    decode,
    encode,
    make_shares,
)


class TestEncoding:
    def test_round_trip(self):
        assert decode(encode(0.734512)) == pytest.approx(0.734512, abs=1e-6)

    def test_zero(self):
        assert decode(encode(0.0)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode(-0.1)

    def test_huge_rejected(self):
        with pytest.raises(ValueError):
            encode(1e18)

    @given(st.floats(min_value=0, max_value=1_000_000))
    @settings(max_examples=100)
    def test_round_trip_property(self, value):
        assert decode(encode(value)) == pytest.approx(value, abs=1e-6)


class TestShares:
    def test_shares_sum_to_value(self):
        rng = np.random.default_rng(0)
        shares = make_shares(0.85, 3, rng)
        total = sum(shares) % FIELD_PRIME
        assert decode(total) == pytest.approx(0.85, abs=1e-6)

    def test_minimum_two_shares(self):
        with pytest.raises(ValueError):
            make_shares(0.5, 1, np.random.default_rng(0))

    def test_single_share_reveals_nothing(self):
        # The first share is uniform, independent of the secret: the same
        # RNG stream produces the same first share for different secrets.
        a = make_shares(0.1, 2, np.random.default_rng(7))
        b = make_shares(0.9, 2, np.random.default_rng(7))
        assert a[0] == b[0]
        assert a[1] != b[1]

    @given(
        st.floats(min_value=0, max_value=1),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60)
    def test_any_share_count_reconstructs(self, value, n):
        shares = make_shares(value, n, np.random.default_rng(3))
        assert decode(sum(shares) % FIELD_PRIME) == pytest.approx(value, abs=1e-6)


class TestSecureAggregation:
    def test_mean_revealed_exactly(self):
        protocol = SecureCongestionAggregation(
            ["agg-1", "agg-2", "agg-3"], np.random.default_rng(1)
        )
        levels = {"netflix": 0.8, "youtube": 0.6, "cloud-x": 0.4}
        for provider, level in levels.items():
            protocol.submit(provider, level)
        assert protocol.reveal_mean() == pytest.approx(0.6, abs=1e-6)
        assert protocol.round_size == 3

    def test_individual_aggregator_sees_noise(self):
        rng = np.random.default_rng(2)
        protocol = SecureCongestionAggregation(["a", "b"], rng)
        protocol.submit("p1", 0.5)
        # A single aggregator's partial decodes to an arbitrary field
        # element, not the secret.
        partial = protocol.aggregators[0].partial_sum
        assert decode(partial) != pytest.approx(0.5, abs=1e-3)

    def test_requires_two_aggregators(self):
        with pytest.raises(ValueError):
            SecureCongestionAggregation(["solo"], np.random.default_rng(0))

    def test_duplicate_aggregators_rejected(self):
        with pytest.raises(ValueError):
            SecureCongestionAggregation(["a", "a"], np.random.default_rng(0))

    def test_empty_round_rejected(self):
        protocol = SecureCongestionAggregation(["a", "b"], np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            protocol.reveal_mean()

    def test_contribution_counts(self):
        protocol = SecureCongestionAggregation(["a", "b"], np.random.default_rng(0))
        protocol.submit("p1", 0.2)
        protocol.submit("p2", 0.4)
        assert all(a.contributions == 2 for a in protocol.aggregators)

"""Tests for outcome-driven trust tracking."""

import pytest

from repro.phi.context import CongestionLevel
from repro.phi.trust import (
    LOSS_RATE_THRESHOLDS,
    TrustConfig,
    TrustTracker,
    observed_level,
    observed_level_from_stats,
)
from repro.transport.base import ConnectionStats


class TestObservedLevel:
    def test_quiet_connection_is_low(self):
        assert observed_level(0.0, 0.0) is CongestionLevel.LOW

    def test_loss_alone_escalates(self):
        assert observed_level(0.0, 0.03) is CongestionLevel.HIGH
        assert observed_level(0.0, 0.2) is CongestionLevel.SEVERE

    def test_queueing_alone_escalates(self):
        assert observed_level(0.06, 0.0) is CongestionLevel.HIGH

    def test_worst_of_wins(self):
        assert observed_level(0.3, 0.001) is CongestionLevel.SEVERE

    def test_negative_inputs_clamped(self):
        assert observed_level(-1.0, -1.0) is CongestionLevel.LOW

    def test_loss_thresholds_ordered(self):
        assert list(LOSS_RATE_THRESHOLDS) == sorted(LOSS_RATE_THRESHOLDS)

    def test_from_stats(self):
        stats = ConnectionStats(flow_id=1)
        stats.start_time, stats.end_time = 0.0, 1.0
        stats.packets_sent = 100
        stats.retransmits = 10  # 10% loss -> SEVERE
        assert observed_level_from_stats(stats) is CongestionLevel.SEVERE


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TrustConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            TrustConfig(adjacent_credit=1.0, exact_credit=0.5)
        with pytest.raises(ValueError):
            TrustConfig(distrust_below=0.8, restore_above=0.7)
        with pytest.raises(ValueError):
            TrustConfig(min_samples=0)


class TestTrustTracker:
    def test_starts_fully_trusting(self):
        tracker = TrustTracker()
        assert tracker.score == 1.0
        assert not tracker.distrusted

    def test_exact_matches_sustain_trust(self):
        tracker = TrustTracker()
        for _ in range(50):
            tracker.record(CongestionLevel.MODERATE, CongestionLevel.MODERATE)
        assert tracker.score == pytest.approx(1.0)
        assert not tracker.distrusted

    def test_adjacent_miss_is_cheap_two_level_miss_is_not(self):
        cfg = TrustConfig(ewma_alpha=1.0, min_samples=100)
        tracker = TrustTracker(cfg)
        tracker.record(CongestionLevel.LOW, CongestionLevel.MODERATE)
        assert tracker.score == pytest.approx(cfg.adjacent_credit)
        tracker.record(CongestionLevel.LOW, CongestionLevel.HIGH)
        assert tracker.score == pytest.approx(0.0)
        assert tracker.mispredictions == 1

    def test_sustained_lies_trip_distrust(self):
        tracker = TrustTracker(TrustConfig(min_samples=8))
        for _ in range(30):
            tracker.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        assert tracker.distrusted
        assert tracker.distrust_entries == 1

    def test_warmup_blocks_early_verdict(self):
        tracker = TrustTracker(TrustConfig(ewma_alpha=1.0, min_samples=8))
        for _ in range(7):
            tracker.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        assert not tracker.distrusted  # score is 0 but warm-up holds

    def test_hysteresis_restores_only_after_sustained_accuracy(self):
        cfg = TrustConfig(
            ewma_alpha=0.5, min_samples=1, distrust_below=0.4, restore_above=0.7
        )
        tracker = TrustTracker(cfg)
        tracker.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        tracker.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
        assert tracker.distrusted
        # One good outcome: 0.25 -> 0.625, still below restore_above.
        tracker.record(CongestionLevel.LOW, CongestionLevel.LOW)
        assert tracker.distrusted
        tracker.record(CongestionLevel.LOW, CongestionLevel.LOW)
        assert not tracker.distrusted
        assert tracker.restorations == 1

    def test_band_prevents_flapping(self):
        """A score oscillating inside the band never toggles the state."""
        cfg = TrustConfig(
            ewma_alpha=0.2, min_samples=1, distrust_below=0.3, restore_above=0.8
        )
        tracker = TrustTracker(cfg)
        for _ in range(100):
            tracker.record(CongestionLevel.LOW, CongestionLevel.MODERATE)
        # Adjacent credit 0.6 sits inside (0.3, 0.8]: trusted throughout.
        assert not tracker.distrusted
        assert tracker.distrust_entries == 0

    def test_record_outcome_from_stats(self):
        tracker = TrustTracker(TrustConfig(ewma_alpha=1.0, min_samples=1))
        stats = ConnectionStats(flow_id=1)
        stats.start_time, stats.end_time = 0.0, 1.0
        stats.packets_sent = 100
        stats.retransmits = 10
        tracker.record_outcome(CongestionLevel.LOW, stats)
        assert tracker.score == pytest.approx(0.0)

    def test_telemetry(self):
        from repro import telemetry

        with telemetry.use() as tele:
            tracker = TrustTracker(TrustConfig(ewma_alpha=1.0, min_samples=1))
            tracker.record(CongestionLevel.LOW, CongestionLevel.SEVERE)
            snapshot = tele.registry.snapshot()
        assert snapshot["gauges"]["phi.trust_score"]["value"] == 0.0
        assert (
            snapshot["counters"]["phi.trust_transitions{to_state=distrusted}"]
            == 1.0
        )

"""Direct tests for breaker state edges, ChannelStats, and RPC telemetry."""

import pytest

from repro import telemetry
from repro.phi.channel import (
    BreakerState,
    ChannelConfig,
    ChannelStats,
    CircuitBreaker,
    ControlChannel,
    RpcResult,
    RpcStatus,
)
from repro.phi.context import CongestionContext
from repro.simnet import Simulator


class _Clock:
    """Manually advanced wall clock for driving the breaker."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _tripped_breaker(clock, threshold=3, reset=10.0):
    breaker = CircuitBreaker(
        clock, failure_threshold=threshold, reset_timeout_s=reset
    )
    for _ in range(threshold):
        breaker.record_failure()
    return breaker


class TestCircuitBreakerEdges:
    def test_closed_to_open_needs_consecutive_failures(self):
        clock = _Clock()
        breaker = CircuitBreaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_open_decays_to_half_open_after_cooldown(self):
        clock = _Clock()
        breaker = _tripped_breaker(clock, reset=10.0)
        clock.t = 9.999
        assert breaker.state is BreakerState.OPEN
        clock.t = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()

    def test_half_open_probe_success_closes(self):
        clock = _Clock()
        breaker = _tripped_breaker(clock)
        clock.t = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens_and_counts_a_trip(self):
        clock = _Clock()
        breaker = _tripped_breaker(clock)
        clock.t = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # one failure suffices in HALF_OPEN
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        # Cool-down restarts from the re-open instant.
        clock.t = 19.0
        assert breaker.state is BreakerState.OPEN
        clock.t = 20.0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_validation(self):
        clock = _Clock()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, reset_timeout_s=0.0)

    def test_transition_counters(self):
        clock = _Clock()
        with telemetry.use() as tele:
            breaker = _tripped_breaker(clock)          # closed -> open
            clock.t = 10.0
            assert breaker.state is BreakerState.HALF_OPEN  # open -> half_open
            breaker.record_failure()                   # half_open -> open
            clock.t = 20.0
            assert breaker.state is BreakerState.HALF_OPEN  # open -> half_open
            breaker.record_success()                   # half_open -> closed
            counters = tele.registry.snapshot()["counters"]
        def edge(src, dst):
            return counters.get(
                f"phi.breaker_transitions{{from_state={src},to_state={dst}}}", 0.0
            )
        assert edge("closed", "open") == 1.0
        assert edge("open", "half_open") == 2.0
        assert edge("half_open", "open") == 1.0
        assert edge("half_open", "closed") == 1.0

    def test_no_counter_for_noop_transition(self):
        clock = _Clock()
        with telemetry.use() as tele:
            breaker = CircuitBreaker(clock, failure_threshold=3)
            breaker.record_success()  # CLOSED -> CLOSED: not an edge
            assert tele.registry.snapshot()["counters"] == {}
            assert breaker.state is BreakerState.CLOSED


class TestChannelStats:
    def test_success_accounting(self):
        stats = ChannelStats()
        stats.record(RpcResult(RpcStatus.OK, attempts=1, elapsed_s=0.005))
        stats.record(RpcResult(RpcStatus.OK, attempts=3, elapsed_s=0.105))
        assert stats.calls == 2
        assert stats.successes == 2
        assert stats.failures == 0
        assert stats.attempts == 4
        assert stats.retries == 2
        assert stats.rpc_time_s == pytest.approx(0.110)
        assert stats.by_status == {"ok": 2}

    def test_failure_accounting_by_status(self):
        stats = ChannelStats()
        stats.record(RpcResult(RpcStatus.TIMEOUT, attempts=4, elapsed_s=1.0))
        stats.record(RpcResult(RpcStatus.SERVER_DOWN, attempts=2, elapsed_s=0.5))
        stats.record(RpcResult(RpcStatus.CIRCUIT_OPEN, attempts=0, elapsed_s=0.0))
        assert stats.calls == 3
        assert stats.successes == 0
        assert stats.failures == 3
        assert stats.fast_failures == 1  # only the breaker rejection
        assert stats.attempts == 6
        assert stats.retries == 3 + 1
        assert stats.by_status == {"timeout": 1, "server_down": 1, "circuit_open": 1}


class _Backend:
    def __init__(self) -> None:
        self.lookups = 0

    def lookup(self):
        self.lookups += 1
        return CongestionContext.idle()


class TestChannelTelemetry:
    def _channel(self, **config_kwargs):
        sim = Simulator()
        backend = _Backend()
        channel = ControlChannel(
            sim, backend, config=ChannelConfig(**config_kwargs)
        )
        return sim, channel

    def test_rpc_metrics_for_mixed_outcomes(self):
        with telemetry.use() as tele:
            sim, channel = self._channel(max_retries=1, timeout_s=0.1)
            channel.call_lookup()  # ok
            channel.mark_down()
            channel.call_lookup()  # server_down after 2 attempts
            snapshot = tele.registry.snapshot()
        counters = snapshot["counters"]
        assert counters["phi.rpc_calls{op=lookup,status=ok}"] == 1.0
        assert counters["phi.rpc_calls{op=lookup,status=server_down}"] == 1.0
        assert counters["phi.rpc_retries{op=lookup}"] == 1.0
        histogram = snapshot["histograms"]["phi.rpc_latency_s{op=lookup}"]
        assert histogram["count"] == 2
        # Failure events land in the trace with both clocks.
        failures = [
            r for r in tele.tracer.records() if r["name"] == "phi.rpc_failure"
        ]
        assert len(failures) == 1
        assert failures[0]["fields"]["status"] == "server_down"
        assert failures[0]["sim_time"] == sim.now

    def test_channel_works_with_telemetry_disabled(self):
        assert not telemetry.session().enabled
        _, channel = self._channel()
        assert channel.call_lookup().ok
        assert channel.stats.calls == 1

"""Tests for the congestion context and level discretization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi.context import (
    CongestionContext,
    CongestionLevel,
)


class TestCongestionContext:
    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionContext(utilization=1.5, queue_delay_s=0, competing_senders=0)
        with pytest.raises(ValueError):
            CongestionContext(utilization=0.5, queue_delay_s=-1, competing_senders=0)
        with pytest.raises(ValueError):
            CongestionContext(utilization=0.5, queue_delay_s=0, competing_senders=-1)

    def test_idle_context(self):
        ctx = CongestionContext.idle(timestamp=3.0)
        assert ctx.level() is CongestionLevel.LOW
        assert ctx.timestamp == 3.0

    def test_low_utilization_level(self):
        ctx = CongestionContext(utilization=0.2, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.LOW

    def test_moderate_level(self):
        ctx = CongestionContext(utilization=0.5, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.MODERATE

    def test_high_level(self):
        ctx = CongestionContext(utilization=0.8, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.HIGH

    def test_severe_level(self):
        ctx = CongestionContext(utilization=0.95, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.SEVERE

    def test_queue_delay_escalates_level(self):
        # Low utilization but a deep queue still means congestion.
        ctx = CongestionContext(
            utilization=0.1, queue_delay_s=0.3, competing_senders=1
        )
        assert ctx.level() is CongestionLevel.SEVERE

    def test_worst_metric_wins(self):
        ctx = CongestionContext(
            utilization=0.7, queue_delay_s=0.001, competing_senders=1
        )
        assert ctx.level() is CongestionLevel.HIGH

    def test_staleness(self):
        ctx = CongestionContext(0.1, 0.0, 0, timestamp=10.0)
        assert not ctx.is_stale(now=12.0, max_age_s=5.0)
        assert ctx.is_stale(now=20.0, max_age_s=5.0)

    def test_level_ordering(self):
        assert CongestionLevel.LOW.rank < CongestionLevel.MODERATE.rank
        assert CongestionLevel.MODERATE.rank < CongestionLevel.HIGH.rank
        assert CongestionLevel.HIGH.rank < CongestionLevel.SEVERE.rank

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=100)
    def test_level_total_and_monotone_in_utilization(self, u, q, n):
        ctx = CongestionContext(u, q, n)
        level = ctx.level()
        assert level in CongestionLevel
        # Raising utilization never lowers the level.
        higher = CongestionContext(min(1.0, u + 0.3), q, n)
        assert higher.level().rank >= level.rank

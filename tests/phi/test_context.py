"""Tests for the congestion context and level discretization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi.context import (
    CongestionContext,
    CongestionLevel,
)


class TestCongestionContext:
    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionContext(utilization=1.5, queue_delay_s=0, competing_senders=0)
        with pytest.raises(ValueError):
            CongestionContext(utilization=0.5, queue_delay_s=-1, competing_senders=0)
        with pytest.raises(ValueError):
            CongestionContext(utilization=0.5, queue_delay_s=0, competing_senders=-1)

    def test_idle_context(self):
        ctx = CongestionContext.idle(timestamp=3.0)
        assert ctx.level() is CongestionLevel.LOW
        assert ctx.timestamp == 3.0

    def test_low_utilization_level(self):
        ctx = CongestionContext(utilization=0.2, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.LOW

    def test_moderate_level(self):
        ctx = CongestionContext(utilization=0.5, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.MODERATE

    def test_high_level(self):
        ctx = CongestionContext(utilization=0.8, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.HIGH

    def test_severe_level(self):
        ctx = CongestionContext(utilization=0.95, queue_delay_s=0.0, competing_senders=1)
        assert ctx.level() is CongestionLevel.SEVERE

    def test_queue_delay_escalates_level(self):
        # Low utilization but a deep queue still means congestion.
        ctx = CongestionContext(
            utilization=0.1, queue_delay_s=0.3, competing_senders=1
        )
        assert ctx.level() is CongestionLevel.SEVERE

    def test_worst_metric_wins(self):
        ctx = CongestionContext(
            utilization=0.7, queue_delay_s=0.001, competing_senders=1
        )
        assert ctx.level() is CongestionLevel.HIGH

    def test_staleness(self):
        ctx = CongestionContext(0.1, 0.0, 0, timestamp=10.0)
        assert not ctx.is_stale(now=12.0, max_age_s=5.0)
        assert ctx.is_stale(now=20.0, max_age_s=5.0)

    def test_level_ordering(self):
        assert CongestionLevel.LOW.rank < CongestionLevel.MODERATE.rank
        assert CongestionLevel.MODERATE.rank < CongestionLevel.HIGH.rank
        assert CongestionLevel.HIGH.rank < CongestionLevel.SEVERE.rank

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=100)
    def test_level_total_and_monotone_in_utilization(self, u, q, n):
        ctx = CongestionContext(u, q, n)
        level = ctx.level()
        assert level in CongestionLevel
        # Raising utilization never lowers the level.
        higher = CongestionContext(min(1.0, u + 0.3), q, n)
        assert higher.level().rank >= level.rank


class TestNonFiniteRejection:
    """Satellite: NaN/inf slipped past the old `< 0`-style range checks."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    @pytest.mark.parametrize(
        "field",
        ["utilization", "queue_delay_s", "competing_senders", "timestamp",
         "fair_share_mbps"],
    )
    def test_every_field_rejects_non_finite(self, field, bad):
        fields = dict(
            utilization=0.5, queue_delay_s=0.01, competing_senders=2.0,
            timestamp=0.0, fair_share_mbps=4.0,
        )
        fields[field] = bad
        with pytest.raises(ValueError, match="must be finite"):
            CongestionContext(**fields)

    def test_none_fair_share_still_allowed(self):
        ctx = CongestionContext(
            utilization=0.5, queue_delay_s=0.01, competing_senders=2.0,
        )
        assert ctx.fair_share_mbps is None


class TestBucketBoundaries:
    """Exact-threshold semantics: `_bucket` uses strict `<` (a value AT an
    ascending threshold belongs to the next level up), `_bucket_descending`
    uses strict `>` (a fair share AT a threshold is already congested)."""

    def _ctx(self, u=0.0, q=0.0, n=1.0, fair=None):
        return CongestionContext(
            utilization=u, queue_delay_s=q, competing_senders=n,
            fair_share_mbps=fair,
        )

    @pytest.mark.parametrize("u, expected", [
        (0.35, CongestionLevel.MODERATE),   # at threshold: escalates
        (0.3499999, CongestionLevel.LOW),   # just below: stays
        (0.65, CongestionLevel.HIGH),
        (0.6499999, CongestionLevel.MODERATE),
        (0.90, CongestionLevel.SEVERE),
        (0.8999999, CongestionLevel.HIGH),
    ])
    def test_utilization_thresholds(self, u, expected):
        assert self._ctx(u=u).level() is expected

    @pytest.mark.parametrize("q, expected", [
        (0.010, CongestionLevel.MODERATE),
        (0.00999, CongestionLevel.LOW),
        (0.050, CongestionLevel.HIGH),
        (0.04999, CongestionLevel.MODERATE),
        (0.200, CongestionLevel.SEVERE),
        (0.19999, CongestionLevel.HIGH),
    ])
    def test_queue_delay_thresholds(self, q, expected):
        assert self._ctx(q=q).level() is expected

    @pytest.mark.parametrize("fair, expected", [
        # Descending buckets: a value exactly AT a threshold fails the
        # strict `>` test, so it lands one level more congested.
        (8.0, CongestionLevel.MODERATE),
        (8.0000001, CongestionLevel.LOW),
        (2.0, CongestionLevel.HIGH),
        (2.0000001, CongestionLevel.MODERATE),
        (0.5, CongestionLevel.SEVERE),
        (0.5000001, CongestionLevel.HIGH),
    ])
    def test_fair_share_thresholds(self, fair, expected):
        assert self._ctx(fair=fair).level() is expected

    def test_threshold_constants_are_ordered(self):
        from repro.phi.context import (
            FAIR_SHARE_THRESHOLDS_MBPS,
            QUEUE_DELAY_THRESHOLDS,
            UTILIZATION_THRESHOLDS,
        )

        assert list(UTILIZATION_THRESHOLDS) == sorted(UTILIZATION_THRESHOLDS)
        assert list(QUEUE_DELAY_THRESHOLDS) == sorted(QUEUE_DELAY_THRESHOLDS)
        assert list(FAIR_SHARE_THRESHOLDS_MBPS) == sorted(
            FAIR_SHARE_THRESHOLDS_MBPS, reverse=True
        )

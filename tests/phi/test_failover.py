"""Tests for client-side replica failover (health, suspension, probation)."""

import pytest

from repro import telemetry
from repro.phi.channel import (
    ChannelConfig,
    ControlChannel,
    RpcError,
    RpcStatus,
)
from repro.phi.context import CongestionContext
from repro.phi.failover import (
    FailoverChannel,
    FailoverConfig,
)
from repro.phi.server import ConnectionReport
from repro.simnet import Simulator


class FakeBackend:
    """Records protocol calls; can be told to refuse."""

    def __init__(self):
        self.lookups = 0
        self.reports = []
        self.refuse = None  # exception instance to raise, or None

    def lookup(self):
        if self.refuse is not None:
            raise self.refuse
        self.lookups += 1
        return CongestionContext.idle()

    def report(self, report):
        if self.refuse is not None:
            raise self.refuse
        self.reports.append(report)


class ZeroRng:
    def uniform(self, low, high):
        return low


def make_report():
    return ConnectionReport(
        flow_id=1,
        reported_at=0.0,
        bytes_transferred=1000,
        duration_s=1.0,
        mean_rtt_s=0.16,
        min_rtt_s=0.15,
        loss_indicator=0.0,
    )


def make_stack(sim, n=3, fo_config=None, **channel_kwargs):
    backends = [FakeBackend() for _ in range(n)]
    channels = [
        ControlChannel(sim, backend, config=ChannelConfig(), **channel_kwargs)
        for backend in backends
    ]
    failover = FailoverChannel(
        sim,
        channels,
        rng=ZeroRng(),
        config=fo_config or FailoverConfig(),
    )
    return backends, channels, failover


class TestConstruction:
    def test_needs_channels(self):
        with pytest.raises(ValueError):
            FailoverChannel(Simulator(), [], rng=ZeroRng())

    def test_jitter_requires_rng(self):
        sim = Simulator()
        channel = ControlChannel(sim, FakeBackend())
        with pytest.raises(ValueError):
            FailoverChannel(sim, [channel])  # default config jitters
        # Jitter disabled: no rng needed.
        FailoverChannel(
            sim, [channel], config=FailoverConfig(suspend_jitter=0.0)
        )

    def test_preference_must_be_permutation(self):
        sim = Simulator()
        channels = [ControlChannel(sim, FakeBackend()) for _ in range(2)]
        with pytest.raises(ValueError):
            FailoverChannel(sim, channels, rng=ZeroRng(), preference=[0, 0])
        failover = FailoverChannel(
            sim, channels, rng=ZeroRng(), preference=[1, 0]
        )
        assert failover.current_replica == 1


class TestFailover:
    def test_primary_serves_when_healthy(self):
        sim = Simulator()
        backends, _, failover = make_stack(sim)
        result = failover.call_lookup()
        assert result.ok
        assert backends[0].lookups == 1
        assert backends[1].lookups == 0
        assert failover.stats.failovers == 0

    def test_fails_over_when_primary_down(self):
        sim = Simulator()
        backends, channels, failover = make_stack(sim)
        channels[0].mark_down()
        result = failover.call_lookup()
        assert result.ok
        assert backends[1].lookups == 1
        assert failover.stats.failovers == 1
        # Attempts include the primary's burned retries.
        assert result.attempts > 1
        assert failover.health(0).suspended_until > sim.now

    def test_backend_refusal_is_a_replica_failure(self):
        sim = Simulator()
        backends, _, failover = make_stack(sim)
        backends[0].refuse = ConnectionError("no quorum")
        result = failover.call_lookup()
        assert result.ok
        assert backends[1].lookups == 1
        assert failover.stats.failovers == 1

    def test_all_down_returns_last_status(self):
        sim = Simulator()
        _, channels, failover = make_stack(sim, n=2)
        for channel in channels:
            channel.mark_down()
        result = failover.call_lookup()
        assert not result.ok
        assert result.status is RpcStatus.SERVER_DOWN
        with pytest.raises(RpcError):
            failover.lookup()

    def test_all_suspended_fast_fails(self):
        sim = Simulator()
        _, channels, failover = make_stack(sim, n=2)
        for channel in channels:
            channel.mark_down()
        failover.call_lookup()  # suspends both
        result = failover.call_lookup()
        assert result.status is RpcStatus.CIRCUIT_OPEN
        assert result.attempts == 0
        assert failover.stats.fast_failures == 1

    def test_report_failover_delivers_to_survivor(self):
        sim = Simulator()
        backends, channels, failover = make_stack(sim)
        channels[0].mark_down()
        failover.report(make_report())
        assert len(backends[1].reports) == 1


class TestStickinessAndProbation:
    def test_sticky_until_failure_then_sticky_on_survivor(self):
        sim = Simulator()
        backends, channels, failover = make_stack(sim)
        channels[0].mark_down()
        failover.call_lookup()
        assert failover.current_replica == 1
        channels[0].mark_up()
        # Replica 0 healed but suspended: calls stay on 1.
        failover.call_lookup()
        assert backends[1].lookups == 2
        assert backends[0].lookups == 0

    def test_probation_blocks_immediate_reselection(self):
        sim = Simulator()
        config = FailoverConfig(
            suspend_base_s=0.5, suspend_jitter=0.0, probation_successes=2
        )
        backends, channels, failover = make_stack(sim, fo_config=config)
        channels[0].mark_down()
        failover.call_lookup()          # fail over to 1, suspend 0
        channels[0].mark_up()

        def probe():
            return failover.call_lookup()

        # After the suspension lapses, 0 is probed (best health among
        # non-probation? no: probation sorts it last) — current stays 1
        # until 0 has served its probation successes.
        sim.schedule_at(1.0, probe)
        sim.schedule_at(1.1, probe)
        sim.run()
        assert failover.current_replica == 1
        assert failover.health(0).probation_left == 2

    def test_suspension_window_grows_and_caps(self):
        sim = Simulator()
        config = FailoverConfig(
            suspend_base_s=1.0,
            suspend_multiplier=2.0,
            suspend_max_s=3.0,
            suspend_jitter=0.0,
        )
        backends, channels, failover = make_stack(sim, n=1, fo_config=config)
        channels[0].mark_down()
        failover._record_failure(0)
        assert failover.health(0).suspended_until == pytest.approx(1.0)
        failover._record_failure(0)
        assert failover.health(0).suspended_until == pytest.approx(2.0)
        failover._record_failure(0)
        assert failover.health(0).suspended_until == pytest.approx(3.0)
        failover._record_failure(0)
        assert failover.health(0).suspended_until == pytest.approx(3.0)

    def test_jitter_scales_suspension(self):
        class HalfRng:
            def uniform(self, low, high):
                return (low + high) / 2

        sim = Simulator()
        config = FailoverConfig(
            suspend_base_s=1.0, suspend_jitter=0.5, probation_successes=0
        )
        channels = [ControlChannel(sim, FakeBackend())]
        failover = FailoverChannel(sim, channels, rng=HalfRng(), config=config)
        failover._record_failure(0)
        assert failover.health(0).suspended_until == pytest.approx(1.25)


class TestTelemetry:
    def test_per_replica_counters_and_failovers(self):
        with telemetry.use() as tele:
            sim = Simulator()
            _, channels, failover = make_stack(sim)
            failover.call_lookup()
            channels[0].mark_down()
            failover.call_lookup()
            snapshot = tele.registry.snapshot()
        counters = snapshot["counters"]
        assert counters.get("phi.replica_rpc_calls{replica=0,status=ok}") == 1
        assert counters.get("phi.replica_rpc_calls{replica=1,status=ok}") == 1
        assert (
            counters.get("phi.replica_rpc_calls{replica=0,status=server_down}")
            == 1
        )
        assert counters.get("phi.failovers") == 1

    def test_stats_accounting(self):
        sim = Simulator()
        _, channels, failover = make_stack(sim, n=2)
        failover.call_lookup()
        channels[0].mark_down()
        failover.call_lookup()
        assert failover.stats.calls == 2
        assert failover.stats.successes == 2
        assert failover.stats.by_replica[0]["successes"] == 1
        assert failover.stats.by_replica[0]["failures"] == 1
        assert failover.stats.by_replica[1]["successes"] == 1

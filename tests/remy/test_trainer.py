"""Tests for the Remy trainer against analytic toy objectives."""

import pytest

from repro.remy.memory import Memory
from repro.remy.trainer import RemyTrainer
from repro.remy.whisker import Action, WhiskerTable


class TestTrainerOnToyObjectives:
    def test_improves_toward_larger_increment(self):
        # Objective: prefer large window increments; trainer should climb.
        def evaluator(table):
            return sum(w.action.window_increment for w in table.whiskers)

        trainer = RemyTrainer(evaluator, max_evaluations=40, max_splits=0)
        result = trainer.train()
        assert result.table.whiskers[0].action.window_increment > 1.0
        assert result.score > 1.0

    def test_improves_toward_smaller_intersend(self):
        def evaluator(table):
            return -sum(w.action.intersend_s for w in table.whiskers)

        trainer = RemyTrainer(evaluator, max_evaluations=40, max_splits=0)
        result = trainer.train()
        assert result.table.whiskers[0].action.intersend_s < 0.003

    def test_budget_respected(self):
        calls = []

        def evaluator(table):
            calls.append(1)
            return float(len(calls))  # always "improving"

        trainer = RemyTrainer(evaluator, max_evaluations=17, max_splits=2)
        result = trainer.train()
        assert result.evaluations <= 17
        assert len(calls) <= 17

    def test_split_grows_table(self):
        def evaluator(table):
            table.act(Memory.initial())
            return 0.0

        trainer = RemyTrainer(
            evaluator,
            dimensions=WhiskerTable.CLASSIC_DIMENSIONS,
            max_evaluations=200,
            max_splits=1,
            improvement_threshold=1e9,  # never accept actions; just split
        )
        result = trainer.train()
        assert len(result.table) == 8

    def test_no_split_when_disabled(self):
        trainer = RemyTrainer(lambda t: 0.0, max_evaluations=30, max_splits=0)
        result = trainer.train()
        assert len(result.table) == 1

    def test_initial_table_used(self):
        seed_table = WhiskerTable.partitioned(
            WhiskerTable.PHI_DIMENSIONS, "util", n_parts=3
        )
        trainer = RemyTrainer(
            lambda t: 0.0,
            dimensions=WhiskerTable.PHI_DIMENSIONS,
            max_evaluations=5,
            max_splits=0,
            initial_table=seed_table,
        )
        result = trainer.train()
        assert len(result.table) == 3
        # The seed table must not be mutated by training.
        assert seed_table.whiskers[0].action == Action.default()

    def test_history_records_initial(self):
        trainer = RemyTrainer(lambda t: 1.0, max_evaluations=5, max_splits=0)
        result = trainer.train()
        assert result.history[0].note == "initial"
        assert result.history[0].score == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RemyTrainer(lambda t: 0.0, max_evaluations=0)
        with pytest.raises(ValueError):
            RemyTrainer(lambda t: 0.0, max_splits=-1)

    def test_negative_objective_improvement(self):
        # Scores below zero must still allow hill climbing.
        def evaluator(table):
            return -abs(table.whiskers[0].action.window_increment - 5.0) - 1.0

        trainer = RemyTrainer(evaluator, max_evaluations=60, max_splits=0)
        result = trainer.train()
        assert result.table.whiskers[0].action.window_increment == pytest.approx(
            5.0, abs=1.01
        )

"""Tests for Remy memory tracking and whisker tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.remy.memory import DOMAIN, EWMA_ALPHA, Memory, MemoryTracker
from repro.remy.whisker import Action, Whisker, WhiskerTable


def memory_strategy():
    return st.builds(
        Memory,
        ack_ewma=st.floats(min_value=0, max_value=2),
        send_ewma=st.floats(min_value=0, max_value=2),
        rtt_ratio=st.floats(min_value=0.5, max_value=32),
        util=st.floats(min_value=-0.5, max_value=1.5),
    )


class TestMemory:
    def test_initial_at_rest(self):
        memory = Memory.initial()
        assert memory.ack_ewma == 0.0
        assert memory.rtt_ratio == 1.0
        assert memory.util == 0.0

    def test_clamped_within_domain(self):
        memory = Memory(ack_ewma=5.0, send_ewma=-1.0, rtt_ratio=100.0, util=2.0)
        clamped = memory.clamped()
        assert clamped.ack_ewma == DOMAIN["ack_ewma"][1]
        assert clamped.send_ewma == DOMAIN["send_ewma"][0]
        assert clamped.rtt_ratio == DOMAIN["rtt_ratio"][1]
        assert clamped.util == 1.0

    @given(memory_strategy())
    @settings(max_examples=80)
    def test_clamp_idempotent(self, memory):
        once = memory.clamped()
        assert once.clamped() == once


class TestMemoryTracker:
    def test_first_ack_sets_no_intervals(self):
        tracker = MemoryTracker()
        memory = tracker.on_ack(1.0, 0.9, last_rtt=0.1, min_rtt=0.1)
        assert memory.ack_ewma == 0.0
        assert memory.rtt_ratio == pytest.approx(1.0)

    def test_ack_interarrival_ewma(self):
        tracker = MemoryTracker()
        tracker.on_ack(1.0, 0.9, 0.1, 0.1)
        memory = tracker.on_ack(1.2, 1.1, 0.1, 0.1)
        assert memory.ack_ewma == pytest.approx(EWMA_ALPHA * 0.2)

    def test_rtt_ratio_tracks_inflation(self):
        tracker = MemoryTracker()
        memory = tracker.on_ack(1.0, 0.8, last_rtt=0.3, min_rtt=0.1)
        assert memory.rtt_ratio == pytest.approx(3.0)

    def test_util_provider_feeds_memory(self):
        tracker = MemoryTracker(util_provider=lambda: 0.66)
        memory = tracker.on_ack(1.0, 0.9, 0.1, 0.1)
        assert memory.util == pytest.approx(0.66)

    def test_util_clamped(self):
        tracker = MemoryTracker(util_provider=lambda: 1.7)
        assert tracker.on_ack(1.0, 0.9, 0.1, 0.1).util == 1.0

    def test_reset(self):
        tracker = MemoryTracker()
        tracker.on_ack(1.0, 0.9, 0.1, 0.1)
        tracker.on_ack(1.5, 1.4, 0.2, 0.1)
        tracker.reset()
        assert tracker.memory == Memory.initial()


class TestAction:
    def test_apply_floor(self):
        action = Action(window_increment=-5, window_multiple=0.5)
        assert action.apply(2.0) == 1.0

    def test_apply_formula(self):
        action = Action(window_increment=3, window_multiple=2.0, intersend_s=0.01)
        assert action.apply(10.0) == 23.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Action(window_multiple=5.0)
        with pytest.raises(ValueError):
            Action(intersend_s=0.0)

    def test_neighbours_valid_and_distinct(self):
        action = Action.default()
        neighbours = action.neighbours()
        assert len(neighbours) == 12
        for n in neighbours:
            assert n != action or True  # all constructable
            assert 0.1 <= n.window_multiple <= 2.0
            assert 0.0001 <= n.intersend_s <= 1.0

    def test_neighbours_clamped_at_bounds(self):
        action = Action(window_increment=20.0, window_multiple=2.0, intersend_s=1.0)
        for n in action.neighbours():
            assert n.window_increment <= 20.0
            assert n.window_multiple <= 2.0
            assert n.intersend_s <= 1.0


class TestWhiskerTable:
    def test_default_table_covers_domain(self):
        table = WhiskerTable()
        assert len(table) == 1
        assert table.find(Memory.initial()) is table.whiskers[0]

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            WhiskerTable(("ack_ewma", "bogus"))

    def test_act_records_use(self):
        table = WhiskerTable()
        table.act(Memory.initial())
        table.act(Memory.initial())
        assert table.whiskers[0].use_count == 2
        table.reset_use_counts()
        assert table.whiskers[0].use_count == 0

    def test_split_produces_2_pow_d_children(self):
        table = WhiskerTable(("ack_ewma", "send_ewma", "rtt_ratio"))
        table.split_whisker(table.whiskers[0])
        assert len(table) == 8

    def test_phi_table_split(self):
        table = WhiskerTable(WhiskerTable.PHI_DIMENSIONS)
        table.split_whisker(table.whiskers[0])
        assert len(table) == 16

    @given(memory_strategy())
    @settings(max_examples=100)
    def test_split_table_still_covers_domain(self, memory):
        table = WhiskerTable()
        table.split_whisker(table.whiskers[0])
        table.split_whisker(table.whiskers[0])
        whisker = table.find(memory)  # must not raise
        assert whisker in table.whiskers

    @given(memory_strategy())
    @settings(max_examples=100)
    def test_exactly_one_whisker_matches(self, memory):
        table = WhiskerTable(WhiskerTable.PHI_DIMENSIONS)
        table.split_whisker(table.whiskers[0])
        clamped = memory.clamped()
        matches = [w for w in table.whiskers if w.contains(clamped)]
        assert len(matches) == 1

    def test_partitioned_along_util(self):
        table = WhiskerTable.partitioned(
            WhiskerTable.PHI_DIMENSIONS, "util", n_parts=4
        )
        assert len(table) == 4
        low = table.find(Memory(util=0.1))
        high = table.find(Memory(util=0.9))
        assert low is not high

    def test_partitioned_validation(self):
        with pytest.raises(ValueError):
            WhiskerTable.partitioned(WhiskerTable.CLASSIC_DIMENSIONS, "util", 2)
        with pytest.raises(ValueError):
            WhiskerTable.partitioned(WhiskerTable.PHI_DIMENSIONS, "util", 0)

    def test_copy_is_independent(self):
        table = WhiskerTable()
        clone = table.copy()
        clone.whiskers[0].action = Action(window_increment=9.0)
        assert table.whiskers[0].action.window_increment != 9.0

    def test_json_round_trip(self):
        table = WhiskerTable.partitioned(WhiskerTable.PHI_DIMENSIONS, "util", 2)
        table.whiskers[1].action = Action(window_increment=4.0, intersend_s=0.02)
        restored = WhiskerTable.from_json(table.to_json())
        assert restored.dimensions == table.dimensions
        assert len(restored) == len(table)
        assert restored.whiskers[1].action == table.whiskers[1].action

    def test_domain_top_edge_covered(self):
        table = WhiskerTable()
        table.split_whisker(table.whiskers[0])
        top = Memory(ack_ewma=1.0, send_ewma=1.0, rtt_ratio=16.0)
        assert table.find(top)

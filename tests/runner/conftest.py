"""Shared fixtures for the sweep-runner test suite."""

import pytest

from repro.experiments.scenarios import ScenarioPreset
from repro.simnet.topology import DumbbellConfig
from repro.transport.cubic import cubic_sweep_grid
from repro.workload.onoff import OnOffConfig

#: A miniature preset so each point simulates in well under a second.
MINI_PRESET = ScenarioPreset(
    name="mini-resilience",
    config=DumbbellConfig(n_senders=3),
    workload=OnOffConfig(mean_on_bytes=60_000, mean_off_s=0.5),
    duration_s=2.0,
    description="tiny fault-path fixture",
)

#: Four grid points: ssthresh {2, 64} x beta {0.2, 0.7}.
MINI_GRID = list(
    cubic_sweep_grid(
        ssthresh_range=[2.0, 64.0],
        window_init_range=[4.0],
        beta_range=[0.2, 0.7],
    )
)


@pytest.fixture
def mini_preset():
    return MINI_PRESET


@pytest.fixture
def mini_grid():
    return list(MINI_GRID)


@pytest.fixture
def make_result():
    """Factory for synthetic :class:`PointResult` records."""
    from repro.metrics.summary import RunMetrics
    from repro.runner.records import FlowRecord, PointResult
    from repro.transport.cubic import CubicParams

    def _make(key="k" * 64, seed=5, run_index=2, wall=1.0):
        flow = FlowRecord(
            flow_id=1,
            start_time=0.125,
            end_time=3.0000000000000004,
            bytes_goodput=123456,
            bytes_sent=130000,
            packets_sent=125,
            retransmits=3,
            timeouts=1,
            fast_retransmits=2,
            rtt_samples=(0.1501, 0.1502000000000003, 0.163),
            min_rtt=0.1501,
            completed=True,
        )
        return PointResult(
            key=key,
            params=CubicParams(window_init=4.0, initial_ssthresh=16.0, beta=0.3),
            seed=seed,
            run_index=run_index,
            metrics=RunMetrics(
                throughput_mbps=11.7320508,
                queueing_delay_ms=42.1,
                loss_rate=0.0123,
                connections=9,
                total_bytes=999_999,
                mean_rtt_ms=151.3,
                mean_utilization=0.87,
            ),
            flows=(flow,),
            bottleneck_drop_rate=0.0123,
            mean_utilization=0.87,
            duration_s=60.0,
            events_processed=123_456,
            wall_seconds=wall,
        )

    return _make

"""Result records and cache backends: exact round-trips, hit/miss stats."""

import json
import math
import os

from repro.metrics.summary import RunMetrics
from repro.runner.cache import DiskCache, MemoryCache, NullCache
from repro.runner.records import FlowRecord, PointResult, flow_records
from repro.transport.base import ConnectionStats
from repro.transport.cubic import CubicParams


def make_flow(flow_id=7):
    return FlowRecord(
        flow_id=flow_id,
        start_time=0.125,
        end_time=3.0000000000000004,  # deliberately non-round float
        bytes_goodput=123456,
        bytes_sent=130000,
        packets_sent=125,
        retransmits=3,
        timeouts=1,
        fast_retransmits=2,
        rtt_samples=(0.1501, 0.1502000000000003, 0.163),
        min_rtt=0.1501,
        completed=True,
    )


def make_point(key="k" * 64, wall=1.0):
    return PointResult(
        key=key,
        params=CubicParams(window_init=4.0, initial_ssthresh=16.0, beta=0.3),
        seed=5,
        run_index=2,
        metrics=RunMetrics(
            throughput_mbps=11.7320508,
            queueing_delay_ms=42.1,
            loss_rate=0.0123,
            connections=9,
            total_bytes=999_999,
            mean_rtt_ms=151.3,
            mean_utilization=0.87,
        ),
        flows=(make_flow(1), make_flow(2)),
        bottleneck_drop_rate=0.0123,
        mean_utilization=0.87,
        duration_s=60.0,
        events_processed=123_456,
        wall_seconds=wall,
    )


class TestFlowRecord:
    def test_from_stats_freezes_samples(self):
        stats = ConnectionStats(flow_id=1)
        stats.rtt_samples.extend([0.1, 0.2])
        stats.bytes_goodput = 100
        record = FlowRecord.from_stats(stats)
        stats.rtt_samples.append(0.3)  # later mutation must not leak in
        assert record.rtt_samples == (0.1, 0.2)

    def test_json_round_trip_bit_identical(self):
        record = make_flow()
        clone = FlowRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record

    def test_flow_records_flattens_in_sender_order(self):
        a, b, c = ConnectionStats(1), ConnectionStats(2), ConnectionStats(3)
        records = flow_records([[a], [b, c]])
        assert [r.flow_id for r in records] == [1, 2, 3]

    def test_infinite_min_rtt_survives_round_trip(self):
        stats = ConnectionStats(flow_id=1)
        record = FlowRecord.from_stats(stats)
        assert math.isinf(record.min_rtt)
        clone = FlowRecord.from_dict(record.to_dict())
        assert math.isinf(clone.min_rtt)


class TestPointResult:
    def test_json_round_trip_bit_identical(self):
        point = make_point()
        clone = PointResult.from_dict(json.loads(json.dumps(point.to_dict())))
        assert clone == point

    def test_identical_to_ignores_wall_seconds(self):
        assert make_point(wall=1.0).identical_to(make_point(wall=9.0))

    def test_identical_to_detects_flow_difference(self):
        point = make_point()
        other = PointResult(
            **{
                **point.__dict__,
                "flows": (make_flow(1),),
            }
        )
        assert not point.identical_to(other)


class TestMemoryCache:
    def test_roundtrip_and_stats(self):
        cache = MemoryCache()
        point = make_point()
        assert cache.get(point.key) is None
        cache.put(point)
        assert cache.get(point.key) == point
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1


class TestDiskCache:
    def test_roundtrip_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = DiskCache(directory)
        point = make_point()
        cache.put(point)
        fresh = DiskCache(directory)
        assert fresh.get(point.key) == point
        assert len(fresh) == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert cache.get("deadbeef") is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        point = make_point()
        cache.put(point)
        with open(os.path.join(str(tmp_path), f"{point.key}.json"), "w") as handle:
            handle.write("{not json")
        assert cache.get(point.key) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.put(make_point())
        leftovers = [n for n in os.listdir(str(tmp_path)) if n.startswith(".tmp-")]
        assert leftovers == []


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        point = make_point()
        cache.put(point)
        assert cache.get(point.key) is None
        assert len(cache) == 0

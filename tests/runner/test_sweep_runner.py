"""The sweep engine: determinism, caching, merge order, progress.

The central property (ISSUE 3): the same seed and grid point pushed
through the new parallel runner and the old serial path must yield
bit-identical ``FlowRecord`` s.
"""

import pytest

from repro.experiments.scenarios import TABLE3_REMY, ScenarioPreset, run_cubic_fixed
from repro.experiments.sweep import run_parameter_sweep, run_table2_sweep
from repro.phi.optimizer import leave_one_out, select_optimal
from repro.runner.cache import DiskCache, MemoryCache, NullCache
from repro.runner.core import SweepRunner
from repro.runner.progress import SweepProgress
from repro.runner.records import flow_records
from repro.simnet.topology import DumbbellConfig
from repro.transport.cubic import CubicParams, cubic_sweep_grid
from repro.workload.onoff import OnOffConfig

#: A miniature preset so each point simulates in well under a second.
MINI_PRESET = ScenarioPreset(
    name="mini-sweep",
    config=DumbbellConfig(n_senders=3),
    workload=OnOffConfig(mean_on_bytes=60_000, mean_off_s=0.5),
    duration_s=2.0,
    description="tiny grid-sweep fixture",
)

MINI_GRID = list(
    cubic_sweep_grid(
        ssthresh_range=[2.0, 64.0],
        window_init_range=[4.0],
        beta_range=[0.2, 0.7],
    )
)


class TestDeterminism:
    def test_parallel_matches_old_serial_path_bit_identically(self):
        # Old serial path: run_cubic_fixed directly, seed = base + run.
        outcome = SweepRunner(MINI_PRESET, n_workers=2).run(
            MINI_GRID, n_runs=2, base_seed=3
        )
        index = 0
        for params in MINI_GRID:
            for run in range(2):
                legacy = run_cubic_fixed(params, MINI_PRESET, seed=3 + run)
                point = outcome.points[index]
                index += 1
                assert point.params == params
                assert point.seed == 3 + run
                assert point.flows == flow_records(legacy.per_sender_stats)
                assert point.metrics == legacy.metrics

    def test_serial_and_parallel_outcomes_identical(self):
        serial = SweepRunner(MINI_PRESET, n_workers=2, cache=NullCache()).run_serial(
            MINI_GRID, n_runs=2
        )
        parallel = SweepRunner(MINI_PRESET, n_workers=2, cache=NullCache()).run(
            MINI_GRID, n_runs=2
        )
        assert len(serial.points) == len(parallel.points) == len(MINI_GRID) * 2
        for a, b in zip(serial.points, parallel.points):
            assert a.identical_to(b)

    def test_merge_order_is_grid_times_run_order(self):
        outcome = SweepRunner(MINI_PRESET, n_workers=2).run(MINI_GRID, n_runs=2)
        expected = [
            (params, run) for params in MINI_GRID for run in range(2)
        ]
        assert [(p.params, p.run_index) for p in outcome.points] == expected


class TestCachingBehaviour:
    def test_second_run_is_all_cache_hits(self):
        cache = MemoryCache()
        runner = SweepRunner(MINI_PRESET, n_workers=1, cache=cache)
        first = runner.run(MINI_GRID, n_runs=1)
        assert first.cache_hits == 0
        second = runner.run(MINI_GRID, n_runs=1)
        assert second.cache_hits == len(MINI_GRID)
        for a, b in zip(first.points, second.points):
            assert a.identical_to(b)

    def test_widening_grid_only_pays_for_new_points(self):
        cache = MemoryCache()
        runner = SweepRunner(MINI_PRESET, n_workers=1, cache=cache)
        runner.run(MINI_GRID[:2], n_runs=1)
        outcome = runner.run(MINI_GRID, n_runs=1)
        assert outcome.cache_hits == 2

    def test_different_seed_misses_cache(self):
        cache = MemoryCache()
        runner = SweepRunner(MINI_PRESET, n_workers=1, cache=cache)
        runner.run(MINI_GRID[:1], n_runs=1, base_seed=0)
        outcome = runner.run(MINI_GRID[:1], n_runs=1, base_seed=99)
        assert outcome.cache_hits == 0

    def test_disk_cache_round_trip_is_bit_identical(self, tmp_path):
        directory = str(tmp_path / "sweep-cache")
        cold = SweepRunner(
            MINI_PRESET, n_workers=1, cache=DiskCache(directory)
        ).run(MINI_GRID[:2], n_runs=1)
        warm = SweepRunner(
            MINI_PRESET, n_workers=1, cache=DiskCache(directory)
        ).run(MINI_GRID[:2], n_runs=1)
        assert warm.cache_hits == 2
        for a, b in zip(cold.points, warm.points):
            assert a.identical_to(b)


class TestOptimizerCompat:
    def test_to_sweep_results_round_trips_through_optimizer(self):
        results, outcome = run_table2_sweep(
            MINI_PRESET, MINI_GRID, n_runs=2, n_workers=1
        )
        assert [r.params for r in results] == MINI_GRID
        assert all(len(r.runs) == 2 for r in results)
        best = select_optimal(results)
        assert best.params in MINI_GRID
        records = leave_one_out(results)
        assert len(records) == 2

    def test_run_parameter_sweep_defaults_to_full_grid(self):
        # Tasks only (not executed): the default grid is the 576-point
        # Table-2 grid with the paper's seed convention.
        runner = SweepRunner(TABLE3_REMY)
        tasks = runner.tasks(list(cubic_sweep_grid()), n_runs=8, base_seed=0)
        assert len(tasks) == 576 * 8
        assert {t.seed for t in tasks} == set(range(8))


class TestValidationAndProgress:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SweepRunner(MINI_PRESET, n_workers=0)

    def test_rejects_bad_run_count(self):
        with pytest.raises(ValueError):
            SweepRunner(MINI_PRESET).tasks(MINI_GRID, n_runs=0, base_seed=0)

    def test_progress_reports_monotonic_to_completion(self):
        snapshots = []

        def reporter(progress: SweepProgress) -> None:
            snapshots.append((progress.completed, progress.total, progress.cached))

        SweepRunner(MINI_PRESET, n_workers=1, progress=reporter).run(
            MINI_GRID, n_runs=1
        )
        assert snapshots[0] == (0, len(MINI_GRID), 0)
        completed = [done for done, _, _ in snapshots]
        assert completed == sorted(completed)
        assert snapshots[-1][0] == len(MINI_GRID)

    def test_progress_counts_cache_hits(self):
        cache = MemoryCache()
        SweepRunner(MINI_PRESET, n_workers=1, cache=cache).run(MINI_GRID, n_runs=1)
        snapshots = []
        SweepRunner(
            MINI_PRESET, n_workers=1, cache=cache, progress=snapshots.append
        ).run(MINI_GRID, n_runs=1)
        assert snapshots[0].cached == len(MINI_GRID)
        assert snapshots[0].completed == len(MINI_GRID)

    def test_run_parameter_sweep_cache_dir(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = run_parameter_sweep(
            MINI_PRESET, MINI_GRID[:2], n_runs=1, n_workers=1, cache_dir=directory
        )
        second = run_parameter_sweep(
            MINI_PRESET, MINI_GRID[:2], n_runs=1, n_workers=1, cache_dir=directory
        )
        assert first.cache_hits == 0
        assert second.cache_hits == 2

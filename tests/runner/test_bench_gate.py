"""The bench-trajectory regression gate: medians, budgets, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.runner.bench import (
    append_bench_entry,
    bench_entry,
    check_gate,
    load_trajectory,
)


def _entry(label, metric, value, higher_is_better=True):
    return {
        "label": label,
        "timestamp": 0.0,
        "gate": {
            "metric": metric,
            "value": value,
            "higher_is_better": higher_is_better,
        },
    }


class TestCheckGate:
    def test_regression_beyond_budget_fails(self):
        trajectory = [
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 3.2),
            _entry("sweep", "speedup", 2.0),
        ]
        result = check_gate("BENCH_x.json", trajectory, budget_pct=10.0)
        assert not result.ok
        assert result.metric == "speedup"
        assert result.baseline == 3.1
        assert result.regression == pytest.approx((3.1 - 2.0) / 3.1)
        assert "regression" in result.reason

    def test_within_budget_passes(self):
        trajectory = [
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 2.9),
        ]
        assert check_gate("p", trajectory, budget_pct=10.0).ok

    def test_improvement_always_passes(self):
        trajectory = [
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 9.0),
        ]
        result = check_gate("p", trajectory, budget_pct=0.0)
        assert result.ok and result.regression < 0

    def test_lower_is_better_direction(self):
        # Overhead ratios regress by going *up*.
        trajectory = [
            _entry("flightrec", "overhead_ratio", 1.02, higher_is_better=False),
            _entry("flightrec", "overhead_ratio", 1.5, higher_is_better=False),
        ]
        result = check_gate("p", trajectory, budget_pct=10.0)
        assert not result.ok
        assert result.regression == pytest.approx((1.5 - 1.02) / 1.02)

    def test_single_entry_is_insufficient_history(self):
        result = check_gate("p", [_entry("sweep", "speedup", 3.0)], 10.0)
        assert result.ok and "insufficient history" in result.reason

    def test_empty_trajectory_passes(self):
        assert check_gate("p", [], 10.0).ok

    def test_other_labels_do_not_pollute_the_baseline(self):
        trajectory = [
            _entry("other-bench", "speedup", 100.0),
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 3.0),
        ]
        result = check_gate("p", trajectory, budget_pct=5.0)
        assert result.ok and result.baseline == 3.0

    def test_other_metrics_do_not_pollute_the_baseline(self):
        trajectory = [
            _entry("sweep", "events_per_second", 1e6),
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 3.0),
        ]
        result = check_gate("p", trajectory, budget_pct=5.0)
        assert result.ok and result.baseline == 3.0

    def test_legacy_entries_fall_back_to_speedup(self):
        trajectory = [
            {"label": "sweep", "speedup": 3.0},
            {"label": "sweep", "speedup": 1.0},
        ]
        result = check_gate("p", trajectory, budget_pct=10.0)
        assert not result.ok and result.metric == "speedup"

    def test_zero_baseline_passes_rather_than_dividing(self):
        trajectory = [
            _entry("sweep", "speedup", 0.0),
            _entry("sweep", "speedup", 0.0),
        ]
        result = check_gate("p", trajectory, budget_pct=10.0)
        assert result.ok and result.reason == "zero baseline"


class TestEntrySchema:
    def test_bench_entry_gate_block(self):
        entry = bench_entry(
            "flightrec-overhead", gate=("overhead_ratio", 1.05, False)
        )
        assert entry["label"] == "flightrec-overhead"
        assert entry["gate"] == {
            "metric": "overhead_ratio",
            "value": 1.05,
            "higher_is_better": False,
        }
        assert "machine" in entry and "timestamp" in entry

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        append_bench_entry(path, _entry("sweep", "speedup", 3.0))
        append_bench_entry(path, _entry("sweep", "speedup", 2.0))
        trajectory = load_trajectory(path)
        assert [e["gate"]["value"] for e in trajectory] == [3.0, 2.0]

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        path.write_text("{not json")
        assert load_trajectory(str(path)) == []
        append_bench_entry(str(path), _entry("sweep", "speedup", 1.0))
        assert len(load_trajectory(str(path))) == 1


class TestCli:
    def test_gate_fails_on_synthetic_regression(self, tmp_path, capsys):
        path = tmp_path / "BENCH_synthetic.json"
        path.write_text(json.dumps([
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 3.2),
            _entry("sweep", "speedup", 1.0),
        ]))
        assert main(["bench", "gate", "--budget", "10", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_gate_passes_within_budget(self, tmp_path, capsys):
        path = tmp_path / "BENCH_synthetic.json"
        path.write_text(json.dumps([
            _entry("sweep", "speedup", 3.0),
            _entry("sweep", "speedup", 3.0),
        ]))
        assert main(["bench", "gate", "--budget", "10", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_gate_errors_when_no_trajectories(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "gate"]) == 2
        assert "no trajectory files" in capsys.readouterr().err

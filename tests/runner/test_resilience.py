"""Supervisor fault paths: crash retry, timeouts, quarantine, fallback.

The slow tests here inject *real* faults — worker ``os._exit``, hung
sleeps, runaway simulations — through the ``REPRO_SWEEP_FAULT`` hook in
:func:`repro.runner.core.evaluate_point`, because crash semantics only
exist across a genuine process boundary.  They are marked ``fault``
(``pytest -m "not fault"`` skips them).
"""

import pytest

from repro.runner.cache import NullCache
from repro.runner.core import SweepRunner
from repro.runner.faultinject import ENV_VAR, FaultSpec, fault_spec_from_env
from repro.runner.resilience import ResilienceConfig, RetryPolicy
from repro.simnet.engine import WatchdogConfig

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05)


def make_runner(preset, *, n_workers=2, resilience=None, watchdog=None):
    return SweepRunner(
        preset,
        n_workers=n_workers,
        cache=NullCache(),
        resilience=resilience
        or ResilienceConfig(retry=FAST_RETRY, poll_interval_s=0.02),
        watchdog=watchdog,
    )


@pytest.fixture
def clean_baseline(mini_preset, mini_grid):
    """The uninjected serial ground truth, keyed by point key."""
    outcome = make_runner(mini_preset, n_workers=1).run(
        mini_grid, n_runs=1, base_seed=0, parallel=False
    )
    return {point.key: point for point in outcome.points}


class TestRetryPolicy:
    def test_backoff_shape_matches_channel_config(self):
        policy = RetryPolicy(
            backoff_base_s=0.05, backoff_multiplier=2.0, backoff_max_s=0.15
        )
        assert policy.backoff_s(0) == 0.05
        assert policy.backoff_s(1) == 0.10
        assert policy.backoff_s(2) == 0.15  # capped
        assert policy.backoff_s(10) == 0.15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_multiplier": 0.5},
            {"backoff_budget_s": -1.0},
        ],
    )
    def test_rejects_invalid_policy(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point_timeout_s": 0.0},
            {"pool_breaks_before_fallback": 0},
            {"poll_interval_s": 0.0},
        ],
    )
    def test_rejects_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestFaultSpec:
    def test_env_round_trip(self, monkeypatch):
        spec = FaultSpec(mode="raise", beta=0.7, run_index=0, once_dir="/tmp/x")
        monkeypatch.setenv(ENV_VAR, spec.to_env())
        assert fault_spec_from_env() == spec

    def test_unset_env_is_no_spec(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert fault_spec_from_env() is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(mode="explode")


@pytest.mark.fault
class TestCrashRecovery:
    def test_crash_once_retries_to_completion(
        self, mini_preset, mini_grid, clean_baseline, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR,
            FaultSpec(mode="crash", beta=0.2, once_dir=str(tmp_path)).to_env(),
        )
        outcome = make_runner(mini_preset).run(mini_grid, n_runs=1, base_seed=0)
        assert outcome.complete
        assert len(outcome.points) == len(mini_grid)
        assert outcome.retries >= 1
        assert outcome.pool_rebuilds >= 1
        # Surviving a crash must not perturb results: every point is
        # bit-identical to the clean serial baseline.
        for point in outcome.points:
            assert point.identical_to(clean_baseline[point.key])

    def test_crash_always_quarantines_the_guilty(
        self, mini_preset, mini_grid, clean_baseline, monkeypatch
    ):
        # Points with beta=0.7 crash their worker on every attempt.  An
        # instant crash is never *observed* running, so blame falls on
        # the oldest submissions (which always include the crasher):
        # bystanders may pick up attempts, but the guilty points must
        # end up quarantined as crashes, the sweep must terminate, and
        # every surviving point must be untouched.
        monkeypatch.setenv(
            ENV_VAR, FaultSpec(mode="crash", beta=0.7).to_env()
        )
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            poll_interval_s=0.02,
            pool_breaks_before_fallback=100,  # keep the pool path active
        )
        outcome = make_runner(mini_preset, resilience=resilience).run(
            mini_grid, n_runs=1, base_seed=0
        )
        guilty = sum(1 for p in mini_grid if p.beta == 0.7)
        assert guilty  # the grid really contains the targeted points
        assert not outcome.complete
        quarantined_betas = [q.point.params.beta for q in outcome.quarantined]
        assert quarantined_betas.count(0.7) == guilty
        for q in outcome.quarantined:
            if q.point.params.beta == 0.7:
                assert q.last_failure.kind == "crash"
        for point in outcome.points:
            assert point.params.beta != 0.7
            assert point.identical_to(clean_baseline[point.key])

    def test_unrecoverable_pool_degrades_to_serial(
        self, mini_preset, mini_grid, clean_baseline, monkeypatch
    ):
        # Crash *every* worker evaluation.  The crash fault is gated to
        # child processes, so the in-process fallback completes the sweep.
        monkeypatch.setenv(ENV_VAR, FaultSpec(mode="crash").to_env())
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=5, backoff_base_s=0.01),
            poll_interval_s=0.02,
            pool_breaks_before_fallback=2,
        )
        outcome = make_runner(mini_preset, resilience=resilience).run(
            mini_grid, n_runs=1, base_seed=0
        )
        assert outcome.serial_fallback
        assert outcome.complete
        assert len(outcome.points) == len(mini_grid)
        for point in outcome.points:
            assert point.identical_to(clean_baseline[point.key])


@pytest.mark.fault
class TestExceptionsAndTimeouts:
    def test_persistent_exception_quarantines_with_history(
        self, mini_preset, mini_grid, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR, FaultSpec(mode="raise", beta=0.7).to_env()
        )
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            poll_interval_s=0.02,
        )
        outcome = make_runner(mini_preset, resilience=resilience).run(
            mini_grid, n_runs=1, base_seed=0
        )
        expected_bad = sum(1 for p in mini_grid if p.beta == 0.7)
        assert len(outcome.quarantined) == expected_bad
        for q in outcome.quarantined:
            assert q.attempts == 2
            assert [f.kind for f in q.failures] == ["exception", "exception"]
            assert "injected fault" in q.last_failure.message
            assert "quarantined after 2 attempt(s)" in q.describe()

    def test_raise_once_is_retried_in_serial_path(
        self, mini_preset, mini_grid, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR,
            FaultSpec(mode="raise", beta=0.2, once_dir=str(tmp_path)).to_env(),
        )
        outcome = make_runner(mini_preset, n_workers=1).run(
            mini_grid, n_runs=1, base_seed=0, parallel=False
        )
        assert outcome.complete
        assert outcome.retries >= 1

    def test_hung_point_times_out_and_recovers(
        self, mini_preset, mini_grid, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            ENV_VAR,
            FaultSpec(
                mode="hang", beta=0.2, run_index=0,
                once_dir=str(tmp_path), hang_s=60.0,
            ).to_env(),
        )
        resilience = ResilienceConfig(
            retry=FAST_RETRY,
            point_timeout_s=1.0,
            poll_interval_s=0.02,
        )
        outcome = make_runner(mini_preset, resilience=resilience).run(
            mini_grid, n_runs=1, base_seed=0
        )
        assert outcome.complete
        assert len(outcome.points) == len(mini_grid)
        assert outcome.retries >= 1

    def test_backoff_budget_quarantines_before_max_attempts(
        self, mini_preset, mini_grid, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, FaultSpec(mode="raise").to_env())
        resilience = ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=10, backoff_base_s=5.0, backoff_budget_s=1.0
            ),
            poll_interval_s=0.02,
        )
        outcome = make_runner(mini_preset, n_workers=1, resilience=resilience).run(
            mini_grid, n_runs=1, base_seed=0, parallel=False
        )
        assert len(outcome.quarantined) == len(mini_grid)
        # The 5s first backoff blows the 1s budget: one attempt each, no
        # multi-second sleeps.
        assert all(q.attempts == 1 for q in outcome.quarantined)
        assert outcome.retries == 0


@pytest.mark.fault
class TestWatchdogQuarantine:
    def test_runaway_simulations_quarantine_as_stalled(
        self, mini_preset, mini_grid
    ):
        # No fault injection: a too-small event budget makes every real
        # simulation trip the watchdog inside the worker.
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            poll_interval_s=0.02,
        )
        outcome = make_runner(
            mini_preset,
            resilience=resilience,
            watchdog=WatchdogConfig(max_events=50),
        ).run(mini_grid, n_runs=1, base_seed=0)
        assert len(outcome.quarantined) == len(mini_grid)
        assert all(
            q.last_failure.kind == "stalled" for q in outcome.quarantined
        )
        assert not outcome.points

    def test_generous_watchdog_does_not_perturb_results(
        self, mini_preset, mini_grid, clean_baseline
    ):
        # The watchdog can abort a run but never alter one that finishes
        # (and is excluded from cache keys for exactly that reason).
        outcome = make_runner(
            mini_preset,
            n_workers=1,
            watchdog=WatchdogConfig(max_events=100_000_000, max_wall_s=3600.0),
        ).run(mini_grid, n_runs=1, base_seed=0, parallel=False)
        assert outcome.complete
        for point in outcome.points:
            assert point.identical_to(clean_baseline[point.key])

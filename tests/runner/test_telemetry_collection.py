"""Worker telemetry capture and deterministic merge through the runner."""

import json

from repro import telemetry
from repro.runner.cache import MemoryCache, NullCache
from repro.runner.core import SweepPoint, SweepRunner, SweepSpec, evaluate_point

from .conftest import MINI_GRID, MINI_PRESET


def _point(params, seed=1, run_index=0):
    return SweepPoint(params=params, run_index=run_index, seed=seed)


def _run(n_workers, cache=None, grid=None):
    with telemetry.use() as tele:
        runner = SweepRunner(
            MINI_PRESET,
            n_workers=n_workers,
            cache=cache if cache is not None else NullCache(),
        )
        outcome = runner.run(grid if grid is not None else MINI_GRID, n_runs=1)
        parent = tele.registry.snapshot()
    return outcome, parent


class TestWorkerCapture:
    def test_evaluate_point_captures_snapshot_when_asked(self):
        spec = SweepSpec(preset=MINI_PRESET, collect_telemetry=True)
        result = evaluate_point(spec, _point(MINI_GRID[0]))
        assert result.telemetry is not None
        assert result.telemetry["counters"]["sim.events"] == float(
            result.events_processed
        )
        assert result.telemetry["gauges"]["sim.clock_s"]["value"] > 0.0

    def test_evaluate_point_skips_snapshot_by_default(self):
        spec = SweepSpec(preset=MINI_PRESET)
        result = evaluate_point(spec, _point(MINI_GRID[0]))
        assert result.telemetry is None

    def test_telemetry_flag_does_not_change_results_or_cache_key(self):
        plain = evaluate_point(SweepSpec(preset=MINI_PRESET), _point(MINI_GRID[0]))
        collected = evaluate_point(
            SweepSpec(preset=MINI_PRESET, collect_telemetry=True),
            _point(MINI_GRID[0]),
        )
        assert plain.identical_to(collected)
        assert plain.key == collected.key
        assert "telemetry" not in collected.to_dict()

    def test_worker_capture_does_not_leak_into_caller_session(self):
        spec = SweepSpec(preset=MINI_PRESET, collect_telemetry=True)
        with telemetry.use() as tele:
            evaluate_point(spec, _point(MINI_GRID[0]))
            # The point ran in its own scoped session; the caller's
            # registry saw none of the engine counters.
            assert "sim.events" not in tele.registry.snapshot()["counters"]


class TestRunnerMerge:
    def test_enabled_session_turns_on_collection_and_merges(self):
        outcome, parent = _run(n_workers=1)
        assert outcome.telemetry is not None
        merged = outcome.telemetry
        total_events = sum(r.events_processed for r in outcome.points)
        assert merged["counters"]["sim.events"] == float(total_events)
        assert merged["counters"]["sim.run_calls"] == float(len(outcome.points))
        # Parent-side rollups.
        assert parent["counters"]["runner.cache_misses"] == float(len(MINI_GRID))
        assert parent["counters"]["runner.cache_hits"] == 0.0
        wall = parent["histograms"]["runner.point_wall_s"]
        assert wall["count"] == len(MINI_GRID)
        assert outcome.provenance == {r.key: "computed" for r in outcome.points}

    def test_disabled_session_collects_nothing(self):
        runner = SweepRunner(MINI_PRESET, n_workers=1, cache=NullCache())
        outcome = runner.run(MINI_GRID[:1], n_runs=1)
        assert outcome.telemetry is None
        assert all(r.telemetry is None for r in outcome.points)

    def test_serial_and_parallel_merge_bit_identically(self):
        serial, _ = _run(n_workers=1, grid=MINI_GRID[:2])
        parallel, _ = _run(n_workers=2, grid=MINI_GRID[:2])
        assert json.dumps(serial.telemetry, sort_keys=True) == json.dumps(
            parallel.telemetry, sort_keys=True
        )

    def test_cached_points_report_cached_provenance(self):
        cache = MemoryCache()
        _run(n_workers=1, cache=cache)
        outcome, parent = _run(n_workers=1, cache=cache)
        assert outcome.provenance == {r.key: "cached" for r in outcome.points}
        assert parent["counters"]["runner.cache_hits"] == float(len(MINI_GRID))
        # Cached results were stored without telemetry, so nothing merges.
        assert outcome.telemetry == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

"""Content-hash keys: stable, and sensitive to every input that matters."""

import pytest

from repro.runner.hashing import (
    ENGINE_SIGNATURE,
    canonical_json,
    content_hash,
    point_key,
)
from repro.simnet.topology import DumbbellConfig
from repro.transport.cubic import CubicParams
from repro.workload.onoff import OnOffConfig


def default_key(**overrides):
    kwargs = dict(
        params=CubicParams.default(),
        config=DumbbellConfig(),
        workload=OnOffConfig(),
        duration_s=60.0,
        seed=0,
    )
    kwargs.update(overrides)
    return point_key(**kwargs)


class TestPointKey:
    def test_stable_across_calls(self):
        assert default_key() == default_key()

    def test_is_hex_sha256(self):
        key = default_key()
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_sensitive_to_params(self):
        assert default_key() != default_key(params=CubicParams(beta=0.5))

    def test_sensitive_to_seed(self):
        assert default_key() != default_key(seed=1)

    def test_sensitive_to_duration(self):
        assert default_key() != default_key(duration_s=30.0)

    def test_sensitive_to_topology(self):
        assert default_key() != default_key(config=DumbbellConfig(n_senders=4))

    def test_sensitive_to_workload(self):
        assert default_key() != default_key(
            workload=OnOffConfig(mean_on_bytes=100_000)
        )

    def test_none_workload_distinct(self):
        assert default_key() != default_key(workload=None)

    def test_sensitive_to_engine_signature(self):
        # Bumping the engine signature must invalidate every cached point.
        assert default_key() != point_key(
            CubicParams.default(),
            DumbbellConfig(),
            OnOffConfig(),
            60.0,
            0,
            engine_signature=ENGINE_SIGNATURE + "-next",
        )


class TestCanonicalEncoding:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_content_hash_dict_order_invariant(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_content_hash_handles_nested_dataclasses(self):
        payload = {"params": CubicParams.default(), "values": [1, 2.5, "x", None]}
        assert content_hash(payload) == content_hash(payload)

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            content_hash({"bad": object()})

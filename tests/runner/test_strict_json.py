"""Regression: infinite ``min_rtt`` must never leak into serialized JSON.

A zero-sample flow carries ``min_rtt = math.inf``.  Python's ``json``
happily emits the non-standard token ``Infinity`` for it, which poisons
cache envelopes and checkpoints for every strict parser (and any other
language).  ``FlowRecord.to_dict`` now maps non-finite ``min_rtt`` to
``null`` and the cache/checkpoint writers pass ``allow_nan=False`` so a
regression fails loudly at dump time instead of corrupting artifacts.
"""

import json
import math

from repro.runner.cache import DiskCache
from repro.runner.checkpoint import SweepJournal
from repro.runner.records import FlowRecord, PointResult
from repro.transport.base import ConnectionStats

from .test_cache_records import make_flow, make_point


def zero_sample_flow():
    stats = ConnectionStats(flow_id=1)
    return FlowRecord.from_stats(stats)


def inf_rtt_point():
    point = make_point()
    return PointResult(
        **{**point.__dict__, "flows": (make_flow(1), zero_sample_flow())}
    )


class TestStrictMinRtt:
    def test_to_dict_maps_inf_to_null(self):
        record = zero_sample_flow()
        assert math.isinf(record.min_rtt)
        data = record.to_dict()
        assert data["min_rtt"] is None
        assert json.dumps(data, allow_nan=False)  # strict JSON, no Infinity

    def test_round_trip_restores_inf(self):
        record = zero_sample_flow()
        clone = FlowRecord.from_dict(
            json.loads(json.dumps(record.to_dict(), allow_nan=False))
        )
        assert clone == record
        assert math.isinf(clone.min_rtt)

    def test_finite_min_rtt_unaffected(self):
        record = make_flow()
        assert record.to_dict()["min_rtt"] == record.min_rtt

    def test_point_with_zero_sample_flow_is_strict_json(self):
        payload = json.dumps(inf_rtt_point().to_dict(), allow_nan=False)
        assert "Infinity" not in payload

    def test_disk_cache_round_trips_zero_sample_flow(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        point = inf_rtt_point()
        cache.put(point)
        clone = cache.get(point.key)
        assert clone == point
        assert math.isinf(clone.flows[1].min_rtt)
        # The on-disk envelope is standard JSON (no Infinity token).
        (envelope,) = tmp_path.rglob("*.json")
        assert "Infinity" not in envelope.read_text()

    def test_journal_records_zero_sample_flow(self, tmp_path):
        path = tmp_path / "sweep.journal"
        point = inf_rtt_point()
        with SweepJournal(str(path)) as journal:
            journal.append(point)
        assert "Infinity" not in path.read_text()
        restored = SweepJournal(str(path)).load()
        assert restored[point.key] == point

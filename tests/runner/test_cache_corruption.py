"""DiskCache corruption handling: any damage is a miss that self-heals."""

import json
import os

from repro.runner.cache import DiskCache
from repro.runner.hashing import content_hash


def entry_path(cache, key):
    return os.path.join(cache.directory, f"{key}.json")


def put_one(tmp_path, make_result):
    cache = DiskCache(str(tmp_path / "cache"))
    result = make_result()
    cache.put(result)
    return cache, result


class TestEnvelopeFormat:
    def test_entry_embeds_checksum_over_payload(self, tmp_path, make_result):
        cache, result = put_one(tmp_path, make_result)
        with open(entry_path(cache, result.key), encoding="utf-8") as handle:
            envelope = json.load(handle)
        assert set(envelope) == {"checksum", "result"}
        assert envelope["checksum"] == content_hash(envelope["result"])

    def test_put_leaves_no_temp_files(self, tmp_path, make_result):
        cache, _ = put_one(tmp_path, make_result)
        leftovers = [
            name for name in os.listdir(cache.directory)
            if not name.endswith(".json") or name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_round_trip_across_instances(self, tmp_path, make_result):
        cache, result = put_one(tmp_path, make_result)
        reopened = DiskCache(cache.directory)
        assert reopened.get(result.key) == result


class TestCorruptEntries:
    def corrupt(self, cache, result, content):
        with open(entry_path(cache, result.key), "w", encoding="utf-8") as handle:
            handle.write(content)

    def assert_evicted(self, cache, result):
        # Damage is a miss, the poisoned file is deleted, and the very
        # next get is a plain (cheap) miss rather than a re-parse.
        assert cache.get(result.key) is None
        assert cache.stats.corrupt_evictions == 1
        assert not os.path.exists(entry_path(cache, result.key))
        assert cache.get(result.key) is None
        assert cache.stats.corrupt_evictions == 1
        assert cache.stats.misses == 2

    def test_truncated_file(self, tmp_path, make_result):
        cache, result = put_one(tmp_path, make_result)
        path = entry_path(cache, result.key)
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        self.corrupt(cache, result, content[: len(content) // 2])
        self.assert_evicted(cache, result)

    def test_garbage_json(self, tmp_path, make_result):
        cache, result = put_one(tmp_path, make_result)
        self.corrupt(cache, result, "{not json")
        self.assert_evicted(cache, result)

    def test_checksum_tamper(self, tmp_path, make_result):
        cache, result = put_one(tmp_path, make_result)
        path = entry_path(cache, result.key)
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
        envelope["result"]["seed"] = envelope["result"]["seed"] + 1
        self.corrupt(cache, result, json.dumps(envelope))
        self.assert_evicted(cache, result)

    def test_legacy_unenveloped_entry(self, tmp_path, make_result):
        # A pre-checksum cache entry (bare payload, no envelope) must be
        # evicted, not trusted.
        cache, result = put_one(tmp_path, make_result)
        self.corrupt(cache, result, json.dumps(result.to_dict()))
        self.assert_evicted(cache, result)

    def test_valid_entry_untouched_by_eviction_paths(self, tmp_path, make_result):
        cache, result = put_one(tmp_path, make_result)
        assert cache.get(result.key) == result
        assert cache.stats.corrupt_evictions == 0
        assert os.path.exists(entry_path(cache, result.key))

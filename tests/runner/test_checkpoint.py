"""Checkpoint journal: round trips, torn-tail healing, resume semantics."""

import json

import pytest

from repro.runner.cache import DiskCache, NullCache
from repro.runner.checkpoint import (
    CheckpointError,
    SweepJournal,
    _record_line,
    sweep_key,
)
from repro.runner.core import SweepRunner, SweepSpec


def journal_at(tmp_path, name="journal.jsonl", **kwargs):
    return SweepJournal(str(tmp_path / name), **kwargs)


class TestJournalRoundTrip:
    def test_append_load_round_trip(self, tmp_path, make_result):
        journal = journal_at(tmp_path)
        records = [make_result(key=f"{i:064d}", seed=i) for i in range(3)]
        with journal:
            for record in records:
                journal.append(record)
        assert journal.appended == 3

        restored = journal_at(tmp_path).load()
        assert len(restored) == 3
        for record in records:
            assert restored[record.key] == record

    def test_missing_file_loads_empty(self, tmp_path):
        assert journal_at(tmp_path, "absent.jsonl").load() == {}

    def test_load_while_open_is_an_error(self, tmp_path):
        journal = journal_at(tmp_path).open()
        with pytest.raises(CheckpointError):
            journal.load()
        journal.close()

    def test_duplicate_keys_keep_first_record(self, tmp_path, make_result):
        journal = journal_at(tmp_path)
        with journal:
            journal.append(make_result(key="a" * 64, seed=1))
            journal.append(make_result(key="a" * 64, seed=2))
        restored = journal_at(tmp_path).load()
        assert len(restored) == 1
        assert restored["a" * 64].seed == 1

    def test_reset_truncates(self, tmp_path, make_result):
        journal = journal_at(tmp_path)
        with journal:
            journal.append(make_result())
        fresh = journal_at(tmp_path)
        fresh.reset()
        fresh.close()
        assert journal_at(tmp_path).load() == {}


class TestJournalCorruption:
    def write_lines(self, tmp_path, lines):
        path = tmp_path / "journal.jsonl"
        path.write_text("".join(lines), encoding="utf-8")
        return path

    def good_line(self, make_result, key="b" * 64):
        return _record_line(make_result(key=key))

    def test_torn_tail_line_is_dropped(self, tmp_path, make_result):
        good = self.good_line(make_result)
        # A record half-written when the process was killed: no newline,
        # truncated mid-JSON.
        self.write_lines(tmp_path, [good, good.replace("b", "c")[: len(good) // 2]])
        journal = journal_at(tmp_path)
        restored = journal.load()
        assert len(restored) == 1
        assert journal.corrupt_dropped == 1

    def test_garbage_line_is_dropped(self, tmp_path, make_result):
        good = self.good_line(make_result)
        self.write_lines(tmp_path, ["{not json at all\n", good])
        restored = journal_at(tmp_path).load()
        assert len(restored) == 1

    def test_checksum_mismatch_is_dropped(self, tmp_path, make_result):
        good = self.good_line(make_result)
        envelope = json.loads(good)
        envelope["result"]["seed"] = envelope["result"]["seed"] + 1  # tamper
        self.write_lines(tmp_path, [json.dumps(envelope) + "\n", good])
        journal = journal_at(tmp_path)
        restored = journal.load()
        assert len(restored) == 1
        assert journal.corrupt_dropped == 1

    def test_load_heals_file_atomically(self, tmp_path, make_result):
        good = self.good_line(make_result)
        path = self.write_lines(tmp_path, [good, "garbage\n"])
        journal_at(tmp_path).load()
        # After healing the file holds exactly the trusted records.
        healed = path.read_text(encoding="utf-8")
        assert healed == good
        reloaded = journal_at(tmp_path)
        reloaded.load()
        assert reloaded.corrupt_dropped == 0

    def test_load_without_heal_leaves_file_alone(self, tmp_path, make_result):
        good = self.good_line(make_result)
        path = self.write_lines(tmp_path, [good, "garbage\n"])
        journal_at(tmp_path).load(heal=False)
        assert "garbage" in path.read_text(encoding="utf-8")


class TestSweepKey:
    def test_key_is_stable_for_identical_inputs(self, mini_preset, mini_grid):
        spec = SweepSpec(preset=mini_preset)
        assert sweep_key(spec, mini_grid, 2, 0) == sweep_key(spec, mini_grid, 2, 0)

    def test_key_covers_every_identifying_input(self, mini_preset, mini_grid):
        spec = SweepSpec(preset=mini_preset)
        base = sweep_key(spec, mini_grid, 2, 0)
        assert sweep_key(spec, mini_grid[:2], 2, 0) != base  # grid
        assert sweep_key(spec, list(reversed(mini_grid)), 2, 0) != base  # order
        assert sweep_key(spec, mini_grid, 3, 0) != base  # n_runs
        assert sweep_key(spec, mini_grid, 2, 7) != base  # base_seed
        shorter = SweepSpec(preset=mini_preset, duration_s=1.0)
        assert sweep_key(shorter, mini_grid, 2, 0) != base  # duration
        assert (
            sweep_key(spec, mini_grid, 2, 0, engine_signature="other-engine")
            != base
        )  # engine version


@pytest.mark.fault
class TestRunnerResume:
    def run_sweep(self, mini_preset, mini_grid, tmp_path, resume):
        runner = SweepRunner(
            mini_preset,
            n_workers=1,
            cache=NullCache(),
            checkpoint_dir=str(tmp_path / "ckpt"),
            resume=resume,
        )
        return runner.run(mini_grid, n_runs=1, base_seed=0, parallel=False)

    def test_full_resume_recomputes_nothing(self, mini_preset, mini_grid, tmp_path):
        first = self.run_sweep(mini_preset, mini_grid, tmp_path, resume=False)
        assert first.checkpoint_reused == 0
        assert len(first.points) == len(mini_grid)

        second = self.run_sweep(mini_preset, mini_grid, tmp_path, resume=True)
        assert second.checkpoint_reused == len(mini_grid)
        by_key = {point.key: point for point in first.points}
        for point in second.points:
            assert point.identical_to(by_key[point.key])

    def test_partial_resume_recomputes_only_missing(
        self, mini_preset, mini_grid, tmp_path
    ):
        first = self.run_sweep(mini_preset, mini_grid, tmp_path, resume=False)

        # Simulate a sweep killed partway: keep only the first 2 journal
        # records (appends are newline-terminated, so complete lines are
        # complete records).
        ckpt_dir = tmp_path / "ckpt"
        (journal_path,) = list(ckpt_dir.glob("*.jsonl"))
        lines = journal_path.read_text(encoding="utf-8").splitlines(keepends=True)
        journal_path.write_text("".join(lines[:2]), encoding="utf-8")

        second = self.run_sweep(mini_preset, mini_grid, tmp_path, resume=True)
        assert second.checkpoint_reused == 2
        assert len(second.points) == len(mini_grid)
        by_key = {point.key: point for point in first.points}
        for point in second.points:
            assert point.identical_to(by_key[point.key])

    def test_without_resume_journal_is_truncated(
        self, mini_preset, mini_grid, tmp_path
    ):
        self.run_sweep(mini_preset, mini_grid, tmp_path, resume=False)
        rerun = self.run_sweep(mini_preset, mini_grid, tmp_path, resume=False)
        assert rerun.checkpoint_reused == 0

    def test_changed_grid_uses_a_fresh_journal(
        self, mini_preset, mini_grid, tmp_path
    ):
        # The journal file is named by the sweep content key, so resuming
        # a *different* sweep (here: a widened grid) can never replay
        # another sweep's records.
        self.run_sweep(mini_preset, mini_grid[:2], tmp_path, resume=False)
        widened = self.run_sweep(mini_preset, mini_grid, tmp_path, resume=True)
        assert widened.checkpoint_reused == 0
        assert len(list((tmp_path / "ckpt").glob("*.jsonl"))) == 2

    def test_cache_hits_are_journaled(self, mini_preset, mini_grid, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        ckpt = str(tmp_path / "ckpt")

        def run(resume):
            runner = SweepRunner(
                mini_preset,
                n_workers=1,
                cache=cache,
                checkpoint_dir=ckpt,
                resume=resume,
            )
            return runner.run(mini_grid, n_runs=1, base_seed=0, parallel=False)

        run(resume=False)
        # Second run: everything is a cache hit — but a resume must not
        # depend on the cache surviving, so hits land in the journal too.
        warm = run(resume=False)
        assert warm.cache_hits == len(mini_grid)

        (journal_path,) = list((tmp_path / "ckpt").glob("*.jsonl"))
        journal = SweepJournal(str(journal_path))
        assert len(journal.load()) == len(mini_grid)

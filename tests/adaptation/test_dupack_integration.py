"""Integration: wiring the dupACK recommendation into a live sender."""

from repro.adaptation import ReorderingObservatory
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicSender, TcpSink


class TestDupAckWiring:
    def test_sender_accepts_recommended_threshold(self):
        """The observatory's recommendation plugs straight into the
        transport's ``dupack_threshold`` knob and flows still complete."""
        observatory = ReorderingObservatory()
        observatory.record_depths(("dc", "isp"), [0] * 950 + [4] * 50)
        recommendation = observatory.recommend(("dc", "isp"))
        assert recommendation.threshold > 3

        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = CubicSender(
            sim,
            top.senders[0],
            spec,
            300_000,
            done.append,
            dupack_threshold=recommendation.threshold,
        )
        sender.start()
        sim.run(until=60.0)
        assert done
        assert sender.dupack_threshold == recommendation.threshold

    def test_higher_threshold_delays_fast_retransmit_under_loss(self):
        """With drops present, a higher dupACK threshold means recovery
        triggers later (fewer fast retransmits, possibly more timeouts) —
        exactly the trade-off informed adaptation navigates."""

        def run(threshold):
            sim = Simulator()
            config = DumbbellConfig(
                n_senders=1,
                bottleneck_bandwidth_bps=4_000_000.0,
                rtt_s=0.08,
                buffer_bdp_multiple=0.5,
            )
            top = DumbbellTopology(sim, config)
            spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
            TcpSink(sim, top.receivers[0], spec)
            done = []
            sender = CubicSender(
                sim, top.senders[0], spec, 1_500_000, done.append,
                dupack_threshold=threshold,
            )
            sender.start()
            sim.run(until=200.0)
            assert done
            return sender.stats

        standard = run(3)
        raised = run(10)
        assert standard.fast_retransmits >= raised.fast_retransmits

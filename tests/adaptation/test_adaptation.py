"""Tests for informed adaptation: jitter buffers and dupACK thresholds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptation import (
    DupAckRecommendation,
    JitterObservatory,
    ReorderingObservatory,
    buffer_tradeoff_curve,
    late_loss_rate,
    reordering_depths,
)
from repro.adaptation.dupack import MAX_THRESHOLD
from repro.adaptation.jitterbuffer import UNINFORMED_DEFAULT_BUFFER_S
from repro.transport.base import DEFAULT_DUPACK_THRESHOLD

LOCATION = ("isp-a", "nyc")


class TestJitterObservatory:
    def test_recommend_without_data_falls_back(self):
        observatory = JitterObservatory()
        rec = observatory.recommend(LOCATION)
        assert rec.buffer_s == UNINFORMED_DEFAULT_BUFFER_S
        assert rec.samples == 0

    def test_recommendation_tracks_quantile(self):
        observatory = JitterObservatory()
        rng = np.random.default_rng(0)
        for jitter in rng.exponential(0.010, size=2000):
            observatory.record_jitter(LOCATION, float(jitter))
        rec = observatory.recommend(LOCATION, quantile=0.95, safety_factor=1.0)
        # p95 of Exp(0.010) is ~30 ms.
        assert rec.buffer_s == pytest.approx(0.030, rel=0.2)
        assert rec.samples == 2000

    def test_record_arrivals_converts_to_jitter(self):
        observatory = JitterObservatory()
        observatory.record_arrivals(LOCATION, [0.020, 0.025, 0.020], period_s=0.020)
        assert observatory.sample_count(LOCATION) == 3

    def test_validation(self):
        observatory = JitterObservatory()
        with pytest.raises(ValueError):
            observatory.record_jitter(LOCATION, -0.1)
        with pytest.raises(ValueError):
            observatory.record_arrivals(LOCATION, [0.02], period_s=0.0)
        with pytest.raises(ValueError):
            observatory.recommend(LOCATION, quantile=1.5)
        with pytest.raises(ValueError):
            JitterObservatory(max_samples_per_location=0)

    def test_locations_independent(self):
        observatory = JitterObservatory()
        observatory.record_jitter(LOCATION, 0.5)
        other = observatory.recommend(("isp-b", "lon"))
        assert other.samples == 0


class TestLateLoss:
    def test_zero_buffer_loses_all_but_fastest(self):
        delays = [0.10, 0.11, 0.12, 0.10]
        assert late_loss_rate(delays, 0.0) == pytest.approx(0.5)

    def test_large_buffer_loses_nothing(self):
        delays = [0.10, 0.11, 0.12]
        assert late_loss_rate(delays, 0.05) == 0.0

    def test_empty(self):
        assert late_loss_rate([], 0.01) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            late_loss_rate([0.1], -0.01)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=200),
        st.floats(min_value=0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_late_loss_monotone_in_buffer(self, delays, buffer_s):
        smaller = late_loss_rate(delays, buffer_s / 2)
        larger = late_loss_rate(delays, buffer_s)
        assert larger <= smaller

    def test_tradeoff_curve_monotone(self):
        rng = np.random.default_rng(1)
        delays = 0.1 + rng.exponential(0.02, size=500)
        curve = buffer_tradeoff_curve(delays, [0.0, 0.01, 0.05, 0.2])
        losses = [loss for _b, loss in curve]
        assert losses == sorted(losses, reverse=True)
        assert losses[-1] < losses[0]


class TestReorderingDepths:
    def test_in_order_all_zero(self):
        assert reordering_depths([0, 1, 2, 3]) == [0, 0, 0, 0]

    def test_single_swap(self):
        # Packet 1 arrives after 2: when 2 arrives, 1 is missing (depth 1).
        assert reordering_depths([0, 2, 1, 3]) == [0, 1, 0, 0]

    def test_deep_reorder(self):
        # Packet 4 arrives first among 0..4: four earlier ones missing.
        assert reordering_depths([4, 0, 1, 2, 3]) == [4, 0, 0, 0, 0]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            reordering_depths([0, 0])


class TestReorderingObservatory:
    PATH = ("dc-east", "isp-a")

    def test_default_threshold_without_data(self):
        observatory = ReorderingObservatory()
        rec = observatory.recommend(self.PATH)
        assert rec.threshold == DEFAULT_DUPACK_THRESHOLD
        assert rec.samples == 0

    def test_ordered_path_keeps_standard_threshold(self):
        observatory = ReorderingObservatory()
        observatory.record_depths(self.PATH, [0] * 1000)
        rec = observatory.recommend(self.PATH)
        assert rec.threshold == 3
        assert rec.spurious_probability == 0.0

    def test_reordering_path_raises_threshold(self):
        observatory = ReorderingObservatory()
        # 5% of packets arrive with depth 4: threshold 3 or 4 would fire
        # spuriously far above a 0.1% target.
        depths = [0] * 950 + [4] * 50
        observatory.record_depths(self.PATH, depths)
        rec = observatory.recommend(self.PATH, target_spurious=0.001)
        assert rec.threshold == 5
        assert rec.spurious_probability <= 0.001

    def test_pathological_path_capped(self):
        observatory = ReorderingObservatory()
        observatory.record_depths(self.PATH, [20] * 100)
        rec = observatory.recommend(self.PATH)
        assert rec.threshold == MAX_THRESHOLD

    def test_record_arrivals(self):
        observatory = ReorderingObservatory()
        observatory.record_arrivals(self.PATH, [0, 2, 1])
        assert observatory.sample_count(self.PATH) == 3

    def test_spurious_probability(self):
        observatory = ReorderingObservatory()
        observatory.record_depths(self.PATH, [0, 0, 3, 3])
        assert observatory.spurious_probability(self.PATH, 3) == pytest.approx(0.5)
        assert observatory.spurious_probability(self.PATH, 4) == 0.0

    def test_validation(self):
        observatory = ReorderingObservatory()
        with pytest.raises(ValueError):
            observatory.record_depths(self.PATH, [-1])
        with pytest.raises(ValueError):
            observatory.spurious_probability(self.PATH, 0)
        with pytest.raises(ValueError):
            observatory.recommend(self.PATH, target_spurious=0.0)
        with pytest.raises(ValueError):
            ReorderingObservatory(max_samples_per_path=0)

    def test_paths_independent(self):
        observatory = ReorderingObservatory()
        observatory.record_depths(self.PATH, [9] * 10)
        other = observatory.recommend(("dc-west", "isp-b"))
        assert other.threshold == DEFAULT_DUPACK_THRESHOLD

"""Tests for run manifests: build, validate, round-trip, summarize."""

import json

import pytest

from repro import telemetry
from repro.experiments.scenarios import ScenarioPreset
from repro.phi.channel import ChannelConfig, ControlChannel
from repro.phi.context import CongestionContext
from repro.runner import ENGINE_SIGNATURE, SweepRunner
from repro.runner.cache import MemoryCache
from repro.simnet import Simulator
from repro.simnet.topology import DumbbellConfig
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    git_describe,
    load_manifest,
    run_manifest,
    summarize_manifest,
    sweep_manifest,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.registry import histogram_percentile
from repro.transport.cubic import cubic_sweep_grid
from repro.workload.onoff import OnOffConfig

TINY_PRESET = ScenarioPreset(
    name="tiny-telemetry",
    config=DumbbellConfig(n_senders=2),
    workload=OnOffConfig(mean_on_bytes=40_000, mean_off_s=0.5),
    duration_s=1.0,
    description="minimal fixture for manifest tests",
)

TINY_GRID = list(
    cubic_sweep_grid(
        ssthresh_range=[2.0, 64.0], window_init_range=[4.0], beta_range=[0.2]
    )
)


def _sweep_with_telemetry(cache=None, **runner_kwargs):
    with telemetry.use() as tele:
        runner = SweepRunner(
            TINY_PRESET,
            n_workers=1,
            cache=cache if cache is not None else MemoryCache(),
            **runner_kwargs,
        )
        outcome = runner.run(TINY_GRID, n_runs=1, base_seed=0)
        snapshots = [tele.registry.snapshot()]
        if outcome.telemetry is not None:
            snapshots.append(outcome.telemetry)
        metrics = telemetry.merge_snapshots(snapshots)
    return outcome, metrics


class TestGitDescribe:
    def test_inside_repo_returns_string(self):
        described = git_describe()
        assert described is None or isinstance(described, str)

    def test_outside_repo_returns_none(self, tmp_path):
        assert git_describe(cwd=str(tmp_path)) is None


class TestRunManifest:
    def test_valid_and_round_trips(self, tmp_path):
        with telemetry.use() as tele:
            tele.registry.counter("sim.events").inc(100)
            manifest = run_manifest(
                command="cubic",
                preset_name="tiny-telemetry",
                seed=3,
                duration_s=1.0,
                metrics=tele.registry.snapshot(),
            )
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["engine_signature"] == ENGINE_SIGNATURE
        assert manifest["seeds"] == {"seed": 3}
        path = tmp_path / "manifest.json"
        write_manifest(manifest, str(path))
        loaded = load_manifest(str(path))
        assert loaded == json.loads(json.dumps(manifest))

    def test_config_hash_tracks_config(self):
        a = run_manifest(
            command="cubic", preset_name="p", seed=0, duration_s=1.0,
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
        )
        b = run_manifest(
            command="cubic", preset_name="p", seed=0, duration_s=2.0,
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
        )
        assert a["config_hash"] != b["config_hash"]


class TestValidateManifest:
    def _valid(self):
        return run_manifest(
            command="x", preset_name="p", seed=0, duration_s=1.0,
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
        )

    def test_not_a_dict(self):
        assert validate_manifest([]) == ["manifest is not a JSON object"]

    def test_wrong_schema(self):
        manifest = self._valid()
        manifest["schema"] = "nope/0"
        assert any("schema" in error for error in validate_manifest(manifest))

    def test_missing_key(self):
        manifest = self._valid()
        del manifest["seeds"]
        assert "missing key 'seeds'" in validate_manifest(manifest)

    def test_bad_metrics_section(self):
        manifest = self._valid()
        manifest["metrics"] = {"counters": {}}
        errors = validate_manifest(manifest)
        assert any("gauges" in error for error in errors)

    def test_bad_histogram_shape(self):
        manifest = self._valid()
        manifest["metrics"]["histograms"]["h"] = {
            "bounds": [1.0, 2.0], "bucket_counts": [1, 2],
        }
        assert any("bounds+1" in error for error in validate_manifest(manifest))

    def test_bad_point_status(self):
        manifest = self._valid()
        manifest["points"].append(
            {"key": "k", "seed": 0, "status": "imaginary",
             "retries": 0, "failures": []}
        )
        assert any("unknown status" in error for error in validate_manifest(manifest))

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_manifest(str(path))


class TestSweepManifest:
    def test_points_and_totals(self, tmp_path):
        outcome, metrics = _sweep_with_telemetry()
        manifest = sweep_manifest(outcome, metrics=metrics)
        assert validate_manifest(manifest) == []
        assert len(manifest["points"]) == len(TINY_GRID)
        for point in manifest["points"]:
            assert point["status"] == "computed"
            assert point["retries"] == 0
            assert point["events_processed"] > 0
            assert point["metrics"]["throughput_mbps"] >= 0.0
        totals = manifest["totals"]
        assert totals["points"] == len(TINY_GRID)
        assert totals["cache_hits"] == 0
        assert totals["quarantined"] == 0
        # The merged worker metrics made it in.
        assert manifest["metrics"]["counters"]["sim.events"] > 0
        path = tmp_path / "sweep_manifest.json"
        write_manifest(manifest, str(path))
        assert validate_manifest(load_manifest(str(path))) == []

    def test_cache_hits_show_as_cached_provenance(self):
        cache = MemoryCache()
        _sweep_with_telemetry(cache=cache)
        outcome, metrics = _sweep_with_telemetry(cache=cache)
        manifest = sweep_manifest(outcome, metrics=metrics)
        assert manifest["totals"]["cache_hits"] == len(TINY_GRID)
        assert all(p["status"] == "cached" for p in manifest["points"])
        # Cache hits are recoverable from the manifest without re-running.
        assert manifest["metrics"]["counters"]["runner.cache_hits"] == float(
            len(TINY_GRID)
        )

    def test_summarize_renders_table(self):
        outcome, metrics = _sweep_with_telemetry()
        manifest = sweep_manifest(outcome, metrics=metrics)
        rendered = summarize_manifest(manifest)
        assert "engine " + ENGINE_SIGNATURE in rendered
        assert "sim.events" in rendered
        assert "computed" in rendered
        assert "p99" in rendered


class _Backend:
    def lookup(self):
        return CongestionContext.idle()


class TestPhiLatencyRecovery:
    """Acceptance: RPC latency percentiles recoverable from a manifest."""

    def test_percentiles_from_manifest(self, tmp_path):
        with telemetry.use() as tele:
            sim = Simulator()
            channel = ControlChannel(
                sim, _Backend(), config=ChannelConfig(latency_s=0.005)
            )
            for _ in range(20):
                assert channel.call_lookup().ok
            manifest = run_manifest(
                command="channel-bench",
                preset_name="none",
                seed=0,
                duration_s=0.0,
                metrics=tele.registry.snapshot(),
            )
        path = tmp_path / "m.json"
        write_manifest(manifest, str(path))
        loaded = load_manifest(str(path))
        histogram = loaded["metrics"]["histograms"]["phi.rpc_latency_s{op=lookup}"]
        assert histogram["count"] == 20
        p50 = histogram_percentile(histogram, 50)
        p99 = histogram_percentile(histogram, 99)
        # Every call took exactly 5 ms; bucket edges bound the estimate.
        assert 0.002 <= p50 <= 0.005
        assert p99 <= histogram["max"] == 0.005
        assert loaded["metrics"]["counters"][
            "phi.rpc_calls{op=lookup,status=ok}"
        ] == 20.0

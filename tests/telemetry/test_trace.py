"""Tests for the sim-time-aware tracer: bounds, spans, JSONL sink."""

import json

import pytest

from repro.telemetry.trace import NullTracer, Tracer


class TestEvents:
    def test_event_records_both_clocks(self):
        tracer = Tracer()
        tracer.event("watchdog_trip", sim_time=12.5, reason="max_events")
        (record,) = tracer.records()
        assert record["name"] == "watchdog_trip"
        assert record["kind"] == "event"
        assert record["sim_time"] == 12.5
        assert record["wall_time"] >= 0.0
        assert record["fields"] == {"reason": "max_events"}

    def test_event_without_fields_omits_key(self):
        tracer = Tracer()
        tracer.event("tick")
        (record,) = tracer.records()
        assert "fields" not in record

    def test_span_measures_duration_and_accepts_fields(self):
        tracer = Tracer()
        with tracer.span("point", sim_time=3.0, index=7) as record:
            record["fields"]["extra"] = "added-inside"
        (record,) = tracer.records()
        assert record["kind"] == "span"
        assert record["duration_s"] >= 0.0
        assert record["fields"] == {"index": 7, "extra": "added-inside"}

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        assert len(tracer.records()) == 1


class TestBoundedMemory:
    def test_ring_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(10):
            tracer.event("e", index=index)
        records = tracer.records()
        assert len(records) == 3
        assert [r["fields"]["index"] for r in records] == [7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.evicted == 7

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.event("e")
        tracer.clear()
        assert tracer.records() == []
        assert tracer.emitted == 0


class TestJsonlSink:
    def test_dump_writes_header_then_records(self, tmp_path):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.event("e", sim_time=float(index))
        path = tmp_path / "trace.jsonl"
        retained = tracer.dump_jsonl(str(path))
        assert retained == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        header = lines[0]
        assert header["kind"] == "header"
        assert header["emitted"] == 5
        assert header["evicted"] == 3
        assert header["capacity"] == 2
        assert [line["sim_time"] for line in lines[1:]] == [3.0, 4.0]


class TestNullTracer:
    def test_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.event("e", sim_time=1.0)
        with tracer.span("s") as record:
            assert record == {}
        assert tracer.records() == []
        assert tracer.emitted == 0

"""Shared guard: no test may leak an enabled global telemetry session."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    yield
    telemetry.disable()

"""Tracer ring semantics: wraparound accounting, round-trip, strict JSON.

Complements ``test_trace.py`` (basic events/spans): these tests pin the
bounded-ring contract the flight recorder's anomaly funnels depend on —
eviction counts that stay truthful across wraparound, a dump that loads
back bit-equal, and hard rejection of NaN/infinity.
"""

import json
import math

import pytest

from repro.telemetry.trace import Tracer, load_jsonl


class TestWraparoundAccounting:
    def test_eviction_counts_across_many_wraps(self):
        tracer = Tracer(capacity=4)
        for i in range(23):
            tracer.event("tick", sim_time=float(i), i=i)
        assert tracer.emitted == 23
        assert tracer.evicted == 19
        assert len(tracer.records()) == 4
        # The ring keeps the newest window, oldest first.
        assert [r["fields"]["i"] for r in tracer.records()] == [19, 20, 21, 22]

    def test_exact_fill_evicts_nothing(self):
        tracer = Tracer(capacity=3)
        for i in range(3):
            tracer.event("tick", i=i)
        assert tracer.evicted == 0

    def test_spans_count_toward_the_same_ring(self):
        tracer = Tracer(capacity=2)
        tracer.event("first")
        with tracer.span("second"):
            pass
        tracer.event("third")
        assert tracer.emitted == 3 and tracer.evicted == 1
        assert [r["name"] for r in tracer.records()] == ["second", "third"]

    def test_clear_resets_accounting(self):
        tracer = Tracer(capacity=1)
        tracer.event("a")
        tracer.event("b")
        tracer.clear()
        assert tracer.emitted == 0 and tracer.evicted == 0
        assert tracer.records() == []


class TestRoundTrip:
    def test_dump_load_round_trip_preserves_records(self, tmp_path):
        tracer = Tracer(capacity=8)
        tracer.event("point_start", sim_time=0.0, index=3)
        with tracer.span("point", sim_time=1.5, key="abc") as span:
            span["fields"]["extra"] = "late"
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(str(path)) == 2
        header, records = load_jsonl(str(path))
        assert records == tracer.records()
        assert header["emitted"] == 2
        assert header["evicted"] == 0
        assert header["capacity"] == 8

    def test_header_reports_truncation_after_wraparound(self, tmp_path):
        tracer = Tracer(capacity=2)
        for i in range(7):
            tracer.event("tick", i=i)
        path = tmp_path / "trace.jsonl"
        tracer.dump_jsonl(str(path))
        header, records = load_jsonl(str(path))
        assert header == {
            "name": "trace.header",
            "kind": "header",
            "emitted": 7,
            "evicted": 5,
            "capacity": 2,
        }
        assert [r["fields"]["i"] for r in records] == [5, 6]

    def test_dump_is_strict_one_object_per_line(self, tmp_path):
        tracer = Tracer()
        tracer.event("tick", nested={"deep": [1, 2, 3]})
        path = tmp_path / "trace.jsonl"
        tracer.dump_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + record
        for line in lines:
            assert isinstance(json.loads(line), dict)


class TestNonFiniteRejection:
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_dump_rejects_non_finite_fields(self, tmp_path, bad):
        tracer = Tracer()
        tracer.event("tick", value=bad)
        with pytest.raises(ValueError):
            tracer.dump_jsonl(str(tmp_path / "trace.jsonl"))

    def test_non_finite_sim_time_rejected(self, tmp_path):
        tracer = Tracer()
        tracer.event("tick", sim_time=math.inf)
        with pytest.raises(ValueError):
            tracer.dump_jsonl(str(tmp_path / "trace.jsonl"))

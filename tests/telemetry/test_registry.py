"""Tests for the metrics registry: metric semantics, snapshots, merging."""

import pytest

from repro import telemetry
from repro.telemetry.registry import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    flat_key,
    histogram_percentile,
    mean,
    merge_snapshots,
)


class TestHelpers:
    def test_mean_of_values(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_uses_default(self):
        assert mean([]) == 0.0
        assert mean([], default=-1.0) == -1.0

    def test_flat_key_without_labels(self):
        assert flat_key("sim.events", ()) == "sim.events"

    def test_flat_key_with_labels(self):
        key = flat_key("link.drops", (("link", "bottleneck"), ("side", "a")))
        assert key == "link.drops{link=bottleneck,side=a}"


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_value_peak_updates(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.peak == 7.0
        assert gauge.updates == 3


class TestHistogram:
    def test_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_bounds_must_be_distinct(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])

    def test_bounds_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_observe_places_in_buckets(self):
        histogram = Histogram([1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 3.0, 9.0):
            histogram.observe(value)
        # bounds are inclusive upper edges; 9.0 overflows.
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == 15.0
        assert histogram.min == 0.5
        assert histogram.max == 9.0

    def test_mean(self):
        histogram = Histogram([10.0])
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0
        assert Histogram([10.0]).mean == 0.0

    def test_percentile_interpolates(self):
        histogram = Histogram([1.0, 2.0, 3.0, 4.0])
        for value in (0.5, 1.5, 2.5, 3.5):
            histogram.observe(value)
        assert histogram.percentile(0) <= 1.0
        assert 1.0 <= histogram.percentile(50) <= 2.0
        # Clamped to the observed max, not the bucket's upper edge.
        assert histogram.percentile(100) == 3.5

    def test_percentile_never_exceeds_observed_range(self):
        histogram = Histogram([10.0, 100.0])
        histogram.observe(41.0)
        for p in (1, 50, 99, 100):
            assert histogram.percentile(p) == 41.0

    def test_percentile_overflow_bucket_reports_max(self):
        histogram = Histogram([1.0])
        histogram.observe(123.0)
        assert histogram.percentile(99) == 123.0

    def test_percentile_empty_is_zero(self):
        assert Histogram([1.0]).percentile(50) == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).percentile(101)


class TestMetricsRegistry:
    def test_same_identity_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("calls", op="lookup")
        b = registry.counter("calls", op="lookup")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("calls", op="lookup", node="x")
        b = registry.counter("calls", node="x", op="lookup")
        assert a is b

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        assert registry.counter("calls", op="lookup") is not registry.counter(
            "calls", op="report"
        )

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", [1.0, 2.0])
        with pytest.raises(ValueError):
            registry.histogram("lat", [1.0, 3.0])

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("depth").set(4.0)
        registry.histogram("lat", [1.0]).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["gauges"]["depth"] == {
            "value": 4.0, "peak": 4.0, "updates": 1,
        }
        histogram = snapshot["histograms"]["lat"]
        assert histogram["bounds"] == [1.0]
        assert histogram["bucket_counts"] == [1, 0]
        assert histogram["min"] == 0.5 and histogram["max"] == 0.5

    def test_snapshot_empty_histogram_minmax_none(self):
        registry = MetricsRegistry()
        registry.histogram("lat", [1.0])
        histogram = registry.snapshot()["histograms"]["lat"]
        assert histogram["min"] is None and histogram["max"] is None

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestNullRegistry:
    def test_disabled_and_noop(self):
        registry = NullRegistry()
        assert not registry.enabled
        counter = registry.counter("a")
        counter.inc(5)
        assert counter.value == 0.0
        gauge = registry.gauge("g")
        gauge.set(3.0)
        assert gauge.value == 0.0
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        assert histogram.count == 0

    def test_metrics_are_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b", any_label=1)


def _worker_snapshot(calls, drops, latencies):
    """Build one 'worker' snapshot with labels overlapping across workers."""
    registry = MetricsRegistry()
    registry.counter("phi.rpc_calls", op="lookup", status="ok").inc(calls)
    registry.counter("link.drops", link="bottleneck").inc(drops)
    registry.gauge("sim.pending_events").set(calls)
    histogram = registry.histogram("phi.rpc_latency_s", LATENCY_BUCKETS_S, op="lookup")
    for latency in latencies:
        histogram.observe(latency)
    return registry.snapshot()


class TestMergeSnapshots:
    """Satellite: cross-process merge is associative and order-insensitive."""

    def test_counters_add_and_gauges_take_max(self):
        a = _worker_snapshot(3, 1, [0.001])
        b = _worker_snapshot(5, 0, [0.002])
        merged = merge_snapshots([a, b])
        assert merged["counters"]["phi.rpc_calls{op=lookup,status=ok}"] == 8.0
        assert merged["counters"]["link.drops{link=bottleneck}"] == 1.0
        gauge = merged["gauges"]["sim.pending_events"]
        assert gauge["value"] == 5.0 and gauge["updates"] == 2

    def test_histograms_merge_bucket_wise(self):
        a = _worker_snapshot(1, 0, [0.001, 0.010])
        b = _worker_snapshot(1, 0, [0.010, 0.500])
        histogram = merge_snapshots([a, b])["histograms"][
            "phi.rpc_latency_s{op=lookup}"
        ]
        assert histogram["count"] == 4
        assert histogram["min"] == 0.001 and histogram["max"] == 0.5
        assert sum(histogram["bucket_counts"]) == 4

    def test_two_snapshot_merge_is_bit_identical_either_order(self):
        # Overlapping labels, awkward float values: merging A then B must
        # serialize byte-for-byte the same as B then A (IEEE addition of
        # two floats commutes; key order is canonicalized by sorting).
        a = _worker_snapshot(3, 7, [0.0001, 0.123456789, 3.3])
        b = _worker_snapshot(11, 2, [0.1, 0.2, 0.30000000000000004])
        import json

        ab = json.dumps(merge_snapshots([a, b]), sort_keys=True)
        ba = json.dumps(merge_snapshots([b, a]), sort_keys=True)
        assert ab == ba

    def test_merge_is_associative(self):
        a = _worker_snapshot(1, 1, [0.001])
        b = _worker_snapshot(2, 2, [0.002])
        c = _worker_snapshot(3, 3, [0.004])
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    def test_merge_empty_iterable(self):
        assert merge_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_bounds_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", [1.0]).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", [2.0]).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_empty_histogram_merges_with_live_one(self):
        a = MetricsRegistry()
        a.histogram("h", [1.0])
        b = MetricsRegistry()
        b.histogram("h", [1.0]).observe(0.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["histograms"]["h"]["min"] == 0.5


class TestHistogramPercentileFromSnapshot:
    def test_matches_live_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", LATENCY_BUCKETS_S)
        for latency in (0.001, 0.002, 0.005, 0.010, 0.050):
            histogram.observe(latency)
        snapshot = registry.snapshot()["histograms"]["lat"]
        for p in (10, 50, 90, 99):
            assert histogram_percentile(snapshot, p) == histogram.percentile(p)


class TestSessionPlumbing:
    def test_disabled_by_default(self):
        assert not telemetry.session().enabled

    def test_enable_disable_round_trip(self):
        live = telemetry.enable()
        assert telemetry.session() is live
        assert telemetry.session().enabled
        # Enabling again keeps the same session (metrics survive).
        live.registry.counter("x").inc()
        assert telemetry.enable() is live
        telemetry.disable()
        assert not telemetry.session().enabled

    def test_use_scopes_and_restores(self):
        before = telemetry.session()
        with telemetry.use() as tele:
            assert telemetry.session() is tele
            tele.registry.counter("scoped").inc()
        assert telemetry.session() is before

    def test_use_restores_after_exception(self):
        before = telemetry.session()
        with pytest.raises(RuntimeError):
            with telemetry.use():
                raise RuntimeError("boom")
        assert telemetry.session() is before

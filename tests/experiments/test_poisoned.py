"""Tests for the X6 Byzantine-context experiment harness."""

import pytest

from repro import telemetry
from repro.experiments.poisoned import (
    PoisonSweepRow,
    check_harm_demonstrated,
    check_safety_envelope,
    run_poison_sweep,
    run_poisoned_phi_cubic,
)
from repro.experiments.scenarios import TABLE3_REMY, run_cubic_fixed
from repro.phi.policy import REFERENCE_POLICY
from repro.telemetry.manifest import poison_manifest, validate_manifest
from repro.transport.cubic import CubicParams

DURATION = 8.0


def poisoned(**overrides):
    kwargs = dict(
        severity=1.0, seed=0, modes=("garbage",), guarded=True,
        duration_s=DURATION,
    )
    kwargs.update(overrides)
    return run_poisoned_phi_cubic(REFERENCE_POLICY, TABLE3_REMY, **kwargs)


class TestRunValidation:
    def test_severity_range_enforced(self):
        with pytest.raises(ValueError, match="severity"):
            poisoned(severity=1.5)
        with pytest.raises(ValueError, match="severity"):
            poisoned(severity=-0.1)

    def test_byzantine_fraction_range_enforced(self):
        with pytest.raises(ValueError, match="byzantine_fraction"):
            poisoned(byzantine_fraction=2.0)


class TestGuardedRun:
    def test_garbage_at_full_severity_is_bitwise_baseline(self):
        """The hard safety floor: when every context is rejected, every
        connection runs stock defaults — the run is *bit-identical* to
        uncoordinated Cubic, not merely close."""
        run = poisoned()
        baseline = run_cubic_fixed(
            CubicParams.default(), TABLE3_REMY, seed=0, duration_s=DURATION
        )
        assert run.metrics == baseline.metrics
        decisions = run.decision_counts
        assert decisions["fresh"] == 0
        assert decisions["fallback"] > 0
        assert sum(run.guard_rejections.values()) == decisions["fallback"]

    def test_rejection_reasons_recorded(self):
        run = poisoned()
        assert set(run.guard_rejections) <= {"non_finite", "out_of_range"}
        assert run.contexts_corrupted == sum(run.guard_rejections.values())

    def test_byzantine_reports_poisoned_and_rejected(self):
        run = poisoned(severity=0.0, byzantine_fraction=1.0)
        assert run.reports_poisoned > 0
        # Robust aggregation drops the structurally invalid flavours.
        assert run.reports_rejected > 0


class TestUnguardedRun:
    def test_defences_absent(self):
        run = poisoned(guarded=False)
        assert run.guard_rejections == {}
        assert run.reports_rejected == 0
        assert run.trust_score == 1.0
        assert run.decision_counts["distrusted"] == 0
        # The lies flow straight through to the policy table.
        assert run.contexts_corrupted > 0
        assert run.decision_counts["fresh"] > 0


@pytest.mark.byzantine
class TestSweepDeterminism:
    def test_serial_and_parallel_bit_identical(self):
        kwargs = dict(
            severities=(0.0, 1.0), seeds=(0,), modes=("garbage",),
            duration_s=DURATION, collect_telemetry=False,
        )
        serial = run_poison_sweep(
            REFERENCE_POLICY, TABLE3_REMY, parallel=False, **kwargs
        )
        parallel = run_poison_sweep(
            REFERENCE_POLICY, TABLE3_REMY, n_workers=2, **kwargs
        )
        assert len(serial.results) == len(parallel.results) == 2
        for mine, theirs in zip(serial.results, parallel.results):
            assert mine.identical_to(theirs)

    def test_sweep_telemetry_and_manifest(self):
        with telemetry.use():
            outcome = run_poison_sweep(
                REFERENCE_POLICY, TABLE3_REMY,
                severities=(1.0,), seeds=(0,), modes=("garbage",),
                duration_s=DURATION, parallel=False, collect_telemetry=True,
            )
        counters = outcome.telemetry["counters"]
        assert any("phi.guard_rejections" in key for key in counters)
        manifest = poison_manifest(outcome)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "poison"
        point = manifest["points"][0]
        assert point["defence"]["guard_rejections"]
        assert "decision_counts" in manifest["totals"]
        assert "baseline_power_by_seed" in manifest["totals"]


def row(power=1.0, tput=1.0, *, base_power=1.0, base_tput=1.0, severity=0.5):
    return PoisonSweepRow(
        severity=severity,
        byzantine_fraction=0.0,
        mean_power_l=power,
        mean_throughput_mbps=tput,
        mean_delay_ms=1.0,
        baseline_power_l=base_power,
        baseline_throughput_mbps=base_tput,
        decision_counts={},
        guard_rejections={},
        reports_rejected=0,
        mean_trust_score=1.0,
        distrust_entries=0,
    )


class FakeOutcome:
    def __init__(self, rows):
        self.rows = rows


class TestEnvelopeChecker:
    def test_holds_within_tolerance(self):
        outcome = FakeOutcome([row(0.97, 0.96)])
        assert check_safety_envelope(outcome, rel_tol=0.05) == []
        assert not check_harm_demonstrated(outcome, rel_tol=0.05)

    def test_power_violation_reported(self):
        outcome = FakeOutcome([row(0.90, 1.0)])
        violations = check_safety_envelope(outcome, rel_tol=0.05)
        assert len(violations) == 1
        assert "power" in violations[0]

    def test_throughput_violation_reported(self):
        """Power alone cannot show inflation harm (the delay floor makes
        conservative parameters look great); the checker must watch the
        throughput axis too."""
        outcome = FakeOutcome([row(5.0, 0.6)])
        violations = check_safety_envelope(outcome, rel_tol=0.05)
        assert len(violations) == 1
        assert "throughput" in violations[0]
        assert check_harm_demonstrated(outcome, rel_tol=0.05)

    def test_both_axes_can_fail_one_row(self):
        outcome = FakeOutcome([row(0.5, 0.5)])
        assert len(check_safety_envelope(outcome, rel_tol=0.05)) == 2

    def test_ratio_properties(self):
        healthy = row(2.0, 1.2, base_power=1.0, base_tput=1.0)
        assert healthy.power_vs_baseline == pytest.approx(2.0)
        assert healthy.throughput_vs_baseline == pytest.approx(1.2)
        degenerate = row(1.0, 1.0, base_power=0.0, base_tput=0.0)
        assert degenerate.power_vs_baseline == float("inf")

"""Tests for the X7 partition-tolerance experiment harness."""

import pytest

from repro import telemetry
from repro.experiments.partitioned import (
    PartitionSweepRow,
    check_partition_envelope,
    partition_indices,
    run_partition_sweep,
    run_partitioned_phi_cubic,
)
from repro.experiments.scenarios import ScenarioPreset
from repro.phi.deployment import DeploymentMode
from repro.phi.policy import REFERENCE_POLICY
from repro.simnet import DumbbellConfig
from repro.telemetry.manifest import partition_manifest, validate_manifest
from repro.workload import OnOffConfig

FAST = ScenarioPreset(
    name="partition-mini",
    config=DumbbellConfig(n_senders=4),
    workload=OnOffConfig(mean_on_bytes=200_000, mean_off_s=0.5),
    duration_s=25.0,
    description="small partition-tolerance smoke scenario",
)

DURATION = 25.0
START = 10.0  # past the staleness TTL — see the calibration caveat


def partitioned(**overrides):
    kwargs = dict(
        n_replicas=3, severity=0.34, heal_s=8.0, partition_start_s=START,
        seed=0, duration_s=DURATION,
    )
    kwargs.update(overrides)
    return run_partitioned_phi_cubic(REFERENCE_POLICY, FAST, **kwargs)


class TestPartitionIndices:
    def test_rounding_and_order(self):
        assert partition_indices(3, 0.0) == ([], [0, 1, 2])
        assert partition_indices(3, 0.34) == ([0], [1, 2])
        assert partition_indices(3, 0.5) == ([0, 1], [2])
        assert partition_indices(3, 1.0) == ([0, 1, 2], [])
        assert partition_indices(1, 1.0) == ([0], [])

    def test_lowest_indices_cut_first(self):
        """Replica 0 is every client's initial sticky choice — cutting it
        first is what makes a nonzero severity actually dislodge the
        serving replica."""
        cut, kept = partition_indices(5, 0.4)
        assert cut == [0, 1]
        assert kept == [2, 3, 4]


class TestRunValidation:
    def test_severity_range_enforced(self):
        with pytest.raises(ValueError, match="severity"):
            partitioned(severity=1.5)
        with pytest.raises(ValueError, match="severity"):
            partitioned(severity=-0.1)

    def test_replica_count_enforced(self):
        with pytest.raises(ValueError, match="n_replicas"):
            partitioned(n_replicas=0)

    def test_negative_heal_rejected(self):
        with pytest.raises(ValueError, match="heal"):
            partitioned(heal_s=-1.0)


class TestMinorityPartitionRun:
    def test_failover_masks_minority_cut(self):
        """Cutting replica 0 of 3 must trigger failover and keep every
        decision FRESH — the client never falls back to defaults."""
        run = partitioned()
        assert run.mode is DeploymentMode.REPLICATED
        assert run.n_cut == 1
        assert run.failovers >= 1
        assert run.anti_entropy_merges > 0
        assert run.decision_counts.get("fallback", 0) == 0
        assert run.decision_counts["fresh"] > 0

    def test_divergence_opens_then_closes(self):
        run = partitioned()
        assert run.max_divergence > 0
        assert run.final_divergence == pytest.approx(0.0, abs=1e-9)

    def test_full_cut_forces_fallback(self):
        run = partitioned(severity=1.0, heal_s=DURATION)
        assert run.n_cut == 3
        assert run.decision_counts.get("fallback", 0) > 0


@pytest.mark.partition
class TestSweepDeterminism:
    def test_serial_and_parallel_bit_identical(self):
        kwargs = dict(
            replica_counts=(1, 3), severities=(0.34,), heal_times=(8.0,),
            seeds=(0,), partition_start_s=START, duration_s=DURATION,
            collect_telemetry=False,
        )
        serial = run_partition_sweep(
            REFERENCE_POLICY, FAST, parallel=False, **kwargs
        )
        parallel = run_partition_sweep(
            REFERENCE_POLICY, FAST, n_workers=2, **kwargs
        )
        assert len(serial.results) == len(parallel.results) == 2
        for mine, theirs in zip(serial.results, parallel.results):
            assert mine.identical_to(theirs)

    def test_sweep_telemetry_and_manifest(self):
        with telemetry.use():
            outcome = run_partition_sweep(
                REFERENCE_POLICY, FAST,
                replica_counts=(3,), severities=(0.34,), heal_times=(8.0,),
                seeds=(0,), partition_start_s=START, duration_s=DURATION,
                parallel=False, collect_telemetry=True,
            )
        counters = outcome.telemetry["counters"]
        assert any("phi.replica_rpc_calls" in key for key in counters)
        manifest = partition_manifest(outcome)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "partition"
        point = manifest["points"][0]
        assert point["replication"]["failovers"] >= 1
        assert "stock_power_by_seed" in manifest["totals"]
        assert "degraded_power_by_heal_seed" in manifest["totals"]

    def test_minority_row_meets_both_floors(self):
        outcome = run_partition_sweep(
            REFERENCE_POLICY, FAST,
            replica_counts=(3,), severities=(0.34,), heal_times=(8.0,),
            seeds=(0,), partition_start_s=START, duration_s=DURATION,
            parallel=False,
        )
        assert check_partition_envelope(outcome, rel_tol=0.05) == []
        (row,) = outcome.rows
        assert row.minority
        assert row.power_vs_degraded >= 0.95
        assert row.throughput_vs_degraded >= 0.95


def row(
    power=1.0, tput=1.0, *, stock_power=1.0, stock_tput=1.0,
    degraded_power=0.8, degraded_tput=0.9, n_replicas=3, minority=True,
):
    return PartitionSweepRow(
        n_replicas=n_replicas,
        severity=0.34,
        heal_s=8.0,
        n_cut=1 if minority else n_replicas,
        minority=minority,
        mean_power_l=power,
        mean_throughput_mbps=tput,
        mean_delay_ms=1.0,
        stock_power_l=stock_power,
        stock_throughput_mbps=stock_tput,
        degraded_power_l=degraded_power,
        degraded_throughput_mbps=degraded_tput,
        decision_counts={},
        failovers=0,
        anti_entropy_merges=0,
        quorum_rejections=0,
        max_divergence=0.0,
    )


class FakeOutcome:
    def __init__(self, rows):
        self.rows = rows


class TestEnvelopeChecker:
    def test_holds_within_tolerance(self):
        outcome = FakeOutcome([row(0.97, 0.96)])
        assert check_partition_envelope(outcome, rel_tol=0.05) == []

    def test_stock_power_floor(self):
        outcome = FakeOutcome([row(0.90, 1.0, minority=False)])
        violations = check_partition_envelope(outcome, rel_tol=0.05)
        assert len(violations) == 1
        assert "stock floor" in violations[0] and "power" in violations[0]

    def test_stock_throughput_floor(self):
        outcome = FakeOutcome([row(1.0, 0.90, minority=False)])
        violations = check_partition_envelope(outcome, rel_tol=0.05)
        assert len(violations) == 1
        assert "throughput" in violations[0]

    def test_degraded_floor_only_for_minority_multireplica(self):
        # Above stock but below degraded: flagged only when the cut is a
        # minority of a multi-replica plane.
        weak = dict(power=0.97, tput=0.97, degraded_power=1.1, degraded_tput=1.1)
        flagged = check_partition_envelope(
            FakeOutcome([row(**weak, minority=True)]), rel_tol=0.05
        )
        assert len(flagged) == 2
        assert all("degraded floor" in v for v in flagged)
        spared = check_partition_envelope(
            FakeOutcome([row(**weak, minority=False)]), rel_tol=0.05
        )
        assert spared == []
        single = check_partition_envelope(
            FakeOutcome([row(**weak, n_replicas=1, minority=True)]),
            rel_tol=0.05,
        )
        assert single == []

    def test_ratio_properties(self):
        r = row(2.0, 1.2, stock_power=1.0, degraded_power=0.8)
        assert r.power_vs_stock == pytest.approx(2.0)
        assert r.power_vs_degraded == pytest.approx(2.5)
        degenerate = row(1.0, 1.0, stock_power=0.0)
        assert degenerate.power_vs_stock == float("inf")

"""Tests for the experiment harness (scenario runners, presets)."""

import pytest

from repro.experiments import (
    FIG2A_LOW_UTILIZATION,
    FIG2C_LONG_RUNNING,
    TABLE3_REMY,
    cubic_evaluator,
    run_cubic_fixed,
    run_incremental_deployment,
    run_long_running_scenario,
    run_onoff_scenario,
    run_phi_cubic,
    uniform_slots,
)
from repro.experiments.dumbbell import ExperimentEnv
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import REFERENCE_POLICY, SharingMode, plain_cubic_factory
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import OnOffConfig

#: A small, fast preset used throughout this module.
QUICK = ScenarioPreset(
    name="quick",
    config=DumbbellConfig(n_senders=4),
    workload=OnOffConfig(mean_on_bytes=50_000, mean_off_s=0.3),
    duration_s=10.0,
    description="fast test preset",
)

QUICK_LONG = ScenarioPreset(
    name="quick-long",
    config=DumbbellConfig(n_senders=6),
    workload=None,
    duration_s=20.0,
    description="fast long-running preset",
)


class TestPresets:
    def test_table3_matches_paper(self):
        assert TABLE3_REMY.config.bottleneck_bandwidth_bps == 15e6
        assert TABLE3_REMY.config.rtt_s == pytest.approx(0.150)
        assert TABLE3_REMY.config.n_senders == 8
        assert TABLE3_REMY.workload.mean_on_bytes == 100_000
        assert TABLE3_REMY.workload.mean_off_s == 0.5

    def test_fig2a_workload(self):
        assert FIG2A_LOW_UTILIZATION.workload.mean_on_bytes == 500_000
        assert FIG2A_LOW_UTILIZATION.workload.mean_off_s == 2.0

    def test_fig2c_is_long_running(self):
        assert FIG2C_LONG_RUNNING.workload is None


class TestEnvCreation:
    def test_env_wires_monitor(self):
        env = ExperimentEnv.create(DumbbellConfig(n_senders=2), seed=1)
        assert env.monitor.link is env.topology.bottleneck
        assert env.bottleneck_capacity_bps == 15e6

    def test_envs_differ_by_seed(self):
        a = ExperimentEnv.create(seed=1).rngs.stream("x").random(3)
        b = ExperimentEnv.create(seed=2).rngs.stream("x").random(3)
        assert list(a) != list(b)


class TestOnOffRunner:
    def test_basic_run(self):
        result = run_cubic_fixed(CubicParams.default(), QUICK, seed=0)
        assert result.connections > 0
        assert result.metrics.throughput_mbps > 0
        assert 0 <= result.mean_utilization <= 1
        assert len(result.per_sender_stats) == 4

    def test_reproducible(self):
        a = run_cubic_fixed(CubicParams.default(), QUICK, seed=5)
        b = run_cubic_fixed(CubicParams.default(), QUICK, seed=5)
        assert a.metrics.throughput_mbps == b.metrics.throughput_mbps
        assert a.connections == b.connections

    def test_different_seeds_differ(self):
        a = run_cubic_fixed(CubicParams.default(), QUICK, seed=1)
        b = run_cubic_fixed(CubicParams.default(), QUICK, seed=2)
        assert a.metrics.throughput_mbps != b.metrics.throughput_mbps

    def test_sender_metrics_subset(self):
        result = run_cubic_fixed(CubicParams.default(), QUICK, seed=0)
        subset = result.sender_metrics([0, 1])
        full = result.metrics
        assert subset.connections <= full.connections

    def test_throughput_bounded_by_capacity(self):
        result = run_cubic_fixed(CubicParams.default(), QUICK, seed=0)
        assert result.metrics.throughput_mbps <= 15.0 * 1.05


class TestLongRunningRunner:
    def test_high_utilization(self):
        result = run_cubic_fixed(CubicParams.default(), QUICK_LONG, seed=0)
        assert result.mean_utilization > 0.8
        assert result.connections == 6

    def test_stats_are_partial(self):
        result = run_cubic_fixed(CubicParams.default(), QUICK_LONG, seed=0)
        for sender_stats in result.per_sender_stats:
            for stats in sender_stats:
                assert not stats.completed
                assert stats.bytes_goodput > 0


class TestPhiRunner:
    def test_practical_mode_runs(self):
        result = run_phi_cubic(
            REFERENCE_POLICY, QUICK, SharingMode.PRACTICAL, seed=0
        )
        assert result.connections > 0

    def test_ideal_mode_runs(self):
        result = run_phi_cubic(REFERENCE_POLICY, QUICK, SharingMode.IDEAL, seed=0)
        assert result.connections > 0

    def test_none_mode_rejected(self):
        with pytest.raises(ValueError):
            run_phi_cubic(REFERENCE_POLICY, QUICK, SharingMode.NONE)


class TestEvaluator:
    def test_evaluator_seeds_runs_consistently(self):
        evaluator = cubic_evaluator(QUICK, base_seed=0)
        a = evaluator(CubicParams.default(), 0)
        b = evaluator(CubicParams.default(), 0)
        assert a.throughput_mbps == b.throughput_mbps
        c = evaluator(CubicParams.default(), 1)
        assert c.throughput_mbps != a.throughput_mbps


class TestIncrementalRunner:
    def test_populations_split(self):
        result = run_incremental_deployment(
            CubicParams(window_init=16, initial_ssthresh=64, beta=0.3),
            QUICK,
            modified_fraction=0.5,
            seed=0,
        )
        assert result.modified.connections > 0
        assert result.unmodified.connections > 0
        total = result.modified.connections + result.unmodified.connections
        assert total == result.overall.connections

    def test_long_running_preset_rejected(self):
        with pytest.raises(ValueError):
            run_incremental_deployment(
                CubicParams.default(), QUICK_LONG, modified_fraction=0.5
            )


class TestUniformSlots:
    def test_factory_shared_within_env(self):
        built = []

        def builder(env):
            built.append(env)
            return plain_cubic_factory()

        slots = uniform_slots(builder)
        env = ExperimentEnv.create(DumbbellConfig(n_senders=3))
        for i in range(3):
            slots(i, env)
        assert len(built) == 1

"""Tests for the degraded-control-plane experiment runner."""

import pytest

from repro.experiments import (
    run_cubic_fixed,
    run_degraded_phi_cubic,
    run_phi_cubic,
    schedule_unavailability,
    sweep_unavailability,
)
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import REFERENCE_POLICY, ChannelConfig, ControlChannel, SharingMode
from repro.phi.server import ContextServer
from repro.simnet import DumbbellConfig, Simulator
from repro.transport import CubicParams
from repro.workload import OnOffConfig

PRESET = ScenarioPreset(
    name="degraded-mini",
    config=DumbbellConfig(n_senders=4),
    workload=OnOffConfig(mean_on_bytes=200_000, mean_off_s=0.5),
    duration_s=10.0,
    description="small degraded-control-plane smoke scenario",
)


class TestScheduleUnavailability:
    def _channel(self):
        sim = Simulator()
        return sim, ControlChannel(sim, ContextServer(sim, 15e6))

    def test_zero_fraction_schedules_nothing(self):
        sim, channel = self._channel()
        schedule_unavailability(channel, fraction=0.0, duration_s=10.0)
        assert sim.pending_events == 0
        assert channel.server_up

    def test_full_fraction_covers_whole_run(self):
        sim, channel = self._channel()
        schedule_unavailability(channel, fraction=1.0, duration_s=10.0)
        assert not channel.server_up
        sim.run(until=9.9)
        assert not channel.server_up
        sim.run(until=10.5)
        assert channel.server_up

    def test_partial_fraction_alternates(self):
        sim, channel = self._channel()
        schedule_unavailability(
            channel, fraction=0.5, duration_s=10.0, period_s=2.0
        )
        seen = {}
        for t in (0.5, 1.5, 2.5, 3.5):
            sim.schedule_at(t, lambda t=t: seen.update({t: channel.server_up}))
        sim.run()
        assert seen == {0.5: False, 1.5: True, 2.5: False, 3.5: True}

    def test_validation(self):
        _sim, channel = self._channel()
        with pytest.raises(ValueError):
            schedule_unavailability(channel, fraction=1.5, duration_s=10.0)
        with pytest.raises(ValueError):
            schedule_unavailability(
                channel, fraction=0.5, duration_s=10.0, period_s=0.0
            )


class TestDegradedRuns:
    def test_fully_partitioned_equals_uncoordinated_baseline(self):
        degraded = run_degraded_phi_cubic(
            REFERENCE_POLICY, PRESET, unavailability=1.0, seed=3
        )
        baseline = run_cubic_fixed(CubicParams.default(), PRESET, seed=3)
        # Every connection fell back to stock Cubic, so the run is
        # bit-identical to the uncoordinated baseline.
        assert degraded.decision_counts["fresh"] == 0
        assert degraded.decision_counts["stale"] == 0
        assert degraded.decision_counts["fallback"] > 0
        assert degraded.metrics.throughput_mbps == pytest.approx(
            baseline.metrics.throughput_mbps
        )
        assert degraded.metrics.power_l == pytest.approx(baseline.metrics.power_l)
        assert degraded.channel_stats.successes == 0

    def test_healthy_control_plane_equals_practical_phi(self):
        degraded = run_degraded_phi_cubic(
            REFERENCE_POLICY, PRESET, unavailability=0.0, seed=3
        )
        practical = run_phi_cubic(
            REFERENCE_POLICY, PRESET, mode=SharingMode.PRACTICAL, seed=3
        )
        assert degraded.decision_counts["fallback"] == 0
        assert degraded.decision_counts["stale"] == 0
        assert degraded.metrics.throughput_mbps == pytest.approx(
            practical.metrics.throughput_mbps
        )
        assert degraded.metrics.power_l == pytest.approx(practical.metrics.power_l)

    def test_partial_unavailability_mixes_decisions(self):
        degraded = run_degraded_phi_cubic(
            REFERENCE_POLICY,
            PRESET,
            unavailability=0.5,
            seed=3,
            outage_period_s=2.0,
            staleness_ttl_s=1.0,
        )
        counts = degraded.decision_counts
        assert counts["fresh"] > 0
        assert counts["stale"] + counts["fallback"] > 0
        assert degraded.channel_stats.failures > 0

    def test_lossy_channel_reports_recover(self):
        degraded = run_degraded_phi_cubic(
            REFERENCE_POLICY,
            PRESET,
            unavailability=0.5,
            seed=3,
            outage_period_s=2.0,
            channel_config=ChannelConfig(max_retries=1, deadline_s=0.5),
        )
        # Reports queued during outages were flushed once the server
        # returned; nothing is stranded at end of run unless the run
        # ended inside an outage window.
        assert degraded.pending_reports <= degraded.decision_counts["fallback"]

    def test_sweep_rows_cover_fractions(self):
        rows = sweep_unavailability(
            REFERENCE_POLICY,
            PRESET,
            fractions=(0.0, 1.0),
            seeds=(3,),
        )
        assert [row.unavailability for row in rows] == [0.0, 1.0]
        assert all(row.mean_power_l > 0 for row in rows)
        assert rows[1].decision_counts["fresh"] == 0

"""Additional scenario-harness behaviours."""

import pytest

from repro.experiments import (
    ALL_PRESETS,
    FIG4_INCREMENTAL,
    run_cubic_fixed,
    run_incremental_deployment,
)
from repro.experiments.scenarios import ScenarioPreset
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import OnOffConfig

TINY = ScenarioPreset(
    name="tiny-extra",
    config=DumbbellConfig(n_senders=2),
    workload=OnOffConfig(mean_on_bytes=30_000, mean_off_s=0.2),
    duration_s=8.0,
    description="",
)


class TestPresetIntegrity:
    def test_all_presets_unique_names(self):
        names = [p.name for p in ALL_PRESETS]
        assert len(set(names)) == len(names)

    def test_all_presets_buildable(self):
        for preset in ALL_PRESETS:
            assert preset.config.buffer_bytes > 0
            if preset.workload is not None:
                assert preset.workload.mean_on_bytes > 0

    def test_fig4_runs_at_moderate_utilization(self):
        result = run_cubic_fixed(
            CubicParams.default(), FIG4_INCREMENTAL, seed=0, duration_s=15.0
        )
        assert result.mean_utilization < 0.99


class TestDurationOverride:
    def test_duration_override_shortens_run(self):
        short = run_cubic_fixed(CubicParams.default(), TINY, seed=1, duration_s=4.0)
        long = run_cubic_fixed(CubicParams.default(), TINY, seed=1, duration_s=12.0)
        assert long.connections >= short.connections

    def test_default_duration_from_preset(self):
        result = run_cubic_fixed(CubicParams.default(), TINY, seed=1)
        assert result.duration_s == TINY.duration_s


class TestIncrementalFractions:
    @pytest.mark.parametrize("fraction", [0.0, 1.0])
    def test_degenerate_fractions(self, fraction):
        outcome = run_incremental_deployment(
            CubicParams(window_init=16, initial_ssthresh=64, beta=0.3),
            TINY,
            modified_fraction=fraction,
            seed=2,
        )
        if fraction == 0.0:
            assert outcome.modified.connections == 0
            assert outcome.unmodified.connections > 0
        else:
            assert outcome.unmodified.connections == 0
            assert outcome.modified.connections > 0

    def test_metadata_recorded(self):
        outcome = run_incremental_deployment(
            CubicParams(window_init=16, initial_ssthresh=64, beta=0.3),
            TINY,
            modified_fraction=0.5,
            seed=2,
        )
        assert outcome.modified_fraction == 0.5

"""Tests for the Table-3 harness utilities (fast paths only)."""

import pytest

from repro.experiments.table3 import (
    Table3Result,
    Table3Row,
    _seed_phi_table,
    make_table_evaluator,
    run_remy_scenario,
)
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import SharingMode
from repro.remy import WhiskerTable
from repro.remy.whisker import Action
from repro.simnet import DumbbellConfig
from repro.workload import OnOffConfig

TINY = ScenarioPreset(
    name="tiny",
    config=DumbbellConfig(n_senders=2),
    workload=OnOffConfig(mean_on_bytes=40_000, mean_off_s=0.2),
    duration_s=6.0,
    description="tiny table3 test preset",
)


class TestRows:
    def _result(self):
        rows = [
            Table3Row("Remy-Phi-practical", 1.93, 5.6, 2.52),
            Table3Row("Remy-Phi-ideal", 1.97, 3.0, 2.56),
            Table3Row("Remy", 1.45, 1.7, 2.26),
            Table3Row("Cubic", 1.03, 9.3, 1.87),
        ]
        return Table3Result(rows=rows)

    def test_row_lookup(self):
        result = self._result()
        assert result.row("Remy").median_throughput_mbps == 1.45
        with pytest.raises(KeyError):
            result.row("BBR")

    def test_format_contains_all_rows(self):
        text = self._result().format()
        for name in ("Remy-Phi-practical", "Remy-Phi-ideal", "Remy", "Cubic"):
            assert name in text
        assert "thr(Mbps)" in text

    def test_row_format_numbers(self):
        row = Table3Row("Cubic", 1.03, 9.3, 1.87)
        text = row.format()
        assert "1.03" in text and "9.3" in text and "1.87" in text


class TestSeedPhiTable:
    def test_partitioned_on_util_with_classic_action(self):
        classic = WhiskerTable()
        classic.whiskers[0].action = Action(window_increment=7.0)
        phi = _seed_phi_table(classic)
        assert phi.dimensions == WhiskerTable.PHI_DIMENSIONS
        assert len(phi) == 2
        assert all(w.action.window_increment == 7.0 for w in phi.whiskers)
        utils = [w.bounds["util"] for w in phi.whiskers]
        assert (0.0, 0.5) in utils and (0.5, 1.0) in utils


class TestRunRemyScenario:
    def test_all_modes_produce_connections(self):
        classic = WhiskerTable()
        phi = WhiskerTable(WhiskerTable.PHI_DIMENSIONS)
        for mode, table in [
            (SharingMode.NONE, classic),
            (SharingMode.PRACTICAL, phi),
            (SharingMode.IDEAL, phi),
        ]:
            result = run_remy_scenario(table, mode, TINY, seed=1)
            assert result.connections > 0, mode

    def test_evaluator_returns_finite_scores(self):
        evaluator = make_table_evaluator(
            SharingMode.NONE, TINY, duration_s=6.0, seeds=(0,)
        )
        score = evaluator(WhiskerTable())
        assert score == score  # not NaN
        assert score != float("inf")

    def test_evaluator_deterministic(self):
        evaluator = make_table_evaluator(
            SharingMode.NONE, TINY, duration_s=6.0, seeds=(0,)
        )
        assert evaluator(WhiskerTable()) == evaluator(WhiskerTable())

"""Tests for ensemble prioritization: weights, weighted senders, controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prioritization import (
    EnsembleAllocator,
    FlowClass,
    PriorityController,
    WeightedRenoSender,
)
from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    FlowSpec,
    Simulator,
)
from repro.transport.sink import TcpSink

CLASSES = [FlowClass("hd-video", 4.0), FlowClass("bulk", 1.0)]


class TestFlowClass:
    def test_importance_positive(self):
        with pytest.raises(ValueError):
            FlowClass("x", 0.0)


class TestEnsembleAllocator:
    def test_requires_classes(self):
        with pytest.raises(ValueError):
            EnsembleAllocator([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            EnsembleAllocator([FlowClass("a", 1), FlowClass("a", 2)])

    def test_weights_sum_to_n(self):
        allocator = EnsembleAllocator(CLASSES)
        assignments = allocator.allocate({1: "hd-video", 2: "bulk", 3: "bulk"})
        total = sum(a.weight for a in assignments)
        assert total == pytest.approx(3.0, rel=0.05)
        assert allocator.ensemble_friendly(assignments)

    def test_important_flows_get_larger_weights(self):
        allocator = EnsembleAllocator(CLASSES)
        assignments = {
            a.flow_id: a for a in allocator.allocate({1: "hd-video", 2: "bulk"})
        }
        assert assignments[1].weight > assignments[2].weight
        assert assignments[1].weight / assignments[2].weight == pytest.approx(
            4.0, rel=0.05
        )

    def test_uniform_classes_get_unit_weights(self):
        allocator = EnsembleAllocator(CLASSES)
        assignments = allocator.allocate({i: "bulk" for i in range(5)})
        assert all(a.weight == pytest.approx(1.0) for a in assignments)

    def test_unknown_class_rejected(self):
        allocator = EnsembleAllocator(CLASSES)
        with pytest.raises(ValueError):
            allocator.allocate({1: "nope"})

    def test_empty_allocation(self):
        allocator = EnsembleAllocator(CLASSES)
        assert allocator.allocate({}) == []
        assert allocator.ensemble_friendly([])

    def test_weight_bounds_clamped(self):
        allocator = EnsembleAllocator(
            [FlowClass("huge", 1000.0), FlowClass("tiny", 0.001)],
            max_weight=8.0,
            min_weight=0.1,
        )
        assignments = allocator.allocate({1: "huge", 2: "tiny"})
        for a in assignments:
            assert 0.1 <= a.weight <= 8.0

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=100),
            st.sampled_from(["hd-video", "bulk"]),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_ensemble_friendliness_invariant(self, flows):
        allocator = EnsembleAllocator(CLASSES)
        assignments = allocator.allocate(flows)
        assert allocator.ensemble_friendly(assignments, tol=0.15)


class TestWeightedSender:
    def test_weight_validation(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        with pytest.raises(ValueError):
            WeightedRenoSender(sim, top.senders[0], spec, 1000, weight=0.0)

    def test_growth_scales_with_weight(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        heavy = WeightedRenoSender(sim, top.senders[0], spec, 10_000_000, weight=4.0)
        heavy.cwnd = 10.0
        heavy.ssthresh = 1.0
        heavy._on_ack_congestion_avoidance(1.0)
        assert heavy.cwnd == pytest.approx(10.4)

    def test_decrease_gentler_for_heavy_flows(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        heavy = WeightedRenoSender(sim, top.senders[0], spec, 10_000, weight=4.0)
        heavy.cwnd = 80.0
        heavy._on_loss_event()
        assert heavy.cwnd == pytest.approx(80.0 * (1 - 1 / 8.0))

    def test_unit_weight_is_standard_reno(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        unit = WeightedRenoSender(sim, top.senders[0], spec, 10_000, weight=1.0)
        unit.cwnd = 80.0
        unit._on_loss_event()
        assert unit.cwnd == pytest.approx(40.0)


class TestPriorityController:
    def test_capacity_split_follows_importance(self):
        sim = Simulator()
        config = DumbbellConfig(
            n_senders=4, bottleneck_bandwidth_bps=10e6, rtt_s=0.08
        )
        top = DumbbellTopology(sim, config)
        allocator = EnsembleAllocator(CLASSES)
        controller = PriorityController(sim, allocator)
        pairs = [(top.senders[i], top.receivers[i]) for i in range(4)]
        classes = ["hd-video", "hd-video", "bulk", "bulk"]
        controller.launch(pairs, classes, FlowIdAllocator())
        sim.run(until=40.0)
        by_class = controller.throughput_by_class(40.0)
        # HD flows (importance 4) should clearly out-throughput bulk.
        assert by_class["hd-video"] > 1.5 * by_class["bulk"]
        controller.finish_all()

    def test_mismatched_lengths_rejected(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        controller = PriorityController(sim, EnsembleAllocator(CLASSES))
        with pytest.raises(ValueError):
            controller.launch(
                [(top.senders[0], top.receivers[0])], ["bulk", "bulk"],
                FlowIdAllocator(),
            )

    def test_finish_all_groups_by_class(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        controller = PriorityController(sim, EnsembleAllocator(CLASSES))
        pairs = [(top.senders[i], top.receivers[i]) for i in range(2)]
        controller.launch(pairs, ["hd-video", "bulk"], FlowIdAllocator())
        sim.run(until=5.0)
        by_class = controller.finish_all()
        assert set(by_class) == {"hd-video", "bulk"}
        assert all(len(stats) == 1 for stats in by_class.values())

    def test_duration_validation(self):
        sim = Simulator()
        controller = PriorityController(sim, EnsembleAllocator(CLASSES))
        with pytest.raises(ValueError):
            controller.throughput_by_class(0.0)

"""Tests for the diagnosis pipeline: baseline, telemetry, detection,
localization (the Figure 5 machinery)."""

import numpy as np
import pytest

from repro.diagnosis import (
    DetectorConfig,
    OutageSpec,
    SeasonalBaseline,
    TelemetryConfig,
    TelemetryGenerator,
    UnreachabilityDetector,
    group_dips,
    localize,
)
from repro.diagnosis.detector import DetectedDip


class TestSeasonalBaseline:
    def _flat_history(self, value=100.0, periods=3, period=24):
        return [value] * (period * periods)

    def test_requires_enough_history(self):
        baseline = SeasonalBaseline(period_bins=24)
        with pytest.raises(ValueError):
            baseline.fit([100.0] * 24)  # only one period

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalBaseline(period_bins=0)
        with pytest.raises(ValueError):
            SeasonalBaseline(period_bins=24, min_history_periods=0)

    def test_flat_series_expected(self):
        baseline = SeasonalBaseline(24).fit(self._flat_history())
        assert baseline.expected(5).expected == 100.0
        assert baseline.is_fitted

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SeasonalBaseline(24).expected(0)

    def test_diurnal_pattern_learned(self):
        period = 24
        one_day = [100.0 + 50.0 * np.sin(2 * np.pi * i / period) for i in range(period)]
        baseline = SeasonalBaseline(period).fit(one_day * 3)
        assert baseline.expected(6).expected > baseline.expected(18).expected

    def test_zscore_sign(self):
        baseline = SeasonalBaseline(24).fit(self._flat_history())
        assert baseline.zscore(0, 50.0) < 0
        assert baseline.zscore(0, 150.0) > 0

    def test_zscores_vectorized(self):
        baseline = SeasonalBaseline(24).fit(self._flat_history())
        scores = baseline.zscores(0, [100.0, 100.0, 10.0])
        assert scores[0] == pytest.approx(0.0)
        assert scores[2] < -5

    def test_noise_robustness(self):
        rng = np.random.default_rng(0)
        history = rng.poisson(1000, size=24 * 5).astype(float)
        baseline = SeasonalBaseline(24).fit(history)
        scores = baseline.zscores(0, rng.poisson(1000, size=24).astype(float))
        assert np.all(np.abs(scores) < 5)


class TestTelemetry:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(bin_minutes=0)
        with pytest.raises(ValueError):
            TelemetryConfig(diurnal_amplitude=1.5)

    def test_slice_keys_cartesian(self):
        config = TelemetryConfig()
        keys = config.slice_keys()
        assert len(keys) == 4 * 4 * 2
        assert ("isp-a", "nyc", "voip") in keys

    def test_outage_spec_validation(self):
        with pytest.raises(ValueError):
            OutageSpec(start_bin=0, duration_bins=0, severity=0.5)
        with pytest.raises(ValueError):
            OutageSpec(start_bin=0, duration_bins=1, severity=0.0)

    def test_outage_affects_matching_slice_in_window(self):
        outage = OutageSpec(10, 5, 0.9, asn="isp-a", metro="nyc")
        assert outage.affects(("isp-a", "nyc", "voip"), 12)
        assert not outage.affects(("isp-a", "nyc", "voip"), 9)
        assert not outage.affects(("isp-a", "nyc", "voip"), 15)
        assert not outage.affects(("isp-b", "nyc", "voip"), 12)
        assert not outage.affects(("isp-a", "lon", "voip"), 12)

    def test_wildcard_dimensions(self):
        outage = OutageSpec(0, 5, 1.0, metro="nyc")
        assert outage.affects(("isp-a", "nyc", "voip"), 0)
        assert outage.affects(("isp-d", "nyc", "storage"), 0)

    def test_generated_series_have_requested_length(self):
        gen = TelemetryGenerator(TelemetryConfig(), np.random.default_rng(0))
        series = gen.generate(100)
        assert all(len(v) == 100 for v in series.values())

    def test_outage_suppresses_volume(self):
        config = TelemetryConfig()
        outage = OutageSpec(50, 10, 1.0, asn="isp-a", metro="nyc")
        gen = TelemetryGenerator(config, np.random.default_rng(0), [outage])
        series = gen.generate(70)
        hit = series[("isp-a", "nyc", "voip")]
        assert np.all(hit[50:60] == 0)
        assert np.mean(hit[:50]) > 100

    def test_invalid_bins(self):
        gen = TelemetryGenerator(TelemetryConfig(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            gen.generate(0)


class TestDetector:
    def _pipeline(self, severity=0.9, duration_bins=24, seed=7):
        config = TelemetryConfig()
        train = 2 * config.bins_per_day
        outage = OutageSpec(
            start_bin=train + 100,
            duration_bins=duration_bins,
            severity=severity,
            asn="isp-a",
            metro="nyc",
        )
        gen = TelemetryGenerator(config, np.random.default_rng(seed), [outage])
        series = gen.generate(train + config.bins_per_day)
        detector = UnreachabilityDetector(config.bins_per_day)
        return config, outage, train, detector.detect(series, train)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(z_threshold=1.0)
        with pytest.raises(ValueError):
            DetectorConfig(min_consecutive_bins=0)
        with pytest.raises(ValueError):
            DetectorConfig(min_drop_fraction=1.0)

    def test_detects_injected_outage(self):
        config, outage, train, dips = self._pipeline()
        affected = {d.key for d in dips}
        assert ("isp-a", "nyc", "voip") in affected
        assert ("isp-a", "nyc", "storage") in affected

    def test_detection_window_overlaps_outage(self):
        config, outage, train, dips = self._pipeline()
        for dip in dips:
            if dip.key[:2] == ("isp-a", "nyc"):
                assert dip.start_bin >= outage.start_bin - 2
                assert dip.end_bin <= outage.end_bin + 2

    def test_no_false_positives_without_outage(self):
        config = TelemetryConfig()
        train = 2 * config.bins_per_day
        gen = TelemetryGenerator(config, np.random.default_rng(3))
        series = gen.generate(train + config.bins_per_day)
        detector = UnreachabilityDetector(config.bins_per_day)
        assert detector.detect(series, train) == []

    def test_short_series_rejected(self):
        config = TelemetryConfig()
        detector = UnreachabilityDetector(config.bins_per_day)
        series = {("a", "b", "c"): np.ones(10)}
        with pytest.raises(ValueError):
            detector.detect(series, train_bins=10)

    def test_drop_fraction_estimated(self):
        config, outage, train, dips = self._pipeline(severity=0.9)
        target = [d for d in dips if d.key[:2] == ("isp-a", "nyc")]
        assert target
        for dip in target:
            assert dip.mean_drop_fraction == pytest.approx(0.9, abs=0.15)


class TestLocalization:
    def _dip(self, key, start=10, end=20):
        return DetectedDip(
            key=key, start_bin=start, end_bin=end, min_zscore=-8.0,
            mean_drop_fraction=0.9,
        )

    def test_groups_overlapping_dips(self):
        dips = [
            self._dip(("a", "x", "s1")),
            self._dip(("a", "x", "s2"), start=12, end=22),
            self._dip(("b", "y", "s1"), start=500, end=510),
        ]
        groups = group_dips(dips)
        assert len(groups) == 2

    def test_localizes_to_as_and_metro(self):
        config = TelemetryConfig()
        dips = [
            self._dip(("isp-a", "nyc", "voip")),
            self._dip(("isp-a", "nyc", "storage")),
        ]
        (event,) = localize(dips, config.slice_keys())
        assert event.asn == "isp-a"
        assert event.metro == "nyc"
        assert event.service is None
        assert "asn=isp-a" in event.describe()
        assert "metro=nyc" in event.describe()

    def test_service_specific_event(self):
        # The paper's motivating example: VoIP degraded, file hosting fine.
        config = TelemetryConfig()
        dips = [
            self._dip((asn, metro, "voip"))
            for asn in config.ases
            for metro in config.metros
        ]
        (event,) = localize(dips, config.slice_keys())
        assert event.service == "voip"
        assert event.asn is None and event.metro is None

    def test_global_event(self):
        config = TelemetryConfig()
        dips = [self._dip(key) for key in config.slice_keys()]
        (event,) = localize(dips, config.slice_keys())
        assert event.describe() == "global"

    def test_empty_group_rejected(self):
        from repro.diagnosis import localize_group

        with pytest.raises(ValueError):
            localize_group([], [])

    def test_figure5_end_to_end(self):
        # Full pipeline: 2-hour ISP+metro outage detected and localized.
        config = TelemetryConfig()
        train = 2 * config.bins_per_day
        bins_2h = 120 // config.bin_minutes
        outage = OutageSpec(
            start_bin=train + 60,
            duration_bins=bins_2h,
            severity=0.95,
            asn="isp-b",
            metro="blr",
        )
        gen = TelemetryGenerator(config, np.random.default_rng(11), [outage])
        series = gen.generate(train + config.bins_per_day)
        detector = UnreachabilityDetector(config.bins_per_day)
        dips = detector.detect(series, train)
        events = localize(dips, config.slice_keys())
        assert len(events) == 1
        event = events[0]
        assert event.asn == "isp-b" and event.metro == "blr"
        assert event.duration_bins == pytest.approx(bins_2h, abs=2)

"""Tests for incident report rendering."""

import pytest

from repro.diagnosis import (
    IncidentReport,
    TelemetryConfig,
    render_all,
    render_incident,
    severity_grade,
)
from repro.diagnosis.detector import DetectedDip
from repro.diagnosis.localize import LocalizedEvent


def event(asn="isp-a", metro="nyc", service=None, drop=0.9, start=100, end=124):
    return LocalizedEvent(
        asn=asn,
        metro=metro,
        service=service,
        start_bin=start,
        end_bin=end,
        affected_slices=2,
        mean_drop_fraction=drop,
    )


class TestSeverity:
    def test_grades(self):
        assert severity_grade(0.95).startswith("SEV-1")
        assert severity_grade(0.5).startswith("SEV-2")
        assert severity_grade(0.2).startswith("SEV-3")
        assert severity_grade(0.02).startswith("SEV-4")

    def test_validation(self):
        with pytest.raises(ValueError):
            severity_grade(1.5)


class TestRenderIncident:
    def test_network_event_report(self):
        config = TelemetryConfig()
        report = render_incident(event(), config)
        assert "SEV-1" in report.title
        assert "asn=isp-a, metro=nyc" in report.body
        assert "2.0 hours" in report.body
        assert "peering/NOC" in report.body

    def test_service_event_report(self):
        config = TelemetryConfig()
        report = render_incident(
            event(asn=None, metro=None, service="voip", drop=0.5), config
        )
        assert "voip on-call" in report.body

    def test_global_event_report(self):
        config = TelemetryConfig()
        report = render_incident(
            event(asn=None, metro=None, service=None), config
        )
        assert "global" in report.title
        assert "provider-side" in report.body

    def test_evidence_line_from_dips(self):
        config = TelemetryConfig()
        dips = [
            DetectedDip(
                key=("isp-a", "nyc", "voip"),
                start_bin=105,
                end_bin=120,
                min_zscore=-12.3,
                mean_drop_fraction=0.9,
            )
        ]
        report = render_incident(event(), config, dips)
        assert "z = -12.3" in report.body

    def test_short_duration_in_minutes(self):
        config = TelemetryConfig()
        report = render_incident(event(start=10, end=14), config)
        assert "20 minutes" in report.body

    def test_render_all(self):
        config = TelemetryConfig()
        reports = render_all([event(), event(metro="lon")], config)
        assert len(reports) == 2
        assert all(isinstance(r, IncidentReport) for r in reports)

"""Tests for the command-line interface."""

import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_presets_registered(self):
        assert "table3-remy" in PRESETS
        assert "fig4-incremental" in PRESETS

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cubic_defaults(self):
        args = build_parser().parse_args(["cubic"])
        assert args.preset == "table3-remy"
        assert args.ssthresh == 65536.0

    def test_incremental_defaults_to_fig4_optimal(self):
        args = build_parser().parse_args(["incremental"])
        assert args.preset == "fig4-incremental"
        assert args.ssthresh == 64.0
        assert args.fraction == 0.5

    def test_phi_mode_choices(self):
        args = build_parser().parse_args(["phi", "--mode", "ideal"])
        assert args.mode == "ideal"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["phi", "--mode", "nope"])


class TestCommands:
    def test_presets_lists_all(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_unknown_preset_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["cubic", "--preset", "nope"])

    def test_cubic_run(self, capsys):
        assert main(["cubic", "--duration", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "thr=" in out and "P_l=" in out

    def test_phi_run(self, capsys):
        assert main(["phi", "--duration", "5", "--mode", "ideal"]) == 0
        assert "cubic-phi (ideal)" in capsys.readouterr().out

    def test_incremental_run(self, capsys):
        assert main(["incremental", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "modified" in out and "unmodified" in out

    def test_ipfix_run(self, capsys):
        assert main(["ipfix", "--minutes", "1"]) == 0
        assert "sharing with >=" in capsys.readouterr().out

    def test_diagnose_detects(self, capsys):
        assert main(["diagnose"]) == 0
        out = capsys.readouterr().out
        assert "detected: asn=isp-a, metro=nyc" in out


class TestSweepCommand:
    MINI = [
        "sweep", "--runs", "1", "--duration", "2",
        "--ssthresh-range", "2,16", "--window-range", "4",
        "--beta-range", "0.2", "--quiet",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.runs == 8
        assert args.preset == "table3-remy"
        assert args.workers is None
        assert not args.serial_check

    def test_float_list_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--beta-range", "nope"])

    def test_mini_sweep_runs(self, capsys):
        assert main(self.MINI) == 0
        out = capsys.readouterr().out
        assert "best point:" in out
        assert "parallel" in out

    def test_serial_check_reports_bit_identical(self, capsys):
        assert main(self.MINI + ["--serial-check"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "speedup=" in out

    def test_bench_json_written(self, tmp_path, capsys):
        bench = str(tmp_path / "BENCH_sweep.json")
        assert main(self.MINI + ["--bench-json", bench]) == 0
        import json

        with open(bench) as handle:
            trajectory = json.load(handle)
        assert len(trajectory) == 1
        entry = trajectory[0]
        assert entry["label"] == "cli-sweep-table3-remy"
        assert entry["grid_points"] == 2
        assert entry["parallel"]["points"] == 2
        assert "machine" in entry

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(self.MINI + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(self.MINI + ["--cache-dir", cache_dir]) == 0
        assert "cached=2" in capsys.readouterr().out


class TestTelemetryOutputs:
    MINI = TestSweepCommand.MINI

    def test_sweep_writes_manifest_and_trace(self, tmp_path, capsys):
        import json

        manifest_path = str(tmp_path / "manifest.json")
        trace_path = str(tmp_path / "trace.jsonl")
        assert main(
            self.MINI
            + ["--metrics-out", manifest_path, "--trace-out", trace_path]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry manifest:" in out
        assert "telemetry trace:" in out

        from repro.telemetry.manifest import load_manifest, validate_manifest

        manifest = load_manifest(manifest_path)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "sweep"
        assert len(manifest["points"]) == 2
        assert all(p["status"] == "computed" for p in manifest["points"])
        assert manifest["metrics"]["counters"]["sim.events"] > 0
        assert "runner.point_wall_s" in manifest["metrics"]["histograms"]

        lines = [
            json.loads(line)
            for line in open(trace_path, encoding="utf-8")
        ]
        assert lines[0]["kind"] == "header"
        names = {line.get("name") for line in lines[1:]}
        assert "runner.sweep_complete" in names

    def test_cubic_writes_manifest(self, tmp_path, capsys):
        from repro.telemetry.manifest import load_manifest, validate_manifest

        manifest_path = str(tmp_path / "run.json")
        assert main(
            ["cubic", "--duration", "5", "--seed", "1",
             "--metrics-out", manifest_path]
        ) == 0
        manifest = load_manifest(manifest_path)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "cubic"
        assert manifest["seeds"] == {"seed": 1}
        assert manifest["metrics"]["counters"]["sim.events"] > 0

    def test_run_without_flags_leaves_telemetry_disabled(self, capsys):
        from repro import telemetry

        assert main(["cubic", "--duration", "5", "--seed", "1"]) == 0
        assert not telemetry.session().enabled

    def test_summarize_round_trip(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "manifest.json")
        assert main(self.MINI + ["--metrics-out", manifest_path]) == 0
        capsys.readouterr()
        assert main(["telemetry", "summarize", manifest_path]) == 0
        out = capsys.readouterr().out
        assert "sim.events" in out
        assert "computed" in out

    def test_summarize_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["telemetry", "summarize", str(bad)]) == 2
        assert "cannot read manifest" in capsys.readouterr().err


class TestPoisonCommand:
    MINI = [
        "poison", "--preset", "table3-remy", "--severities", "1.0",
        "--seeds", "0", "--modes", "garbage", "--duration", "8", "--quiet",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["poison"])
        assert args.preset == "fig2a-low-utilization"
        assert args.severities == [0.0, 0.5, 1.0]
        assert args.seeds == [0, 1]
        assert args.modes == "inflate"
        assert not args.unguarded
        assert not args.expect_harm

    def test_int_list_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["poison", "--seeds", "x,y"])

    def test_unknown_mode_exits_2(self, capsys):
        assert main(["poison", "--modes", "gremlins"]) == 2
        assert "unknown corruption mode" in capsys.readouterr().err

    def test_guarded_garbage_holds_envelope(self, capsys):
        """Full-severity garbage is fully rejected: the guarded run is
        the stock baseline, so the envelope holds exactly."""
        assert main(self.MINI) == 0
        out = capsys.readouterr().out
        assert "safety envelope holds" in out

    def test_serial_check_bit_identical(self, capsys):
        assert main(self.MINI + ["--serial-check"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_expect_harm_fails_when_harmless(self, capsys):
        # Guarded garbage == baseline: no harm to demonstrate.
        assert main(self.MINI + ["--expect-harm"]) == 1
        assert "HARM NOT DEMONSTRATED" in capsys.readouterr().err

    def test_writes_manifest_with_defence_metrics(self, tmp_path, capsys):
        from repro.telemetry.manifest import load_manifest, validate_manifest

        manifest_path = str(tmp_path / "poison.json")
        assert main(self.MINI + ["--metrics-out", manifest_path]) == 0
        manifest = load_manifest(manifest_path)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "poison"
        assert manifest["config"]["modes"] == ["garbage"]
        counters = manifest["metrics"]["counters"]
        assert any("phi.guard_rejections" in key for key in counters)
        assert any("phi.context_decisions" in key for key in counters)
        assert manifest["totals"]["guard_rejections"]
        assert manifest["points"][0]["defence"]["decision_counts"]


class TestPartitionCommand:
    MINI = [
        "partition", "--preset", "fig2a-low-utilization",
        "--replicas", "3", "--severities", "0.34", "--heals", "8",
        "--seeds", "0", "--duration", "25", "--quiet",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["partition"])
        assert args.preset == "fig2a-low-utilization"
        assert args.replicas == [1, 3]
        assert args.severities == [0.0, 0.34, 1.0]
        assert args.heals == [10.0]
        assert args.partition_start == 10.0
        assert args.seeds == [0, 1]
        assert args.read_policy == "any"

    def test_unknown_read_policy_exits_2(self, capsys):
        assert main(["partition", "--read-policy", "psychic"]) == 2
        assert "unknown read policy" in capsys.readouterr().err

    def test_minority_partition_holds_envelope(self, capsys):
        assert main(self.MINI) == 0
        assert "safety envelope holds" in capsys.readouterr().out

    def test_serial_check_bit_identical(self, capsys):
        assert main(self.MINI + ["--serial-check"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_writes_manifest_with_replication_metrics(self, tmp_path, capsys):
        from repro.telemetry.manifest import load_manifest, validate_manifest

        manifest_path = str(tmp_path / "partition.json")
        assert main(self.MINI + ["--metrics-out", manifest_path]) == 0
        manifest = load_manifest(manifest_path)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "partition"
        assert manifest["config"]["read_policy"] == "any"
        counters = manifest["metrics"]["counters"]
        assert any("phi.replica_rpc_calls" in key for key in counters)
        point = manifest["points"][0]
        assert point["replication"]["failovers"] >= 1
        assert point["replication"]["anti_entropy_merges"] > 0
        assert manifest["totals"]["failovers"] >= 1


class TestCheck:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.oracles is None
        assert args.duration == 10.0
        assert args.fuzz == 0
        assert args.report is None

    def test_unknown_oracle_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--oracle", "nope"])

    def test_unit_rescale_oracle_passes(self, capsys):
        assert main(["check", "--oracle", "unit-rescale"]) == 0
        out = capsys.readouterr().out
        assert "PASS  unit-rescale" in out
        assert "1/1 checks passed" in out

    def test_fast_differential_oracles_pass(self, capsys):
        assert main([
            "check", "--oracle", "checked-vs-unchecked",
            "--oracle", "flow-permutation", "--duration", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS  checked-vs-unchecked" in out
        assert "PASS  flow-permutation" in out

    def test_fuzz_and_report_artifact(self, tmp_path, capsys):
        import json as _json

        report_path = str(tmp_path / "check.json")
        assert main([
            "check", "--oracle", "unit-rescale",
            "--fuzz", "1", "--seed", "11", "--report", report_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS  fuzz seed=11" in out
        with open(report_path, encoding="utf-8") as handle:
            artifact = _json.load(handle)
        assert artifact["failed"] == 0
        assert artifact["oracles"][0]["name"] == "unit-rescale"
        (case,) = artifact["fuzz"]
        assert case["passed"] and case["scenario"]["seed"] == 11
        assert case["report"]["checks_performed"] > 0

"""Tests for the command-line interface."""

import pytest

from repro.cli import PRESETS, build_parser, main


class TestParser:
    def test_presets_registered(self):
        assert "table3-remy" in PRESETS
        assert "fig4-incremental" in PRESETS

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cubic_defaults(self):
        args = build_parser().parse_args(["cubic"])
        assert args.preset == "table3-remy"
        assert args.ssthresh == 65536.0

    def test_incremental_defaults_to_fig4_optimal(self):
        args = build_parser().parse_args(["incremental"])
        assert args.preset == "fig4-incremental"
        assert args.ssthresh == 64.0
        assert args.fraction == 0.5

    def test_phi_mode_choices(self):
        args = build_parser().parse_args(["phi", "--mode", "ideal"])
        assert args.mode == "ideal"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["phi", "--mode", "nope"])


class TestCommands:
    def test_presets_lists_all(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_unknown_preset_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["cubic", "--preset", "nope"])

    def test_cubic_run(self, capsys):
        assert main(["cubic", "--duration", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "thr=" in out and "P_l=" in out

    def test_phi_run(self, capsys):
        assert main(["phi", "--duration", "5", "--mode", "ideal"]) == 0
        assert "cubic-phi (ideal)" in capsys.readouterr().out

    def test_incremental_run(self, capsys):
        assert main(["incremental", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "modified" in out and "unmodified" in out

    def test_ipfix_run(self, capsys):
        assert main(["ipfix", "--minutes", "1"]) == 0
        assert "sharing with >=" in capsys.readouterr().out

    def test_diagnose_detects(self, capsys):
        assert main(["diagnose"]) == 0
        out = capsys.readouterr().out
        assert "detected: asn=isp-a, metro=nyc" in out

"""Tests for the IPFIX pipeline: records, traffic model, sampler, collector,
and the Section 2.1 sharing analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipfix import (
    EgressFlow,
    EgressTrafficModel,
    IpfixCollector,
    IpfixSampler,
    SampledHeader,
    TrafficModelConfig,
    dst_slash24,
    minute_slice,
    sharing_ccdf,
    sharing_stats,
)


class TestRecords:
    def test_slash24(self):
        assert dst_slash24("100.2.3.77") == "100.2.3.0/24"

    def test_slash24_invalid(self):
        with pytest.raises(ValueError):
            dst_slash24("not-an-ip")

    def test_minute_slice(self):
        assert minute_slice(0.0) == 0
        assert minute_slice(59.99) == 0
        assert minute_slice(60.0) == 1
        with pytest.raises(ValueError):
            minute_slice(-1.0)

    def test_flow_properties(self):
        flow = EgressFlow("1.2.3.4", 443, "100.0.0.9", 5000, 10.0, 5.0, 100)
        assert flow.four_tuple == ("1.2.3.4", 443, "100.0.0.9", 5000)
        assert flow.dst_subnet == "100.0.0.0/24"
        assert flow.end_s == 15.0

    def test_flow_validation(self):
        with pytest.raises(ValueError):
            EgressFlow("a", 1, "100.0.0.1", 1, 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            EgressFlow("a", 1, "100.0.0.1", 1, 0.0, -1.0, 5)

    def test_sampled_header_slot(self):
        header = SampledHeader(("a", 1, "100.0.1.2", 3), 125.0)
        assert header.dst_subnet == "100.0.1.0/24"
        assert header.minute == 2


class TestTrafficModel:
    def _model(self, seed=0, **kwargs):
        defaults = dict(n_subnets=50, flows_per_minute=500.0)
        defaults.update(kwargs)
        config = TrafficModelConfig(**defaults)
        return EgressTrafficModel(config, np.random.default_rng(seed))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrafficModelConfig(n_subnets=0)
        with pytest.raises(ValueError):
            TrafficModelConfig(zipf_exponent=0)
        with pytest.raises(ValueError):
            TrafficModelConfig(pareto_shape=1.0)

    def test_generates_approximately_poisson_count(self):
        model = self._model()
        flows = model.generate_minute(0)
        assert 350 < len(flows) < 650

    def test_flows_start_within_minute(self):
        model = self._model()
        for flow in model.generate_minute(3):
            assert 180.0 <= flow.start_s < 240.0

    def test_zipf_skew(self):
        model = self._model(zipf_exponent=1.3)
        counts = {}
        for __ in range(5):
            for flow in model.generate_minute(0):
                counts[flow.dst_subnet] = counts.get(flow.dst_subnet, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # The most popular subnet should dwarf the median one.
        assert ordered[0] > 5 * ordered[len(ordered) // 2]

    def test_packets_at_least_minimum(self):
        model = self._model()
        assert all(f.packets >= 8 for f in model.generate_minute(0))

    def test_deterministic_given_seed(self):
        a = [f.four_tuple for f in self._model(seed=3).generate_minute(0)]
        b = [f.four_tuple for f in self._model(seed=3).generate_minute(0)]
        assert a == b

    def test_generate_stream(self):
        batches = list(self._model().generate(3))
        assert len(batches) == 3
        with pytest.raises(ValueError):
            list(self._model().generate(0))

    def test_subnet_ip_bounds(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.subnet_ip(9999, 1)


class TestSampler:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            IpfixSampler(np.random.default_rng(0), rate=0)

    def test_sampling_fraction_statistics(self):
        rng = np.random.default_rng(0)
        sampler = IpfixSampler(rng, rate=100)
        flow = EgressFlow("a", 1, "100.0.0.1", 2, 0.0, 10.0, 1_000_000)
        headers = sampler.sample_flow(flow)
        assert len(headers) == pytest.approx(10_000, rel=0.05)
        assert sampler.effective_rate == pytest.approx(100, rel=0.05)

    def test_small_flows_usually_unsampled(self):
        rng = np.random.default_rng(0)
        sampler = IpfixSampler(rng, rate=4096)
        flows = [
            EgressFlow("a", i, "100.0.0.1", 2, 0.0, 1.0, 10) for i in range(500)
        ]
        headers = sampler.sample_flows(flows)
        # 500 flows x 10 packets at 1/4096: expect ~1 sample.
        assert len(headers) < 20

    def test_timestamps_within_flow_lifetime(self):
        rng = np.random.default_rng(1)
        sampler = IpfixSampler(rng, rate=10)
        flow = EgressFlow("a", 1, "100.0.0.1", 2, 100.0, 50.0, 10_000)
        for header in sampler.sample_flow(flow):
            assert 100.0 <= header.timestamp_s <= 150.0

    def test_zero_duration_flow(self):
        rng = np.random.default_rng(1)
        sampler = IpfixSampler(rng, rate=2)
        flow = EgressFlow("a", 1, "100.0.0.1", 2, 7.0, 0.0, 1000)
        headers = sampler.sample_flow(flow)
        assert headers
        assert all(h.timestamp_s == 7.0 for h in headers)

    @given(st.integers(min_value=1, max_value=100_000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=30)
    def test_never_samples_more_than_packets(self, packets, rate):
        rng = np.random.default_rng(0)
        sampler = IpfixSampler(rng, rate=rate)
        flow = EgressFlow("a", 1, "100.0.0.1", 2, 0.0, 1.0, packets)
        assert len(sampler.sample_flow(flow)) <= packets


class TestCollector:
    def _header(self, src_port, subnet_host="100.0.0.1", t=0.0):
        return SampledHeader(("srv", src_port, subnet_host, 443), t)

    def test_unique_flow_counting(self):
        collector = IpfixCollector()
        collector.ingest(self._header(1))
        collector.ingest(self._header(1))  # same flow
        collector.ingest(self._header(2))  # different flow, same slot
        counts = collector.slot_flow_counts()
        assert counts[("100.0.0.0/24", 0)] == 2

    def test_slots_split_by_minute(self):
        collector = IpfixCollector()
        collector.ingest(self._header(1, t=10.0))
        collector.ingest(self._header(1, t=70.0))
        assert collector.slot_count == 2

    def test_slots_split_by_subnet(self):
        collector = IpfixCollector()
        collector.ingest(self._header(1, "100.0.0.1"))
        collector.ingest(self._header(1, "100.0.1.1"))
        assert collector.slot_count == 2

    def test_flows_with_slot_sizes(self):
        collector = IpfixCollector()
        collector.ingest_many([self._header(i) for i in range(3)])
        pairs = collector.flows_with_slot_sizes()
        assert len(pairs) == 3
        assert all(size == 3 for _flow, size in pairs)

    def test_summaries(self):
        collector = IpfixCollector()
        collector.ingest_many([self._header(1), self._header(1), self._header(2)])
        (summary,) = collector.slot_summaries()
        assert summary.unique_flows == 2
        assert summary.sampled_packets == 3


class TestSharingAnalysis:
    def _collector_with_slots(self, sizes):
        collector = IpfixCollector()
        for slot, size in enumerate(sizes):
            for i in range(size):
                collector.ingest(
                    SampledHeader(("srv", 1000 * slot + i, f"100.0.{slot}.1", 443), 0.0)
                )
        return collector

    def test_fractions(self):
        # Slots of 1, 6, and 101 flows.
        collector = self._collector_with_slots([1, 6, 101])
        stats = sharing_stats(collector)
        assert stats.observations == 108
        # Flows sharing with >= 5 others: the 6-slot and 101-slot flows.
        assert stats.fraction_at_least(5) == pytest.approx(107 / 108)
        assert stats.fraction_at_least(100) == pytest.approx(101 / 108)

    def test_empty_collector(self):
        stats = sharing_stats(IpfixCollector())
        assert stats.observations == 0
        assert stats.fraction_at_least(5) == 0.0

    def test_unknown_threshold_raises(self):
        stats = sharing_stats(self._collector_with_slots([2]))
        with pytest.raises(KeyError):
            stats.fraction_at_least(7)

    def test_ccdf_monotone(self):
        collector = self._collector_with_slots([1, 3, 10, 50])
        ccdf = sharing_ccdf(collector)
        fractions = [f for _k, f in ccdf]
        assert fractions == sorted(fractions, reverse=True)
        assert ccdf[0][1] == 1.0

    def test_end_to_end_shape_matches_paper(self):
        # Full pipeline at default calibration, small scale: the headline
        # fractions should be in the paper's neighbourhood.
        rng = np.random.default_rng(5)
        config = TrafficModelConfig()
        model = EgressTrafficModel(config, rng)
        sampler = IpfixSampler(rng)
        collector = IpfixCollector()
        for batch in model.generate(2):
            collector.ingest_many(sampler.sample_flows(batch))
        stats = sharing_stats(collector)
        assert 0.30 <= stats.fraction_at_least(5) <= 0.70
        assert 0.03 <= stats.fraction_at_least(100) <= 0.30
        assert stats.fraction_at_least(5) > stats.fraction_at_least(100)

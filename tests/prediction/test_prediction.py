"""Tests for performance prediction: store, E-model, predictor."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction import (
    ACCEPTABLE_MOS,
    MOS_MAX,
    MOS_MIN,
    Confidence,
    ObservationStore,
    PerfObservation,
    PerformancePredictor,
    e_model_mos,
)


def obs(location=("isp-a", "nyc"), t=0.0, mbps=10.0, rtt=50.0, loss=0.0):
    return PerfObservation(
        location=location, timestamp=t, throughput_mbps=mbps, rtt_ms=rtt,
        loss_rate=loss,
    )


class TestObservationStore:
    def test_record_and_recent(self):
        store = ObservationStore()
        store.record(obs(t=1.0))
        store.record(obs(t=2.0))
        recent = store.recent(("isp-a", "nyc"))
        assert len(recent) == 2
        assert recent[-1].timestamp == 2.0

    def test_since_filter(self):
        store = ObservationStore()
        for t in (1.0, 2.0, 3.0):
            store.record(obs(t=t))
        assert len(store.recent(("isp-a", "nyc"), since=2.0)) == 2

    def test_limit(self):
        store = ObservationStore()
        for t in range(10):
            store.record(obs(t=float(t)))
        assert len(store.recent(("isp-a", "nyc"), limit=3)) == 3

    def test_bounded_history(self):
        store = ObservationStore(max_per_location=5)
        for t in range(10):
            store.record(obs(t=float(t)))
        recent = store.recent(("isp-a", "nyc"))
        assert len(recent) == 5
        assert recent[0].timestamp == 5.0

    def test_locations_and_counts(self):
        store = ObservationStore()
        store.record(obs())
        store.record(obs(location=("isp-b", "lon")))
        assert set(store.locations()) == {("isp-a", "nyc"), ("isp-b", "lon")}
        assert store.sample_count(("isp-b", "lon")) == 1
        assert store.sample_count(("isp-z", "zzz")) == 0

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            obs(mbps=-1)
        with pytest.raises(ValueError):
            obs(rtt=-1)
        with pytest.raises(ValueError):
            obs(loss=2.0)

    def test_store_validation(self):
        with pytest.raises(ValueError):
            ObservationStore(max_per_location=0)


class TestEModel:
    def test_clean_path_is_good(self):
        assert e_model_mos(rtt_ms=40.0, loss_rate=0.0) > 4.0

    def test_heavy_loss_is_bad(self):
        assert e_model_mos(rtt_ms=40.0, loss_rate=0.2) < 2.5

    def test_long_delay_degrades(self):
        assert e_model_mos(600.0, 0.0) < e_model_mos(50.0, 0.0)

    def test_bounds(self):
        assert MOS_MIN <= e_model_mos(0.0, 0.0) <= MOS_MAX
        assert e_model_mos(10_000.0, 1.0) == MOS_MIN

    def test_validation(self):
        with pytest.raises(ValueError):
            e_model_mos(-1.0, 0.0)
        with pytest.raises(ValueError):
            e_model_mos(1.0, 2.0)

    @given(
        st.floats(min_value=0, max_value=2000),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=100)
    def test_mos_always_in_range(self, rtt, loss):
        assert MOS_MIN <= e_model_mos(rtt, loss) <= MOS_MAX

    @given(st.floats(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_mos_monotone_in_loss(self, rtt):
        assert e_model_mos(rtt, 0.0) >= e_model_mos(rtt, 0.1) >= e_model_mos(rtt, 0.5)


class TestConfidence:
    def test_grades(self):
        assert Confidence.from_samples(0) is Confidence.NONE
        assert Confidence.from_samples(5) is Confidence.LOW
        assert Confidence.from_samples(50) is Confidence.MEDIUM
        assert Confidence.from_samples(500) is Confidence.HIGH


class TestPredictor:
    def _loaded_predictor(self, n=50, mbps=8.0, rtt=60.0, loss=0.001):
        store = ObservationStore()
        for t in range(n):
            store.record(obs(t=float(t), mbps=mbps, rtt=rtt, loss=loss))
        return PerformancePredictor(store)

    def test_download_prediction(self):
        predictor = self._loaded_predictor(mbps=8.0)
        prediction = predictor.predict_download_time(("isp-a", "nyc"), 10_000_000)
        # 80 Mbit at 8 Mbps = 10 s.
        assert prediction.expected_seconds == pytest.approx(10.0, rel=0.01)
        assert prediction.p90_seconds >= prediction.expected_seconds
        assert prediction.confidence is Confidence.MEDIUM

    def test_no_history_gives_no_confidence(self):
        predictor = PerformancePredictor(ObservationStore())
        prediction = predictor.predict_download_time(("a", "b"), 1000)
        assert prediction.confidence is Confidence.NONE
        assert math.isinf(prediction.expected_seconds)

    def test_insufficient_history_low_confidence(self):
        store = ObservationStore()
        store.record(obs())
        predictor = PerformancePredictor(store, min_samples=3)
        prediction = predictor.predict_download_time(("isp-a", "nyc"), 1000)
        assert prediction.confidence is Confidence.LOW

    def test_size_validation(self):
        with pytest.raises(ValueError):
            self._loaded_predictor().predict_download_time(("isp-a", "nyc"), 0)

    def test_call_quality_good_path(self):
        predictor = self._loaded_predictor(rtt=50.0, loss=0.0)
        prediction = predictor.predict_call_quality(("isp-a", "nyc"))
        assert prediction.acceptable
        assert prediction.mos >= ACCEPTABLE_MOS

    def test_call_quality_lossy_path(self):
        predictor = self._loaded_predictor(rtt=300.0, loss=0.08)
        prediction = predictor.predict_call_quality(("isp-a", "nyc"))
        assert not prediction.acceptable

    def test_call_quality_no_history(self):
        predictor = PerformancePredictor(ObservationStore())
        prediction = predictor.predict_call_quality(("a", "b"))
        assert prediction.confidence is Confidence.NONE
        assert not prediction.acceptable

    def test_predictions_use_location_pooling(self):
        # Observations from *other* connections at the same location
        # inform a brand-new client (the paper's core point).
        store = ObservationStore()
        for t in range(20):
            store.record(obs(location=("isp-a", "nyc"), t=float(t), mbps=2.0))
            store.record(obs(location=("isp-b", "lon"), t=float(t), mbps=50.0))
        predictor = PerformancePredictor(store)
        slow = predictor.predict_download_time(("isp-a", "nyc"), 1_000_000)
        fast = predictor.predict_download_time(("isp-b", "lon"), 1_000_000)
        assert slow.expected_seconds > fast.expected_seconds * 10

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            PerformancePredictor(ObservationStore(), min_samples=0)

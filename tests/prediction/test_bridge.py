"""Tests for the simulation-to-prediction bridge."""

import pytest

from repro.prediction import (
    ObservationStore,
    PerformancePredictor,
    PredictionFeeder,
    observation_from_stats,
)
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicSender, TcpSink
from repro.transport.base import ConnectionStats

LOCATION = ("isp-a", "nyc")


def stats(goodput=1_000_000, duration=2.0, rtts=(0.15, 0.16)):
    s = ConnectionStats(flow_id=1)
    s.start_time = 0.0
    s.end_time = duration
    s.bytes_goodput = goodput
    s.rtt_samples = list(rtts)
    s.min_rtt = min(rtts) if rtts else float("inf")
    s.packets_sent = 700
    return s


class TestObservationFromStats:
    def test_conversion(self):
        obs = observation_from_stats(stats(), LOCATION)
        assert obs is not None
        assert obs.throughput_mbps == pytest.approx(4.0)
        assert obs.rtt_ms == pytest.approx(155.0)
        assert obs.location == LOCATION

    def test_empty_connection_skipped(self):
        assert observation_from_stats(stats(goodput=0), LOCATION) is None

    def test_no_rtt_samples(self):
        obs = observation_from_stats(stats(rtts=()), LOCATION)
        assert obs is not None
        assert obs.rtt_ms == 0.0


class TestFeeder:
    def test_record_counts(self):
        store = ObservationStore()
        feeder = PredictionFeeder(store, LOCATION)
        feeder.record(stats())
        feeder.record(stats(goodput=0))
        assert feeder.recorded == 1
        assert feeder.skipped == 1
        assert store.sample_count(LOCATION) == 1

    def test_wrap_chains_callback(self):
        store = ObservationStore()
        feeder = PredictionFeeder(store, LOCATION)
        seen = []

        class FakeSender:
            def __init__(self):
                self.stats = stats()

        callback = feeder.wrap(seen.append)
        sender = FakeSender()
        callback(sender)
        assert seen == [sender]
        assert feeder.recorded == 1

    def test_end_to_end_with_real_flows(self):
        """Simulated connections feed predictions usable by new clients."""
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        store = ObservationStore()
        feeder = PredictionFeeder(store, LOCATION)
        for i in range(5):
            spec = FlowSpec(
                i + 1, top.senders[0].name, 1000 + i, top.receivers[0].name, 443
            )
            TcpSink(sim, top.receivers[0], spec)
            sender = CubicSender(
                sim, top.senders[0], spec, 400_000, feeder.wrap()
            )
            sim.schedule(i * 3.0, sender.start)
        sim.run(until=60.0)
        assert feeder.recorded == 5
        predictor = PerformancePredictor(store)
        prediction = predictor.predict_download_time(LOCATION, 1_000_000)
        assert prediction.expected_seconds < 30.0
        assert prediction.expected_throughput_mbps > 0.5

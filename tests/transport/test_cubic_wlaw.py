"""Regression: the TCP-friendly window follows Ha et al. (2008), eq. 4.

``W_tcp(t) = W_epoch + (3*beta / (2 - beta)) * (t / RTT)`` grows linearly
from the *post-decrease window at the epoch start* (``_tcp_window``) with
the same look-ahead time ``t = elapsed + rtt`` as the cubic target.  The
old code anchored the line at ``_origin_window`` — which is W_max in the
concave regime — so the "friendly" window started an entire decrease
*above* the cubic target and Cubic never actually entered its
TCP-friendly region after a loss.
"""

import pytest

from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicParams, CubicSender
from repro.transport.sink import TcpSink


def make_cubic(params=None):
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 10_000, top.receivers[0].name, 443)
    TcpSink(sim, top.receivers[0], spec)
    return CubicSender(sim, top.senders[0], spec, 10**7, params=params)


class TestTcpFriendlyWindowLaw:
    def test_matches_ha_et_al_formula(self):
        sender = make_cubic(CubicParams(window_init=2, initial_ssthresh=64, beta=0.3))
        sender._w_max = 100.0
        sender.cwnd = 70.0  # post-decrease
        sender._begin_epoch()
        beta, rtt = 0.3, 0.15
        slope = 3.0 * beta / (2.0 - beta)
        for elapsed in (0.0, 0.15, 1.0, 5.0):
            expected = 70.0 + slope * ((elapsed + rtt) / rtt)
            assert sender._tcp_friendly_window(elapsed, rtt) == pytest.approx(expected)

    def test_anchored_at_epoch_window_not_w_max(self):
        sender = make_cubic(CubicParams(window_init=2, initial_ssthresh=64, beta=0.2))
        sender._w_max = 200.0
        sender.cwnd = 160.0
        sender._begin_epoch()
        # At the epoch start (elapsed == 0) the friendly window is one
        # RTT's AIMD growth above the epoch window — nowhere near W_max.
        w0 = sender._tcp_friendly_window(0.0, 0.1)
        assert w0 < sender._w_max / 2 + 100  # sanity: scaled with cwnd, not W_max
        assert w0 == pytest.approx(160.0 + 3.0 * 0.2 / 1.8, abs=1e-9)

    def test_growth_rate_is_reno_slope_per_rtt(self):
        sender = make_cubic(CubicParams(window_init=2, initial_ssthresh=64, beta=0.2))
        sender._w_max = 50.0
        sender.cwnd = 40.0
        sender._begin_epoch()
        rtt = 0.1
        slope = 3.0 * 0.2 / 1.8
        one = sender._tcp_friendly_window(1 * rtt, rtt)
        two = sender._tcp_friendly_window(2 * rtt, rtt)
        assert two - one == pytest.approx(slope)

    def test_zero_rtt_guard(self):
        sender = make_cubic()
        assert sender._tcp_friendly_window(1.0, 0.0) == 0.0

    def test_friendly_region_reachable_after_loss(self):
        """With a small cwnd and large W_max the cubic target hugs the
        plateau while Reno-style growth overtakes it — the friendly
        branch must win.  Under the old W_max anchoring this could not
        happen right after a decrease."""
        sender = make_cubic(CubicParams(window_init=2, initial_ssthresh=64, beta=0.7))
        sender._w_max = 20.0
        sender.cwnd = 6.0
        sender._begin_epoch()
        rtt = 0.2
        elapsed = 40 * rtt
        friendly = sender._tcp_friendly_window(elapsed, rtt)
        cubic = sender._cubic_target(elapsed, rtt)
        assert friendly > sender.cwnd  # it actually grew
        # The pinned trajectory: W_epoch + slope * (t/RTT), bit-exact.
        slope = 3.0 * 0.7 / (2.0 - 0.7)
        assert friendly == 6.0 + slope * ((elapsed + rtt) / rtt)
        assert cubic >= 0  # and the cubic branch stays well-defined

"""Regression: ACKs echoing a send time of exactly 0.0 are RTT-sampled.

A flow whose first segment leaves at sim time zero produces ACKs with
``echo_timestamp == 0.0``.  The old guard (``echo_timestamp > 0``)
silently discarded those samples, so the very first RTT measurement of
every run — the one taken on an empty queue, i.e. the best min-RTT
estimate — was lost.  The guard is now ``is not None`` with ``None`` as
the explicit no-echo sentinel.
"""

import math

from repro.remy import WhiskerTable
from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowSpec,
    Simulator,
    make_ack_packet,
)
from repro.transport import RemySender, TcpSink
from repro.transport.base import TcpSender


def bare_sender(sender_cls=TcpSender, **kwargs):
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
    TcpSink(sim, top.receivers[0], spec)
    sender = sender_cls(sim, top.senders[0], spec, 100_000, **kwargs)
    return sim, sender, spec


def ack_at(sim, sender, spec, t, echo):
    ack = make_ack_packet(
        spec.flow_id, spec.dst, spec.src, 0, echo_timestamp=echo
    )
    sim.schedule_at(t, sender.handle_packet, ack)


class TestZeroTimestampEcho:
    def test_echo_of_time_zero_is_sampled(self):
        sim, sender, spec = bare_sender()
        ack_at(sim, sender, spec, 0.1, echo=0.0)
        sim.run()
        assert sender.stats.rtt_samples == [0.1]
        assert sender.stats.min_rtt == 0.1

    def test_missing_echo_is_skipped(self):
        sim, sender, spec = bare_sender()
        ack_at(sim, sender, spec, 0.1, echo=None)
        sim.run()
        assert sender.stats.rtt_samples == []
        assert math.isinf(sender.stats.min_rtt)

    def test_remy_sender_tolerates_missing_echo(self):
        sim, sender, spec = bare_sender(RemySender, table=WhiskerTable())
        ack_at(sim, sender, spec, 0.1, echo=None)
        ack_at(sim, sender, spec, 0.2, echo=0.0)
        sim.run()
        assert sender.stats.rtt_samples == [0.2]


class TestFirstSampleEndToEnd:
    def test_flow_starting_at_time_zero_samples_first_rtt(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = TcpSender(sim, top.senders[0], spec, 20_000, done.append)
        sender.start()  # first segment leaves at exactly t = 0
        sim.run(until=30.0)
        assert done and sender.stats.completed
        # The first ACK of the run (echo 0.0, empty queues) is the best
        # min-RTT estimate and must be present.
        first_sample = sender.stats.rtt_samples[0]
        assert first_sample == sender.stats.min_rtt
        assert first_sample > 0

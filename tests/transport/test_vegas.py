"""Tests for the TCP Vegas baseline."""

import pytest

from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicParams, CubicSender, TcpSink, VegasSender


def run_vegas(flow_bytes=1_000_000, config=None, until=120.0, **kwargs):
    sim = Simulator()
    top = DumbbellTopology(sim, config or DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
    TcpSink(sim, top.receivers[0], spec)
    done = []
    sender = VegasSender(sim, top.senders[0], spec, flow_bytes, done.append, **kwargs)
    sender.start()
    sim.run(until=until)
    return sender, top, done


class TestVegas:
    def test_parameter_validation(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        with pytest.raises(ValueError):
            VegasSender(sim, top.senders[0], spec, 1000, alpha=0.0)
        with pytest.raises(ValueError):
            VegasSender(sim, top.senders[0], spec, 1000, alpha=5.0, beta=3.0)

    def test_flow_completes(self):
        sender, _, done = run_vegas()
        assert done and sender.stats.completed

    def test_keeps_queue_nearly_empty(self):
        """Vegas's whole point: a solo Vegas flow holds only alpha..beta
        packets at the bottleneck, so mean queueing delay stays tiny."""
        sender, top, done = run_vegas(flow_bytes=4_000_000, until=200.0)
        assert done
        # Mean queueing delay in segments: delay * bandwidth / mss.
        delay_s = sender.stats.mean_queueing_delay
        backlog_segments = (
            delay_s * top.config.bottleneck_bandwidth_bps / 8.0 / 1460.0
        )
        # Mean includes the slow-start ramp, so allow a little above beta;
        # the 5xBDP buffer holds ~960 segments, Vegas sits ~2 orders below.
        assert backlog_segments < 20.0

    def test_lower_delay_than_cubic(self):
        config = DumbbellConfig(n_senders=1)
        vegas, _, vdone = run_vegas(4_000_000, config=config, until=200.0)

        sim = Simulator()
        top = DumbbellTopology(sim, config)
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        cdone = []
        cubic = CubicSender(
            sim, top.senders[0], spec, 4_000_000, cdone.append,
            params=CubicParams.default(),
        )
        cubic.start()
        sim.run(until=200.0)

        assert vdone and cdone
        assert vegas.stats.mean_queueing_delay <= cubic.stats.mean_queueing_delay

    def test_backlog_estimator(self):
        sender, _, _ = run_vegas(50_000)
        sender.rtt.observe(0.15)
        sender.rtt.observe(0.30)
        backlog = sender._estimated_backlog()
        assert backlog is not None
        assert backlog > 0

    def test_decrease_when_backlog_high(self):
        sender, _, _ = run_vegas(50_000)
        # Deep standing queue: srtt far above min.
        sender.rtt.min_rtt = 0.1
        sender.rtt.srtt = 0.4
        sender.cwnd = 20.0
        sender.ssthresh = 1.0
        before = sender.cwnd
        sender._on_ack_congestion_avoidance(1.0)
        assert sender.cwnd < before

    def test_loss_reaction_is_gentler_than_reno(self):
        sender, _, _ = run_vegas(50_000)
        sender.cwnd = 40.0
        sender._on_loss_event()
        assert sender.cwnd == pytest.approx(30.0)  # 0.75 factor

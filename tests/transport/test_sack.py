"""Tests for SACK-based loss recovery: scoreboard, pipe, hole repair."""

import pytest

from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.simnet.packet import make_ack_packet
from repro.transport import CubicSender, TcpSender, TcpSink
from repro.transport.sink import ByteIntervalSet


class TestByteIntervalSetSackOps:
    def test_covers(self):
        s = ByteIntervalSet()
        s.add(100, 200)
        assert s.covers(100)
        assert s.covers(199)
        assert not s.covers(200)
        assert not s.covers(99)

    def test_prune_below(self):
        s = ByteIntervalSet()
        s.add(0, 100)
        s.add(200, 300)
        s.prune_below(250)
        assert s.intervals() == [(250, 300)]
        assert s.total_bytes == 50

    def test_prune_below_everything(self):
        s = ByteIntervalSet()
        s.add(0, 100)
        s.prune_below(500)
        assert s.intervals() == []

    def test_prune_noop(self):
        s = ByteIntervalSet()
        s.add(100, 200)
        s.prune_below(50)
        assert s.intervals() == [(100, 200)]


def make_sender(flow_size=100_000, mss=1000):
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
    TcpSink(sim, top.receivers[0], spec)
    sender = TcpSender(sim, top.senders[0], spec, flow_size, mss=mss)
    return sim, top, spec, sender


class TestScoreboard:
    def ack(self, spec, cum, blocks=(), rtx=False):
        ack = make_ack_packet(spec.flow_id, spec.dst, spec.src, cum)
        ack.sack_blocks = tuple(blocks)
        ack.is_retransmit = rtx
        return ack

    def test_sack_blocks_recorded(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sender.snd_nxt = 10_000
        sender.handle_packet(self.ack(spec, 0, [(2000, 4000)]))
        assert sender._sacked.covers(2000)
        assert not sender._sacked.covers(4000)

    def test_pipe_excludes_sacked(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sender.snd_nxt = 10_000
        assert sender.pipe_segments == pytest.approx(10.0)
        sender.handle_packet(self.ack(spec, 0, [(2000, 5000)]))
        assert sender.pipe_segments == pytest.approx(7.0)

    def test_cumulative_ack_prunes_scoreboard(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sender.snd_nxt = 10_000
        sender.handle_packet(self.ack(spec, 0, [(2000, 5000)]))
        sender.handle_packet(self.ack(spec, 6000))
        assert sender._sacked.total_bytes == 0

    def test_stale_blocks_beyond_snd_nxt_ignored(self):
        """Regression: after an RTO rewinds snd_nxt (go-back-N) and
        clears the scoreboard, a straggler ACK carrying pre-rewind SACK
        blocks must not re-admit bytes beyond the send horizon — the
        scoreboard would then cover more than is outstanding."""
        sim, top, spec, sender = make_sender()
        sender.start()
        sender.snd_nxt = 1000  # post-RTO horizon: one segment outstanding
        sender.handle_packet(self.ack(spec, 0, [(1000, 4000)]))
        assert sender._sacked.total_bytes == 0
        # A block straddling the horizon keeps only its in-horizon part.
        sender.snd_nxt = 2000
        sender.handle_packet(self.ack(spec, 0, [(1000, 4000)]))
        assert sender._sacked.total_bytes == 1000
        assert sender._sacked.covers(1000) and not sender._sacked.covers(2000)
        outstanding = sender.snd_nxt - sender.snd_una
        assert sender._sacked.total_bytes <= outstanding

    def test_next_hole_skips_sacked(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sender.snd_nxt = 10_000
        sender.recovery_point = 10_000
        sender.handle_packet(self.ack(spec, 0, [(1000, 3000)]))
        sender.handle_packet(self.ack(spec, 0, [(1000, 3000)]))
        # First hole is segment 0; after that, the sacked range is skipped.
        assert sender._next_hole() in (0, 3000)

    def test_three_dupacks_trigger_recovery_and_repair(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sim.run(until=0.01)  # initial window sent
        sender.snd_nxt = 10_000
        sender.cwnd = 10.0
        before = sender.stats.retransmits
        for __ in range(3):
            sender.handle_packet(self.ack(spec, 0, [(1000, 4000)]))
        assert sender.in_recovery
        assert sender.stats.fast_retransmits == 1
        assert sender.stats.retransmits > before
        # The repaired segment is the un-sacked hole at 0.
        assert 0 in sender._recovery_retransmitted

    def test_full_ack_exits_recovery(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sim.run(until=0.01)
        sender.snd_nxt = 10_000
        sender.cwnd = 10.0
        for __ in range(3):
            sender.handle_packet(self.ack(spec, 0, [(1000, 4000)]))
        assert sender.in_recovery
        sender.handle_packet(self.ack(spec, 10_000))
        assert not sender.in_recovery
        assert sender._recovery_retransmitted == set()

    def test_rto_clears_scoreboard(self):
        sim, top, spec, sender = make_sender()
        sender.start()
        sender.snd_nxt = 10_000
        sender.handle_packet(self.ack(spec, 0, [(2000, 4000)]))
        sender._on_rto()
        assert sender._sacked.total_bytes == 0
        assert not sender.in_recovery


class TestSackEndToEnd:
    def test_burst_loss_recovers_without_timeout(self):
        """A single burst of drops in a large window should be repaired by
        SACK-driven fast recovery, not by RTO."""
        sim = Simulator()
        config = DumbbellConfig(
            n_senders=1,
            bottleneck_bandwidth_bps=8_000_000.0,
            rtt_s=0.08,
            buffer_bdp_multiple=0.6,
        )
        top = DumbbellTopology(sim, config)
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        done = []
        sender = CubicSender(sim, top.senders[0], spec, 3_000_000, done.append)
        sender.start()
        sim.run(until=120.0)
        assert done
        assert top.bottleneck_queue.stats.dropped_packets > 0
        assert sender.stats.fast_retransmits >= 1
        # SACK keeps RTO rare even with bursty slow-start losses (a lost
        # retransmission still needs the timer, so a couple are expected).
        assert sender.stats.timeouts <= 3
        assert sender.stats.fast_retransmits > sender.stats.timeouts
        # The transfer is not RTO-dominated: 3 MB at 8 Mbps has a 3 s
        # floor; heavy timeout stalls would blow far past 10 s.
        assert sender.stats.duration < 10.0

    def test_no_spurious_retransmits_on_clean_path(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = CubicSender(sim, top.senders[0], spec, 1_000_000)
        sender.start()
        sim.run(until=60.0)
        assert sender.stats.retransmits == 0
        assert sender.stats.timeouts == 0

"""Tests for TCP Cubic: parameters, window law, sweep grid."""

import pytest

from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicParams, CubicSender, NewRenoSender, cubic_sweep_grid
from repro.transport.sink import TcpSink


def run_cubic(flow_bytes, params=None, config=None, until=200.0, **kwargs):
    sim = Simulator()
    cfg = config or DumbbellConfig(n_senders=1)
    top = DumbbellTopology(sim, cfg)
    spec = FlowSpec(1, top.senders[0].name, 10_000, top.receivers[0].name, 443)
    done = []
    TcpSink(sim, top.receivers[0], spec)
    sender = CubicSender(
        sim, top.senders[0], spec, flow_bytes, done.append, params=params, **kwargs
    )
    sender.start()
    sim.run(until=until)
    return sender, top, done


class TestCubicParams:
    def test_table1_defaults(self):
        params = CubicParams.default()
        assert params.window_init == 2.0
        assert params.initial_ssthresh == 65536.0
        assert params.beta == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            CubicParams(window_init=0)
        with pytest.raises(ValueError):
            CubicParams(initial_ssthresh=1)
        with pytest.raises(ValueError):
            CubicParams(beta=0.0)
        with pytest.raises(ValueError):
            CubicParams(beta=1.0)

    def test_hashable_for_policy_caches(self):
        a = CubicParams(window_init=4, initial_ssthresh=64, beta=0.3)
        b = CubicParams(window_init=4, initial_ssthresh=64, beta=0.3)
        assert a == b and hash(a) == hash(b)

    def test_with_updates(self):
        params = CubicParams.default().with_updates(beta=0.5)
        assert params.beta == 0.5
        assert params.window_init == 2.0

    def test_as_dict(self):
        d = CubicParams.default().as_dict()
        assert set(d) == {"window_init", "initial_ssthresh", "beta"}


class TestSweepGrid:
    def test_table2_grid_size(self):
        grid = list(cubic_sweep_grid())
        # 8 ssthresh values x 8 window_init values x 9 betas.
        assert len(grid) == 8 * 8 * 9

    def test_table2_ranges(self):
        grid = list(cubic_sweep_grid())
        ssthreshes = {p.initial_ssthresh for p in grid}
        window_inits = {p.window_init for p in grid}
        betas = {p.beta for p in grid}
        assert min(ssthreshes) == 2 and max(ssthreshes) == 256
        assert min(window_inits) == 2 and max(window_inits) == 256
        assert min(betas) == pytest.approx(0.1)
        assert max(betas) == pytest.approx(0.9)

    def test_custom_ranges(self):
        grid = list(cubic_sweep_grid([4.0], [2.0], [0.2, 0.4]))
        assert len(grid) == 2


class TestCubicBehaviour:
    def test_flow_completes(self):
        sender, _, done = run_cubic(1_000_000)
        assert done and sender.stats.completed

    def test_beta_decrease_on_loss(self):
        sender, _, _ = run_cubic(10_000, params=CubicParams(beta=0.4))
        sender.cwnd = 100.0
        sender._on_loss_event()
        assert sender.cwnd == pytest.approx(60.0)
        assert sender.ssthresh == pytest.approx(60.0)

    def test_loss_starts_new_epoch(self):
        sender, _, _ = run_cubic(10_000)
        sender.cwnd = 50.0
        sender._on_loss_event()
        assert sender._epoch_start is None
        assert sender._w_max == pytest.approx(50.0)

    def test_cubic_target_concave_then_convex(self):
        sender, _, _ = run_cubic(10_000)
        sender._w_max = 100.0
        sender.cwnd = 80.0
        sender._begin_epoch()
        k = sender._k
        # Before K: below origin; at K: equal; after K: above.
        assert sender._cubic_target(k / 2, 0.0) < 100.0
        assert sender._cubic_target(k, 0.0) == pytest.approx(100.0)
        assert sender._cubic_target(k * 2, 0.0) > 100.0

    def test_small_ssthresh_slows_early_growth(self):
        fast, _, _ = run_cubic(400_000, params=CubicParams())
        slow, _, _ = run_cubic(
            400_000, params=CubicParams(initial_ssthresh=2.0)
        )
        assert fast.stats.duration < slow.stats.duration

    def test_larger_initial_window_speeds_short_flows(self):
        small, _, _ = run_cubic(30_000, params=CubicParams(window_init=2))
        large, _, _ = run_cubic(30_000, params=CubicParams(window_init=16))
        assert large.stats.duration < small.stats.duration

    def test_shallow_buffer_causes_cubic_epochs(self):
        config = DumbbellConfig(
            n_senders=1,
            bottleneck_bandwidth_bps=2_000_000.0,
            rtt_s=0.1,
            buffer_bdp_multiple=0.5,
        )
        sender, top, done = run_cubic(2_000_000, config=config, until=400.0)
        assert done
        assert top.bottleneck_queue.stats.dropped_packets > 0

    def test_tcp_friendliness_flag(self):
        sender, _, _ = run_cubic(10_000, tcp_friendliness=False)
        assert sender.tcp_friendliness is False

    def test_timeout_event_resets_window(self):
        sender, _, _ = run_cubic(10_000)
        sender.cwnd = 40.0
        sender._on_timeout_event()
        assert sender.cwnd == 1.0
        assert sender._epoch_start is None


class TestNewReno:
    def test_flavour_name(self):
        assert NewRenoSender.flavour == "newreno"

    def test_flow_completes(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        done = []
        TcpSink(sim, top.receivers[0], spec)
        sender = NewRenoSender(sim, top.senders[0], spec, 500_000, done.append)
        sender.start()
        sim.run(until=100.0)
        assert done

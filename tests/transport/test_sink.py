"""Tests for the TCP sink and byte-interval reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.simnet.packet import make_data_packet
from repro.transport.sink import ByteIntervalSet, TcpSink


class TestByteIntervalSet:
    def test_contiguous_from_origin(self):
        s = ByteIntervalSet()
        s.add(0, 100)
        s.add(100, 200)
        assert s.contiguous_from(0) == 200

    def test_hole_blocks_contiguity(self):
        s = ByteIntervalSet()
        s.add(0, 100)
        s.add(200, 300)
        assert s.contiguous_from(0) == 100
        s.add(100, 200)
        assert s.contiguous_from(0) == 300

    def test_overlapping_merge(self):
        s = ByteIntervalSet()
        s.add(0, 150)
        s.add(100, 250)
        assert s.total_bytes == 250
        assert s.fragment_count == 1

    def test_duplicate_adds_idempotent(self):
        s = ByteIntervalSet()
        s.add(0, 100)
        s.add(0, 100)
        assert s.total_bytes == 100

    def test_empty_interval_ignored(self):
        s = ByteIntervalSet()
        s.add(10, 10)
        s.add(10, 5)
        assert s.total_bytes == 0

    def test_out_of_order_inserts(self):
        s = ByteIntervalSet()
        s.add(200, 300)
        s.add(0, 100)
        s.add(100, 200)
        assert s.contiguous_from(0) == 300
        assert s.fragment_count == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=1, max_value=20),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=80)
    def test_matches_reference_set_semantics(self, chunks):
        s = ByteIntervalSet()
        reference = set()
        for start, length in chunks:
            s.add(start, start + length)
            reference.update(range(start, start + length))
        assert s.total_bytes == len(reference)
        expected_contig = 0
        while expected_contig in reference:
            expected_contig += 1
        assert s.contiguous_from(0) == expected_contig

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=1, max_value=30),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_fragments_disjoint_and_sorted(self, chunks):
        s = ByteIntervalSet()
        for start, length in chunks:
            s.add(start, start + length)
        intervals = s._intervals
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 < lo2, "intervals must stay disjoint and sorted"


class TestTcpSink:
    def _make(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, "client", 1, top.receivers[0].name, 443)
        sink = TcpSink(sim, top.receivers[0], spec)
        return sim, top, spec, sink

    def test_in_order_cumulative_acks(self):
        sim, top, spec, sink = self._make()
        acks = []
        top.receivers[0].send = lambda p: acks.append(p)  # capture outbound
        for i in range(3):
            sink.handle_packet(make_data_packet(1, "client", spec.dst, i * 100, 100))
        assert [a.seq for a in acks] == [100, 200, 300]

    def test_out_of_order_generates_dup_acks(self):
        sim, top, spec, sink = self._make()
        acks = []
        top.receivers[0].send = lambda p: acks.append(p)
        sink.handle_packet(make_data_packet(1, "client", spec.dst, 0, 100))
        sink.handle_packet(make_data_packet(1, "client", spec.dst, 200, 100))
        sink.handle_packet(make_data_packet(1, "client", spec.dst, 300, 100))
        assert [a.seq for a in acks] == [100, 100, 100]
        sink.handle_packet(make_data_packet(1, "client", spec.dst, 100, 100))
        assert acks[-1].seq == 400

    def test_echo_timestamp_propagated(self):
        sim, top, spec, sink = self._make()
        acks = []
        top.receivers[0].send = lambda p: acks.append(p)
        packet = make_data_packet(1, "client", spec.dst, 0, 100, sent_at=1.25)
        sink.handle_packet(packet)
        assert acks[0].echo_timestamp == 1.25

    def test_retransmit_flag_propagated(self):
        sim, top, spec, sink = self._make()
        acks = []
        top.receivers[0].send = lambda p: acks.append(p)
        sink.handle_packet(
            make_data_packet(1, "client", spec.dst, 0, 100, is_retransmit=True)
        )
        assert acks[0].is_retransmit

    def test_duplicate_data_counted(self):
        sim, top, spec, sink = self._make()
        top.receivers[0].send = lambda p: None
        packet = make_data_packet(1, "client", spec.dst, 0, 100)
        sink.handle_packet(packet)
        sink.handle_packet(make_data_packet(1, "client", spec.dst, 0, 100))
        assert sink.duplicate_packets == 1
        assert sink.bytes_received == 100

    def test_close_unregisters(self):
        sim, top, spec, sink = self._make()
        sink.close()
        # Re-registering the same flow id must now succeed.
        TcpSink(sim, top.receivers[0], spec)

"""Tests for the RemyCC sender: pacing, whisker-driven windows, modes."""

import pytest

from repro.remy import Memory, WhiskerTable
from repro.remy.whisker import Action
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import RemySender, TcpSink


def build(flow_size=200_000, table=None, util_provider=None, config=None):
    sim = Simulator()
    top = DumbbellTopology(sim, config or DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
    sink = TcpSink(sim, top.receivers[0], spec)
    done = []
    sender = RemySender(
        sim,
        top.senders[0],
        spec,
        flow_size,
        done.append,
        table=table if table is not None else WhiskerTable(),
        util_provider=util_provider,
    )
    return sim, top, sender, done


class TestRemySenderBasics:
    def test_flow_completes(self):
        sim, top, sender, done = build()
        sender.start()
        sim.run(until=120.0)
        assert done
        assert sender.stats.completed

    def test_table_consulted_on_acks(self):
        table = WhiskerTable()
        sim, top, sender, done = build(flow_size=50_000, table=table)
        sender.start()
        sim.run(until=60.0)
        assert table.whiskers[0].use_count > 0

    def test_window_follows_action(self):
        table = WhiskerTable()
        table.whiskers[0].action = Action(
            window_increment=5.0, window_multiple=1.0, intersend_s=0.001
        )
        sim, top, sender, done = build(flow_size=300_000, table=table)
        sender.start()
        sim.run(until=60.0)
        assert done
        # cwnd grew beyond the initial 2 via the +5 increments.
        assert sender.cwnd > 2.0

    def test_pacing_limits_send_rate(self):
        # A huge intersend time throttles the flow far below link rate.
        table = WhiskerTable()
        table.whiskers[0].action = Action(
            window_increment=10.0, window_multiple=1.0, intersend_s=0.05
        )
        sim, top, sender, done = build(flow_size=100_000, table=table)
        sender.start()
        sim.run(until=30.0)
        # 100 KB at ~1460 B / 50 ms = ~3.4 s minimum; far slower than the
        # sub-second unpaced transfer.
        assert sender.stats.duration > 2.0 if done else True
        if done:
            assert sender.stats.throughput_bps < 1_000_000

    def test_util_provider_reaches_memory(self):
        table = WhiskerTable(WhiskerTable.PHI_DIMENSIONS)
        sim, top, sender, done = build(
            flow_size=50_000, table=table, util_provider=lambda: 0.42
        )
        sender.start()
        sim.run(until=30.0)
        assert sender.tracker.memory.util == pytest.approx(0.42)

    def test_timeout_resets_memory_and_window(self):
        sim, top, sender, done = build()
        sender.start()
        sim.run(until=0.5)
        sender.tracker.on_ack(0.5, 0.4, 0.2, 0.1)
        sender.cwnd = 50.0
        sender._on_timeout_event()
        assert sender.cwnd == sender.window_init
        assert sender.tracker.memory == Memory.initial()

    def test_abort_cancels_pacing_timer(self):
        table = WhiskerTable()
        table.whiskers[0].action = Action(
            window_increment=1.0, window_multiple=1.0, intersend_s=0.1
        )
        sim, top, sender, done = build(flow_size=1_000_000, table=table)
        sender.start()
        sim.run(until=2.0)
        sender.abort()
        assert sender.finished
        sim.run(until=5.0)  # must not crash on a stale pacing event

    def test_no_explicit_loss_decrease(self):
        sim, top, sender, done = build()
        sender.cwnd = 40.0
        sender._on_loss_event()
        assert sender.cwnd == 40.0  # policy is table-driven, not AIMD

    def test_competing_remy_senders_share_link(self):
        config = DumbbellConfig(n_senders=4, bottleneck_bandwidth_bps=8e6)
        sim = Simulator()
        top = DumbbellTopology(sim, config)
        table = WhiskerTable()
        table.whiskers[0].action = Action(
            window_increment=2.0, window_multiple=1.0, intersend_s=0.004
        )
        senders = []
        for i in range(4):
            spec = FlowSpec(
                i + 1, top.senders[i].name, 1, top.receivers[i].name, 443
            )
            TcpSink(sim, top.receivers[i], spec)
            sender = RemySender(
                sim, top.senders[i], spec, 10**8, table=table
            )
            sender.start()
            senders.append(sender)
        sim.run(until=30.0)
        delivered = [s.snd_una for s in senders]
        total_bps = sum(delivered) * 8 / 30.0
        assert total_bps <= 8e6 * 1.05
        # No sender starves.
        assert min(delivered) > 0.05 * max(delivered)

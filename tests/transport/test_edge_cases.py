"""Edge-case tests across the transport layer."""

import math

import pytest

from repro.ipfix import IpfixCollector, sharing_ccdf
from repro.prediction import ObservationStore, PerformancePredictor
from repro.simnet import DumbbellConfig, DumbbellTopology, FlowSpec, Simulator
from repro.transport import CubicParams, CubicSender, TcpSender, TcpSink


def make_pair(flow_bytes=10_000, sender_cls=TcpSender, **kwargs):
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
    spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
    sink = TcpSink(sim, top.receivers[0], spec)
    sender = sender_cls(sim, top.senders[0], spec, flow_bytes, **kwargs)
    return sim, top, spec, sink, sender


class TestRtoEdgeCases:
    def test_rto_noop_after_finish(self):
        sim, top, spec, sink, sender = make_pair(2_000)
        sender.start()
        sim.run(until=30.0)
        assert sender.finished
        timeouts_before = sender.stats.timeouts
        sender._on_rto()  # stale timer firing after completion
        assert sender.stats.timeouts == timeouts_before

    def test_no_rto_pending_after_finish(self):
        sim, top, spec, sink, sender = make_pair(2_000)
        sender.start()
        sim.run()
        # The calendar must fully drain: no timer leak keeps events alive.
        assert sim.pending_events == 0

    def test_handle_foreign_packet_kinds_ignored(self):
        from repro.simnet.packet import make_data_packet

        sim, top, spec, sink, sender = make_pair(10_000)
        sender.start()
        # A stray DATA packet delivered to the sender must be ignored.
        sender.handle_packet(make_data_packet(1, "x", "y", 0, 100))
        assert sender.stats.packets_sent >= 1


class TestCubicFriendlyRegion:
    def test_tcp_friendly_window_grows_with_time(self):
        sim, top, spec, sink, sender = make_pair(
            10_000, sender_cls=CubicSender, params=CubicParams()
        )
        sender._origin_window = 10.0
        early = sender._tcp_friendly_window(elapsed=0.1, rtt=0.1)
        late = sender._tcp_friendly_window(elapsed=5.0, rtt=0.1)
        assert late > early

    def test_tcp_friendly_window_zero_rtt(self):
        sim, top, spec, sink, sender = make_pair(
            10_000, sender_cls=CubicSender, params=CubicParams()
        )
        assert sender._tcp_friendly_window(1.0, 0.0) == 0.0


class TestIpfixEdges:
    def test_ccdf_empty_collector(self):
        assert sharing_ccdf(IpfixCollector()) == []


class TestPredictionSinceFilter:
    def test_since_excludes_stale_history(self):
        from repro.prediction import PerfObservation

        store = ObservationStore()
        # Old era: slow; new era: fast.
        for t in range(10):
            store.record(
                PerfObservation(("isp", "m"), float(t), 1.0, 100.0, 0.0)
            )
        for t in range(10, 20):
            store.record(
                PerfObservation(("isp", "m"), float(t), 20.0, 100.0, 0.0)
            )
        predictor = PerformancePredictor(store)
        all_history = predictor.predict_download_time(("isp", "m"), 1_000_000)
        recent_only = predictor.predict_download_time(
            ("isp", "m"), 1_000_000, since=10.0
        )
        assert recent_only.expected_seconds < all_history.expected_seconds

"""Tests for the shared TCP machinery: windows, recovery, RTO, stats."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowSpec,
    Simulator,
)
from repro.transport.base import ConnectionStats, RttEstimator, TcpSender
from repro.transport.sink import TcpSink


def run_single_flow(
    flow_bytes,
    sender_cls=TcpSender,
    config=None,
    until=120.0,
    **sender_kwargs,
):
    """Run one flow over a fresh dumbbell; returns (sender, topology, sim)."""
    sim = Simulator()
    cfg = config or DumbbellConfig(n_senders=1)
    top = DumbbellTopology(sim, cfg)
    spec = FlowSpec(1, top.senders[0].name, 10_000, top.receivers[0].name, 443)
    done = []
    sink = TcpSink(sim, top.receivers[0], spec)
    sender = sender_cls(
        sim,
        top.senders[0],
        spec,
        flow_bytes,
        done.append,
        **sender_kwargs,
    )
    sender.start()
    sim.run(until=until)
    return sender, top, sim, done


class TestBasicTransfer:
    def test_small_flow_completes(self):
        sender, _, _, done = run_single_flow(10_000)
        assert done and sender.stats.completed
        assert sender.stats.bytes_goodput == 10_000

    def test_large_flow_completes(self):
        sender, _, _, done = run_single_flow(2_000_000)
        assert done
        assert sender.stats.bytes_goodput == 2_000_000

    def test_throughput_bounded_by_bottleneck(self):
        sender, top, _, _ = run_single_flow(2_000_000)
        assert sender.stats.throughput_bps <= top.config.bottleneck_bandwidth_bps

    def test_rtt_samples_near_base_rtt_when_uncongested(self):
        sender, top, _, _ = run_single_flow(50_000)
        assert sender.stats.min_rtt == pytest.approx(top.config.rtt_s, rel=0.15)

    def test_single_segment_flow(self):
        sender, _, _, done = run_single_flow(100)
        assert done and sender.stats.completed

    def test_duration_positive(self):
        sender, _, _, _ = run_single_flow(10_000)
        assert sender.stats.duration > 0

    def test_cannot_start_twice(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = TcpSender(sim, top.senders[0], spec, 1000)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()

    def test_invalid_flow_size_rejected(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        with pytest.raises(ValueError):
            TcpSender(sim, top.senders[0], spec, 0)

    def test_invalid_window_params_rejected(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        with pytest.raises(ValueError):
            TcpSender(sim, top.senders[0], spec, 1000, window_init=0.5)
        with pytest.raises(ValueError):
            TcpSender(sim, top.senders[0], spec, 1000, initial_ssthresh=1)


class TestSlowStartAndWindow:
    def test_slow_start_doubles_per_rtt(self):
        # Over a clean link, cwnd should grow roughly exponentially at
        # first; we check that the flow finishes much faster than it would
        # at the initial window rate.
        sender, top, sim, done = run_single_flow(500_000)
        assert done
        # At a fixed cwnd of 2 segments per RTT (2 * 1460B / 0.15s), the
        # flow would need ~25 s; slow start should finish well under 5 s.
        assert sender.stats.duration < 5.0

    def test_window_init_respected(self):
        sender, _, _, _ = run_single_flow(10_000, window_init=8.0)
        assert sender.window_init == 8.0

    def test_ssthresh_caps_slow_start(self):
        sender, _, _, _ = run_single_flow(
            3_000_000, initial_ssthresh=4.0, until=400.0
        )
        # With ssthresh=4 the sender leaves slow start at 4 segments and
        # grows linearly; cwnd should stay modest for a clean link run.
        assert sender.stats.completed


class TestLossRecovery:
    def _tiny_buffer_config(self):
        # A very shallow bottleneck buffer forces drops during slow start.
        return DumbbellConfig(
            n_senders=1,
            bottleneck_bandwidth_bps=2_000_000.0,
            rtt_s=0.1,
            buffer_bdp_multiple=0.5,
        )

    def test_losses_are_recovered(self):
        sender, top, _, done = run_single_flow(
            1_000_000, config=self._tiny_buffer_config(), until=300.0
        )
        assert done, "flow must complete despite drops"
        assert top.bottleneck_queue.stats.dropped_packets > 0
        assert sender.stats.retransmits > 0

    def test_fast_retransmit_beats_timeout(self):
        sender, _, _, _ = run_single_flow(
            1_000_000, config=self._tiny_buffer_config(), until=300.0
        )
        assert sender.stats.fast_retransmits > 0

    def test_sink_receives_exactly_flow_bytes(self):
        sim = Simulator()
        top = DumbbellTopology(sim, self._tiny_buffer_config())
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        sink = TcpSink(sim, top.receivers[0], spec)
        sender = TcpSender(sim, top.senders[0], spec, 500_000)
        sender.start()
        sim.run(until=300.0)
        assert sink.bytes_received == 500_000
        assert sink.received.contiguous_from(0) == 500_000

    def test_loss_event_halves_window(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = TcpSender(sim, top.senders[0], spec, 10_000_000)
        sender.cwnd = 64.0
        sender.ssthresh = 1000.0
        sender._on_loss_event()
        assert sender.ssthresh == pytest.approx(32.0)
        assert sender.cwnd == pytest.approx(32.0)

    def test_timeout_resets_to_one_segment(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = TcpSender(sim, top.senders[0], spec, 10_000_000)
        sender.cwnd = 64.0
        sender._on_timeout_event()
        assert sender.cwnd == 1.0


class TestAbort:
    def test_abort_reports_partial_goodput(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = TcpSender(sim, top.senders[0], spec, 100_000_000)
        sender.start()
        sim.run(until=2.0)
        sender.abort()
        assert not sender.stats.completed
        assert 0 < sender.stats.bytes_goodput < 100_000_000
        assert sender.finished

    def test_abort_idempotent(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        spec = FlowSpec(1, top.senders[0].name, 1, top.receivers[0].name, 443)
        TcpSink(sim, top.receivers[0], spec)
        sender = TcpSender(sim, top.senders[0], spec, 1_000_000)
        sender.start()
        sim.run(until=0.5)
        sender.abort()
        sender.abort()
        assert sender.finished


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.observe(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.min_rtt == pytest.approx(0.1)

    def test_rto_above_srtt(self):
        est = RttEstimator()
        for _ in range(10):
            est.observe(0.1)
        assert est.rto >= 0.1
        assert est.rto >= est.min_rto

    def test_backoff_doubles(self):
        est = RttEstimator()
        est.observe(0.5)
        before = est.rto
        est.backoff()
        assert est.rto == pytest.approx(min(est.max_rto, before * 2))

    def test_min_rtt_tracks_minimum(self):
        est = RttEstimator()
        for rtt in (0.3, 0.1, 0.2):
            est.observe(rtt)
        assert est.min_rtt == pytest.approx(0.1)

    def test_nonpositive_samples_ignored(self):
        est = RttEstimator()
        est.observe(0.0)
        est.observe(-1.0)
        assert est.srtt is None

    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_rto_always_within_bounds(self, samples):
        est = RttEstimator()
        for rtt in samples:
            est.observe(rtt)
            assert est.min_rto <= est.rto <= est.max_rto

    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_min_rtt_is_global_minimum(self, samples):
        est = RttEstimator()
        for rtt in samples:
            est.observe(rtt)
        assert est.min_rtt == pytest.approx(min(samples))


class TestConnectionStats:
    def test_throughput_zero_without_duration(self):
        stats = ConnectionStats(flow_id=1)
        assert stats.throughput_bps == 0.0

    def test_mean_rtt_and_queueing_delay(self):
        stats = ConnectionStats(flow_id=1)
        stats.rtt_samples = [0.1, 0.2, 0.3]
        stats.min_rtt = 0.1
        assert stats.mean_rtt == pytest.approx(0.2)
        assert stats.mean_queueing_delay == pytest.approx(0.1)

    def test_loss_indicator(self):
        stats = ConnectionStats(flow_id=1)
        stats.packets_sent = 100
        stats.retransmits = 4
        assert stats.loss_indicator == pytest.approx(0.04)

    def test_loss_indicator_empty(self):
        assert ConnectionStats(flow_id=1).loss_indicator == 0.0

"""Tests for the open-loop Poisson workload."""

import pytest

from repro.simnet import (
    ActiveFlowTracker,
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    RngStreams,
    Simulator,
)
from repro.transport import CubicSender
from repro.workload import PoissonConfig, PoissonFlowGenerator


def cubic_factory(sim, host, spec, size, done):
    return CubicSender(sim, host, spec, size, done)


def build_generator(config, n_pairs=4, seed=9, tracker=None, **kwargs):
    sim = Simulator()
    top = DumbbellTopology(sim, DumbbellConfig(n_senders=n_pairs))
    pairs = [(top.senders[i], top.receivers[i]) for i in range(n_pairs)]
    generator = PoissonFlowGenerator(
        sim,
        pairs,
        cubic_factory,
        FlowIdAllocator(),
        RngStreams(seed).stream("poisson"),
        config,
        flow_tracker=tracker,
        **kwargs,
    )
    return sim, top, generator


class TestPoissonConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonConfig(arrival_rate_per_s=0, mean_flow_bytes=1000)
        with pytest.raises(ValueError):
            PoissonConfig(arrival_rate_per_s=1, mean_flow_bytes=0)

    def test_offered_load(self):
        config = PoissonConfig(arrival_rate_per_s=2.0, mean_flow_bytes=500_000)
        # 2/s x 4 Mbit = 8 Mbps over 16 Mbps = 0.5.
        assert config.offered_load(16e6) == pytest.approx(0.5)

    def test_for_load_inverse(self):
        config = PoissonConfig.for_load(0.4, 15e6, mean_flow_bytes=250_000)
        assert config.offered_load(15e6) == pytest.approx(0.4)

    def test_for_load_validation(self):
        with pytest.raises(ValueError):
            PoissonConfig.for_load(0.0, 15e6)
        with pytest.raises(ValueError):
            PoissonConfig(1.0, 1000).offered_load(0)


class TestGenerator:
    def test_arrival_rate_statistics(self):
        config = PoissonConfig(arrival_rate_per_s=5.0, mean_flow_bytes=30_000)
        sim, top, generator = build_generator(config)
        generator.start()
        sim.run(until=40.0)
        generator.stop()
        # ~200 expected arrivals; allow generous Poisson slack.
        assert 140 <= generator.launched <= 260

    def test_flows_complete_and_close(self):
        config = PoissonConfig(arrival_rate_per_s=1.0, mean_flow_bytes=50_000)
        tracker = ActiveFlowTracker()
        sim, top, generator = build_generator(config, tracker=tracker)
        generator.start()
        sim.run(until=30.0)
        generator.stop()
        assert len(generator.completed) > 5
        assert tracker.active_flows == 0

    def test_open_loop_allows_concurrency(self):
        # Heavy load: arrivals outpace completions, flows pile up.
        config = PoissonConfig(arrival_rate_per_s=20.0, mean_flow_bytes=400_000)
        sim, top, generator = build_generator(config)
        generator.start()
        sim.run(until=10.0)
        assert generator.concurrent_flows > 5
        generator.stop()
        assert generator.concurrent_flows == 0

    def test_max_concurrent_rejects(self):
        config = PoissonConfig(arrival_rate_per_s=50.0, mean_flow_bytes=1_000_000)
        sim, top, generator = build_generator(config, max_concurrent=3)
        generator.start()
        sim.run(until=5.0)
        assert generator.concurrent_flows <= 3
        assert generator.rejected > 0
        generator.stop()

    def test_round_robin_spreads_pairs(self):
        config = PoissonConfig(arrival_rate_per_s=4.0, mean_flow_bytes=20_000)
        sim, top, generator = build_generator(config, n_pairs=4)
        generator.start()
        sim.run(until=20.0)
        generator.stop()
        sources = {s.flow_id % 4 for s in generator.completed}
        assert len(sources) > 1  # not all flows on one pair

    def test_stop_prevents_arrivals(self):
        config = PoissonConfig(arrival_rate_per_s=10.0, mean_flow_bytes=10_000)
        sim, top, generator = build_generator(config)
        generator.start()
        sim.run(until=2.0)
        generator.stop()
        count = generator.launched
        sim.run(until=4.0)
        assert generator.launched == count

    def test_requires_pairs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonFlowGenerator(
                sim,
                [],
                cubic_factory,
                FlowIdAllocator(),
                RngStreams(0).stream("x"),
                PoissonConfig(1.0, 1000),
            )

    def test_offered_load_tracks_utilization(self):
        """At moderate offered load, measured utilization lands nearby."""
        from repro.simnet import LinkMonitor

        config = PoissonConfig.for_load(0.5, 15e6, mean_flow_bytes=200_000)
        sim, top, generator = build_generator(config, n_pairs=4, seed=5)
        monitor = LinkMonitor(sim, top.bottleneck)
        monitor.start()
        generator.start()
        sim.run(until=60.0)
        generator.stop()
        measured = monitor.mean_utilization(since=10.0)
        assert 0.3 <= measured <= 0.75

"""Tests for on/off sources and long-running flows."""

import pytest

from repro.simnet import (
    ActiveFlowTracker,
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    RngStreams,
    Simulator,
)
from repro.transport import CubicSender
from repro.workload import (
    OnOffConfig,
    OnOffSource,
    launch_long_running_flows,
)


def cubic_factory(sim, host, spec, size, done):
    return CubicSender(sim, host, spec, size, done)


def make_source(sim, top, rng_name="w", config=None, tracker=None):
    rngs = RngStreams(11)
    return OnOffSource(
        sim,
        top.senders[0],
        top.receivers[0],
        cubic_factory,
        FlowIdAllocator(),
        rngs.stream(rng_name),
        config or OnOffConfig(mean_on_bytes=50_000, mean_off_s=0.2),
        flow_tracker=tracker,
    )


class TestOnOffConfig:
    def test_paper_defaults(self):
        config = OnOffConfig()
        assert config.mean_on_bytes == 500_000
        assert config.mean_off_s == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffConfig(mean_on_bytes=0)
        with pytest.raises(ValueError):
            OnOffConfig(mean_off_s=-1)


class TestOnOffSource:
    def test_sequential_connections(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        source = make_source(sim, top)
        source.start()
        sim.run(until=30.0)
        source.stop()
        assert len(source.completed) >= 3
        # Connections are sequential: each starts after the previous ended.
        for prev, nxt in zip(source.completed, source.completed[1:]):
            assert nxt.start_time >= prev.end_time

    def test_flow_sizes_at_least_one_mss(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        source = make_source(
            sim, top, config=OnOffConfig(mean_on_bytes=10, mean_off_s=0.01)
        )
        source.start()
        sim.run(until=5.0)
        source.stop()
        assert source.completed
        assert all(s.bytes_goodput >= 1 for s in source.completed)

    def test_stop_prevents_new_connections(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        source = make_source(sim, top)
        source.start()
        sim.run(until=5.0)
        source.stop()
        count = source.connections_launched
        sim.run(until=10.0)
        assert source.connections_launched == count

    def test_flow_tracker_balanced(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        tracker = ActiveFlowTracker()
        source = make_source(sim, top, tracker=tracker)
        source.start()
        sim.run(until=20.0)
        source.stop()
        assert tracker.active_flows == 0
        assert tracker.total_flows == source.connections_launched

    def test_deterministic_with_same_seed(self):
        def run_once():
            sim = Simulator()
            top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
            source = make_source(sim, top)
            source.start()
            sim.run(until=20.0)
            source.stop()
            return [(s.bytes_goodput, round(s.duration, 9)) for s in source.completed]

        assert run_once() == run_once()

    def test_all_stats_include_active(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=1))
        source = make_source(
            sim, top, config=OnOffConfig(mean_on_bytes=50_000_000, mean_off_s=0.1)
        )
        source.start()
        sim.run(until=3.0)
        assert source.active
        assert len(source.all_stats(include_active=True)) == 1
        assert len(source.all_stats()) == 0
        source.stop()


class TestLongRunning:
    def test_flows_persist_and_accumulate(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=4))
        pairs = [(top.senders[i], top.receivers[i]) for i in range(4)]
        flows = launch_long_running_flows(
            sim, pairs, cubic_factory, FlowIdAllocator(), RngStreams(3).stream("lr")
        )
        sim.run(until=20.0)
        stats = [f.finish() for f in flows]
        assert all(not s.completed for s in stats)
        assert all(s.bytes_goodput > 0 for s in stats)

    def test_aggregate_respects_capacity(self):
        sim = Simulator()
        config = DumbbellConfig(n_senders=4, bottleneck_bandwidth_bps=5e6)
        top = DumbbellTopology(sim, config)
        pairs = [(top.senders[i], top.receivers[i]) for i in range(4)]
        flows = launch_long_running_flows(
            sim, pairs, cubic_factory, FlowIdAllocator(), RngStreams(3).stream("lr")
        )
        sim.run(until=30.0)
        stats = [f.finish() for f in flows]
        total_bps = sum(s.bytes_goodput for s in stats) * 8.0 / 30.0
        assert total_bps <= config.bottleneck_bandwidth_bps * 1.05

    def test_tracker_balance_after_finish(self):
        sim = Simulator()
        top = DumbbellTopology(sim, DumbbellConfig(n_senders=2))
        tracker = ActiveFlowTracker()
        pairs = [(top.senders[i], top.receivers[i]) for i in range(2)]
        flows = launch_long_running_flows(
            sim,
            pairs,
            cubic_factory,
            FlowIdAllocator(),
            RngStreams(3).stream("lr"),
            flow_tracker=tracker,
        )
        sim.run(until=10.0)
        for flow in flows:
            flow.finish()
        assert tracker.active_flows == 0

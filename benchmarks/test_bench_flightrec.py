"""Flight-recorder overhead benchmark: the table-3 hot path, armed vs off.

The recorder's contract is ISSUE-grade strict: disabled, every
instrumentation site costs one session lookup plus one ``enabled``
check; armed, the bounded rings may cost at most 10% on the table-3
hot path while leaving the simulation bit-identical (the recorder
observes the event stream, it never perturbs it).

Appends an entry gated on ``overhead_ratio`` (lower is better) to
``BENCH_flightrec.json`` so ``repro bench gate`` can catch an
instrumentation-cost regression commit over commit.
"""

import os
import time

from bench_common import report, run_once, scaled

from repro import flightrec
from repro.experiments.scenarios import TABLE3_REMY, run_cubic_fixed
from repro.runner import append_bench_entry, bench_entry
from repro.transport.cubic import CubicParams

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_flightrec.json"
)

PARAMS = CubicParams(window_init=4.0, initial_ssthresh=64.0, beta=0.7)


def _time_best_of(n, func):
    """Best-of-n wall time: robust to scheduler noise on shared CI."""
    best = float("inf")
    result = None
    for _ in range(n):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_flightrec_overhead(benchmark, capfd):
    duration_s = scaled(20.0, None)
    rounds = scaled(3, 5)

    def run_disabled():
        return run_cubic_fixed(PARAMS, TABLE3_REMY, seed=1, duration_s=duration_s)

    def run_armed():
        with flightrec.use() as rec:
            result = run_cubic_fixed(
                PARAMS, TABLE3_REMY, seed=1, duration_s=duration_s
            )
        return result, rec.simnet_emitted + rec.transport_emitted

    baseline = run_disabled()  # warm interpreter state before timing

    wall_disabled, _ = _time_best_of(rounds, run_disabled)
    wall_armed, (recorded, events_captured) = _time_best_of(rounds, run_armed)
    run_once(benchmark, run_disabled)

    # Bit-identical trajectories: recording must not perturb the run.
    assert recorded.events_processed == baseline.events_processed
    assert recorded.metrics == baseline.metrics
    # The armed run actually captured the lifecycle stream.
    assert events_captured > 0
    # And nothing leaked out of the scope.
    assert not flightrec.session().enabled

    ratio = wall_armed / max(wall_disabled, 1e-9)
    events_per_second = baseline.events_processed / max(wall_disabled, 1e-9)

    entry = bench_entry(
        "bench-flightrec-overhead",
        gate=("overhead_ratio", ratio, False),
        extra={
            "duration_s": duration_s,
            "rounds": rounds,
            "wall_disabled_s": wall_disabled,
            "wall_armed_s": wall_armed,
            "overhead_ratio": ratio,
            "events_processed": baseline.events_processed,
            "events_per_second_disabled": events_per_second,
            "lifecycle_events_captured": events_captured,
        },
    )
    append_bench_entry(BENCH_JSON, entry)

    with report(capfd, "Flight-recorder overhead: table-3 hot path, armed vs off"):
        print(f"sim duration: {duration_s or TABLE3_REMY.duration_s:.0f} s  "
              f"events: {baseline.events_processed:,}  best of {rounds}")
        print(f"{'recorder':<10s} {'wall (s)':>10s} {'events/s':>14s}")
        print(f"{'off':<10s} {wall_disabled:>10.3f} {events_per_second:>14,.0f}")
        print(f"{'armed':<10s} {wall_armed:>10.3f} "
              f"{baseline.events_processed / max(wall_armed, 1e-9):>14,.0f}")
        print(f"overhead: {(ratio - 1.0) * 100:+.2f}%   "
              f"lifecycle events captured: {events_captured:,}")
        print(f"trajectory: {BENCH_JSON}")

    # ISSUE budget is 1.10x; pad for shared-CI scheduler noise.
    assert ratio <= 1.25, (
        f"flight-recorder overhead {ratio:.3f}x exceeds the noise-tolerant cap"
    )

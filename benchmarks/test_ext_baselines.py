"""Extension: the Table-3 workload across all implemented baselines.

Adds the flavours the paper cites but does not tabulate — NewReno
(classical AIMD) and Vegas (delay-based) — alongside default Cubic and
Phi-coordinated Cubic, all on the Table-3 workload.  The expected
landscape: the loss-based baselines build queue, Vegas holds delay low
at some throughput cost, and Phi pushes the power frontier without
router or protocol changes.
"""

from bench_common import report, run_once, scaled

from repro.experiments import TABLE3_REMY, run_onoff_scenario, uniform_slots
from repro.experiments.scenarios import run_phi_cubic
from repro.phi import REFERENCE_POLICY, SharingMode, plain_cubic_factory
from repro.transport import NewRenoSender, VegasSender


def _factory(sender_cls):
    def build(env):
        def factory(sim, host, spec, size, done):
            return sender_cls(sim, host, spec, size, done)

        return factory

    return build


def _run_all():
    duration = scaled(30.0, 60.0)
    seeds = range(scaled(2, 6))
    arms = {}

    def collect(label, runner):
        runs = [runner(seed) for seed in seeds]
        arms[label] = (
            sum(r.metrics.throughput_mbps for r in runs) / len(runs),
            sum(r.metrics.queueing_delay_ms for r in runs) / len(runs),
            sum(r.metrics.power_l for r in runs) / len(runs),
        )

    collect(
        "Cubic (default)",
        lambda seed: run_onoff_scenario(
            uniform_slots(lambda env: plain_cubic_factory()),
            config=TABLE3_REMY.config,
            workload=TABLE3_REMY.workload,
            duration_s=duration,
            seed=seed,
        ),
    )
    for label, sender_cls in [("NewReno", NewRenoSender), ("Vegas", VegasSender)]:
        collect(
            label,
            lambda seed, cls=sender_cls: run_onoff_scenario(
                uniform_slots(_factory(cls)),
                config=TABLE3_REMY.config,
                workload=TABLE3_REMY.workload,
                duration_s=duration,
                seed=seed,
            ),
        )
    collect(
        "Cubic-Phi (practical)",
        lambda seed: run_phi_cubic(
            REFERENCE_POLICY, TABLE3_REMY, SharingMode.PRACTICAL,
            seed=seed, duration_s=duration,
        ),
    )
    return arms


def test_extension_baseline_landscape(benchmark, capfd):
    arms = run_once(benchmark, _run_all)

    with report(capfd, "Extension: baseline landscape on the Table-3 workload"):
        print(f"{'flavour':<24s} {'thr(Mbps)':>10s} {'delay(ms)':>10s} {'P_l':>9s}")
        for label, (thr, delay, power) in arms.items():
            print(f"{label:<24s} {thr:>10.2f} {delay:>10.1f} {power:>9.4f}")

    # Vegas holds a (near-)minimal queue among the uncoordinated flavours.
    uncoordinated = ["Cubic (default)", "NewReno", "Vegas"]
    vegas_delay = arms["Vegas"][1]
    assert vegas_delay == min(arms[l][1] for l in uncoordinated)
    # Phi beats default Cubic on the power objective.
    assert arms["Cubic-Phi (practical)"][2] > arms["Cubic (default)"][2]
    # Everyone moves data.
    assert all(thr > 0.3 for thr, _d, _p in arms.values())

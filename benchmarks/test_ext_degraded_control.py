"""Extension: graceful degradation under a failing control plane.

The paper's practical deployment (Section 3) makes the context server a
single point of coordination — this bench asks what Phi costs when that
server is partitioned away for part of the run.  Senders reach it
through the failure-aware :class:`ControlChannel` (timeouts, retries,
circuit breaker) and degrade via :class:`ResilientContextClient`
(staleness TTL, then stock-Cubic fallback).  Sweeping the fraction of
the run the server is unreachable traces the curve between the two
anchors:

* 0% down      -> exactly Phi-practical (coordination fully available)
* 100% down    -> exactly the uncoordinated default-Cubic baseline

The robustness claim: availability loss degrades Phi *gracefully* —
power never falls below the uncoordinated baseline, so the control
plane is a pure upside even when unreliable.
"""

from bench_common import report, run_once, scaled

from repro.experiments import run_cubic_fixed, run_phi_cubic, sweep_unavailability
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import REFERENCE_POLICY, SharingMode
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import OnOffConfig

PRESET = ScenarioPreset(
    name="degraded-control",
    config=DumbbellConfig(n_senders=16),
    workload=OnOffConfig(mean_on_bytes=400_000, mean_off_s=0.5),
    duration_s=30.0,
    description="context-server chaos sweep",
)

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _run_all():
    duration = scaled(25.0, 60.0)
    seeds = tuple(range(scaled(2, 6)))

    baseline_runs = [
        run_cubic_fixed(CubicParams.default(), PRESET, seed, duration)
        for seed in seeds
    ]
    practical_runs = [
        run_phi_cubic(
            REFERENCE_POLICY, PRESET, mode=SharingMode.PRACTICAL,
            seed=seed, duration_s=duration,
        )
        for seed in seeds
    ]
    baseline = sum(r.metrics.power_l for r in baseline_runs) / len(baseline_runs)
    practical = sum(r.metrics.power_l for r in practical_runs) / len(practical_runs)

    rows = sweep_unavailability(
        REFERENCE_POLICY,
        PRESET,
        fractions=FRACTIONS,
        seeds=seeds,
        duration_s=duration,
        outage_period_s=2.0,
        staleness_ttl_s=2.0,
    )
    return baseline, practical, rows


def test_extension_degraded_control_plane(benchmark, capfd):
    baseline, practical, rows = run_once(benchmark, _run_all)

    with report(capfd, "Extension: Phi power vs. context-server unavailability"):
        print(f"uncoordinated baseline P_l = {baseline:.4f}   "
              f"phi practical P_l = {practical:.4f}")
        print()
        print(f"{'down':>5s} {'P_l':>9s} {'vs base':>8s} {'delay(ms)':>10s} "
              f"{'thr(Mbps)':>10s} | {'fresh':>6s} {'stale':>6s} {'fallbk':>6s}")
        for row in rows:
            counts = row.decision_counts
            print(f"{row.unavailability:>5.2f} {row.mean_power_l:>9.4f} "
                  f"{row.mean_power_l / max(baseline, 1e-9):>7.2f}x "
                  f"{row.mean_delay_ms:>10.1f} {row.mean_throughput_mbps:>10.2f} | "
                  f"{counts.get('fresh', 0):>6d} {counts.get('stale', 0):>6d} "
                  f"{counts.get('fallback', 0):>6d}")

    by_fraction = {row.unavailability: row for row in rows}
    # Anchor 1: with the server gone for the whole run every connection
    # falls back to stock Cubic, so power matches the uncoordinated
    # baseline (the ISSUE's +/-5% bound; the runs are in fact identical).
    assert abs(by_fraction[1.0].mean_power_l - baseline) <= 0.05 * baseline
    assert by_fraction[1.0].decision_counts.get("fresh", 0) == 0
    # Anchor 2: a healthy channel reproduces practical Phi sharing.
    assert abs(by_fraction[0.0].mean_power_l - practical) <= 0.05 * practical
    assert by_fraction[0.0].decision_counts.get("fallback", 0) == 0
    # Graceful degradation: no unavailability level drops power
    # meaningfully below the uncoordinated floor.
    for row in rows:
        assert row.mean_power_l >= 0.95 * baseline
    # Partial outages really exercise the degraded paths.
    assert by_fraction[0.5].decision_counts.get("fresh", 0) > 0
    assert (by_fraction[0.5].decision_counts.get("stale", 0)
            + by_fraction[0.5].decision_counts.get("fallback", 0)) > 0

"""Ablation A1 (Sections 2.2.3 / 3.1): coordination fraction sweep.

Extends Figure 4 from the single 50% point to a 0% -> 100% adoption
sweep, quantifying the incentive story: modified senders benefit at any
adoption level, and the network as a whole improves as adoption grows.
"""

from bench_common import report, run_once, scaled

from repro.experiments import FIG4_INCREMENTAL, run_incremental_deployment
from repro.transport import CubicParams

OPTIMAL = CubicParams(window_init=16, initial_ssthresh=64, beta=0.3)


def _run_sweep():
    fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
    duration = scaled(25.0, 60.0)
    seeds = range(scaled(2, 6))
    rows = []
    for fraction in fractions:
        runs = [
            run_incremental_deployment(
                OPTIMAL, FIG4_INCREMENTAL, fraction, seed=s, duration_s=duration
            )
            for s in seeds
        ]
        overall_power = sum(r.overall.metrics.power_l for r in runs) / len(runs)
        overall_delay = sum(
            r.overall.metrics.queueing_delay_ms for r in runs
        ) / len(runs)
        rows.append((fraction, overall_power, overall_delay))
    return rows


def test_ablation_coordination_fraction(benchmark, capfd):
    rows = run_once(benchmark, _run_sweep)

    with report(capfd, "Ablation A1: network-wide effect of adoption fraction"):
        print(f"{'adopted':>8s} {'overall P_l':>12s} {'delay(ms)':>10s}")
        for fraction, power, delay in rows:
            print(f"{fraction:>8.0%} {power:>12.4f} {delay:>10.1f}")

    by_fraction = {f: (p, d) for f, p, d in rows}
    # Full adoption beats no adoption on the network-wide power metric.
    assert by_fraction[1.0][0] > by_fraction[0.0][0]
    # Full adoption also drains the queue relative to no adoption.
    assert by_fraction[1.0][1] < by_fraction[0.0][1]
    # Majority adoption already captures most of the delay win.
    assert by_fraction[0.75][1] < by_fraction[0.0][1]

"""Extension: parameter tuning generalizes beyond the single bottleneck.

The paper's evaluation is confined to the Figure-1 dumbbell.  This
extension runs the same default-vs-tuned Cubic comparison on a
multi-hop parking-lot topology (every flow crosses three potential
bottlenecks), checking that the headline effect — a bounded slow-start
threshold cutting queueing delay without losing throughput — is not an
artifact of the single-bottleneck setup.
"""

from bench_common import report, run_once, scaled

from repro.metrics import summarize_connections
from repro.simnet import FlowIdAllocator, ParkingLotTopology, RngStreams, Simulator
from repro.transport import CubicParams, CubicSender
from repro.workload import OnOffConfig, OnOffSource

TUNED = CubicParams(window_init=8, initial_ssthresh=32, beta=0.4)


def _run_arm(params, seed):
    sim = Simulator()
    topology = ParkingLotTopology(sim, n_hops=3, hop_bandwidth_bps=10e6)
    flow_ids = FlowIdAllocator()
    rngs = RngStreams(seed)

    def factory(sim_, host, spec, size, done, p=params):
        return CubicSender(sim_, host, spec, size, done, params=p)

    sources = []
    for i in range(3):
        # All three senders enter at hop i and exit past the last hop, so
        # hop 2 carries all of them.
        source = OnOffSource(
            sim,
            topology.senders[i],
            topology.receivers[i],
            factory,
            flow_ids,
            rngs.stream(f"pl-{i}"),
            OnOffConfig(mean_on_bytes=600_000, mean_off_s=0.5),
        )
        source.start()
        sources.append(source)

    duration = scaled(30.0, 90.0)
    sim.run(until=duration)
    for source in sources:
        source.stop()
    stats = [s for source in sources for s in source.completed]
    drop_rates = [link.queue.stats.drop_rate() for link in topology.hop_links]
    return summarize_connections(stats, bottleneck_loss_rate=max(drop_rates)), drop_rates


def _run_both():
    arms = {}
    for label, params in [("default", CubicParams.default()), ("tuned", TUNED)]:
        runs = [_run_arm(params, seed) for seed in range(scaled(2, 6))]
        metrics = [m for m, _d in runs]
        arms[label] = (
            sum(m.throughput_mbps for m in metrics) / len(metrics),
            sum(m.queueing_delay_ms for m in metrics) / len(metrics),
            sum(m.power_l for m in metrics) / len(metrics),
        )
    return arms


def test_extension_parking_lot(benchmark, capfd):
    arms = run_once(benchmark, _run_both)

    with report(capfd, "Extension: default vs tuned Cubic on a 3-hop parking lot"):
        print(f"{'arm':<10s} {'thr(Mbps)':>10s} {'delay(ms)':>10s} {'P_l':>9s}")
        for label, (thr, delay, power) in arms.items():
            print(f"{label:<10s} {thr:>10.2f} {delay:>10.1f} {power:>9.4f}")

    default = arms["default"]
    tuned = arms["tuned"]
    # The dumbbell conclusion carries over: bounded ssthresh cuts delay
    # and wins on power without collapsing throughput.
    assert tuned[1] < default[1]
    assert tuned[2] > default[2]
    assert tuned[0] > 0.5 * default[0]

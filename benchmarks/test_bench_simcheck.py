"""Simcheck overhead benchmark: the table-3 hot path, checked vs not.

The invariant layer promises two things on the hot path:

- **zero overhead disabled** — an unchecked run builds a plain
  :class:`~repro.simnet.engine.Simulator` and unwrapped senders; the only
  cost is one ``simcheck.enabled()`` lookup per run;
- **bounded overhead enabled** — the checked engine re-runs the same
  event loop with per-event clock checks, periodic heap scans, and
  per-ACK TCP invariant checks, with a <= 2x budget on the table-3 hot
  path; the differential oracle demands the trajectory stays
  bit-identical either way.

Appends wall times and the checked/unchecked ratio to
``BENCH_simcheck.json`` so the overhead trajectory accumulates commit
over commit.  The hard assertion is deliberately loose (CI boxes are
noisy); the recorded numbers are the real deliverable.
"""

import os
import time

from bench_common import report, run_once, scaled

from repro.experiments.scenarios import TABLE3_REMY, run_cubic_fixed
from repro.runner import append_bench_entry, bench_entry
from repro.simcheck import ViolationReport
from repro.transport.cubic import CubicParams

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_simcheck.json"
)

PARAMS = CubicParams(window_init=4.0, initial_ssthresh=64.0, beta=0.7)


def _time_best_of(n, func):
    """Best-of-n wall time: robust to scheduler noise on shared CI."""
    best = float("inf")
    result = None
    for _ in range(n):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_simcheck_overhead(benchmark, capfd):
    duration_s = scaled(20.0, None)
    rounds = scaled(3, 5)

    def run_unchecked():
        return run_cubic_fixed(
            PARAMS, TABLE3_REMY, seed=1, duration_s=duration_s, checked=False
        )

    def run_checked():
        check_report = ViolationReport()
        result = run_cubic_fixed(
            PARAMS,
            TABLE3_REMY,
            seed=1,
            duration_s=duration_s,
            checked=True,
            check_report=check_report,
        )
        return result, check_report

    # Warm caches/JIT-free interpreter state once before timing anything.
    baseline = run_unchecked()

    wall_unchecked, _ = _time_best_of(rounds, run_unchecked)
    wall_checked, (checked_result, check_report) = _time_best_of(rounds, run_checked)
    run_once(benchmark, run_unchecked)

    # Checking observes without perturbing: bit-identical simulation.
    assert checked_result.events_processed == baseline.events_processed
    assert checked_result.metrics == baseline.metrics
    # The checked run actually checked, and found nothing.
    assert check_report.ok
    assert check_report.checks_performed > 0

    ratio = wall_checked / max(wall_unchecked, 1e-9)
    events_per_second = baseline.events_processed / max(wall_unchecked, 1e-9)

    entry = bench_entry(
        "bench-simcheck-overhead",
        gate=("overhead_ratio", ratio, False),
        extra={
            "duration_s": duration_s,
            "rounds": rounds,
            "wall_unchecked_s": wall_unchecked,
            "wall_checked_s": wall_checked,
            "overhead_ratio": ratio,
            "events_processed": baseline.events_processed,
            "events_per_second_unchecked": events_per_second,
            "checks_performed": check_report.checks_performed,
        },
    )
    append_bench_entry(BENCH_JSON, entry)

    with report(capfd, "Simcheck overhead: table-3 hot path, checked vs not"):
        print(f"sim duration: {duration_s or TABLE3_REMY.duration_s:.0f} s  "
              f"events: {baseline.events_processed:,}  best of {rounds}")
        print(f"{'simcheck':<10s} {'wall (s)':>10s} {'events/s':>14s}")
        print(f"{'off':<10s} {wall_unchecked:>10.3f} {events_per_second:>14,.0f}")
        print(f"{'on':<10s} {wall_checked:>10.3f} "
              f"{baseline.events_processed / max(wall_checked, 1e-9):>14,.0f}")
        print(f"overhead: {(ratio - 1.0) * 100:+.2f}%   "
              f"invariant checks: {check_report.checks_performed:,}")
        print(f"trajectory: {BENCH_JSON}")

    # Budget: <=2x enabled; allow headroom for CI noise on top.
    assert ratio <= 2.5, (
        f"simcheck overhead {ratio:.3f}x exceeds the noise-tolerant cap"
    )

"""Ablation: choice of optimization objective (P vs P_l vs log P).

DESIGN.md calls this design choice out: the paper optimizes P_l for the
Cubic sweeps and log(P) for Remy.  This bench reruns one sweep and ranks
the same settings under all three objectives, showing how much the
winner (and the win margin over the default) depends on the metric.
"""

import math

from bench_common import report, run_once, scaled

from repro.experiments import FIG2B_HIGH_UTILIZATION, cubic_evaluator
from repro.phi.optimizer import sweep
from repro.transport import CubicParams

GRID = [
    CubicParams.default(),
    CubicParams(window_init=4, initial_ssthresh=16, beta=0.3),
    CubicParams(window_init=8, initial_ssthresh=32, beta=0.5),
    CubicParams(window_init=16, initial_ssthresh=64, beta=0.2),
    CubicParams(window_init=32, initial_ssthresh=128, beta=0.2),
]


def _objectives(result):
    runs = result.runs
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    return {
        "P": mean([r.power for r in runs]),
        "P_l": mean([r.power_l for r in runs]),
        "log P": mean(
            [r.log_power if math.isfinite(r.log_power) else -99.0 for r in runs]
        ),
    }


def _run():
    evaluator = cubic_evaluator(
        FIG2B_HIGH_UTILIZATION, base_seed=400, duration_s=scaled(20.0, 60.0)
    )
    return sweep(evaluator, GRID, n_runs=scaled(2, 6))


def test_ablation_objective_choice(benchmark, capfd):
    results = run_once(benchmark, _run)

    scored = [(result, _objectives(result)) for result in results]
    default_scores = next(
        scores for result, scores in scored if result.params == CubicParams.default()
    )
    winners = {}
    for objective in ("P", "P_l", "log P"):
        winners[objective] = max(scored, key=lambda pair: pair[1][objective])

    with report(capfd, "Ablation: objective choice (P vs P_l vs log P)"):
        print(f"{'wInit':>6s} {'ssthr':>6s} {'beta':>5s} "
              f"{'P':>9s} {'P_l':>9s} {'log P':>8s}")
        for result, scores in scored:
            p = result.params
            print(f"{p.window_init:>6.0f} {p.initial_ssthresh:>6.0f} "
                  f"{p.beta:>5.1f} {scores['P']:>9.4f} {scores['P_l']:>9.4f} "
                  f"{scores['log P']:>8.2f}")
        for objective, (result, scores) in winners.items():
            p = result.params
            print(f"winner under {objective:<6s}: "
                  f"wInit={p.window_init:.0f} ssthr={p.initial_ssthresh:.0f} "
                  f"beta={p.beta:.1f}")

    # Every objective prefers *some* tuned setting over the default.
    for objective in ("P", "P_l", "log P"):
        winner_result, winner_scores = winners[objective]
        assert winner_scores[objective] >= default_scores[objective]
        assert winner_result.params.initial_ssthresh < 65536.0
    # P and P_l agree closely when loss is modest; both dominated by delay.
    assert winners["P_l"][1]["P"] >= 0.5 * winners["P"][1]["P"]

"""Figure 2c: long-running connections (~99% bottleneck utilization).

Paper: with persistent flows, "varying the initial window size or the
slow start threshold does not have much impact.  However, beta does have
a significant impact, with a larger value (corresponding to a sharper
back-off upon packet loss) yielding a significantly lower queueing delay
compared to the default."
"""

from bench_common import report, run_once, scaled

from repro.experiments import run_cubic_fixed
from repro.experiments.scenarios import ScenarioPreset
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams


def _preset():
    return ScenarioPreset(
        name="fig2c",
        config=DumbbellConfig(n_senders=scaled(24, 100)),
        workload=None,
        duration_s=scaled(30.0, 60.0),
        description="Figure 2c long-running flows",
    )


def _run_all():
    preset = _preset()
    betas = [0.1, 0.2, 0.4, 0.6, 0.8]
    beta_rows = [
        (beta, run_cubic_fixed(CubicParams(beta=beta), preset, seed=42))
        for beta in betas
    ]
    wi_rows = [
        (wi, run_cubic_fixed(CubicParams(window_init=wi), preset, seed=42))
        for wi in (2, 64)
    ]
    return beta_rows, wi_rows


def test_fig2c_long_running_beta_sweep(benchmark, capfd):
    beta_rows, wi_rows = run_once(benchmark, _run_all)

    with report(capfd, "Figure 2c: long-running connections, beta sweep"):
        print(f"{'beta':>5s} {'thr(Mbps)':>10s} {'delay(ms)':>10s} "
              f"{'loss%':>7s} {'util':>6s} {'P_l':>8s}")
        for beta, result in beta_rows:
            m = result.metrics
            marker = " <= default" if beta == 0.2 else ""
            print(f"{beta:>5.1f} {m.throughput_mbps:>10.2f} "
                  f"{m.queueing_delay_ms:>10.0f} {m.loss_rate * 100:>7.2f} "
                  f"{result.mean_utilization:>6.2f} {m.power_l:>8.4f}{marker}")
        print("\nwindowInit_ sensitivity (should be small):")
        for wi, result in wi_rows:
            print(f"  windowInit_={wi:<3d} thr={result.metrics.throughput_mbps:.2f} "
                  f"Mbps delay={result.metrics.queueing_delay_ms:.0f} ms")

    by_beta = dict(beta_rows)
    # The link runs hot, as in the paper's ~99% setting.
    assert all(r.mean_utilization > 0.85 for _b, r in beta_rows)
    # Larger beta -> significantly lower queueing delay than the default.
    default_delay = by_beta[0.2].metrics.queueing_delay_ms
    sharp_delay = by_beta[0.8].metrics.queueing_delay_ms
    assert sharp_delay < default_delay
    # Initial window barely matters for persistent flows.
    wi_throughputs = [r.metrics.throughput_mbps for _wi, r in wi_rows]
    assert max(wi_throughputs) < 2.0 * min(wi_throughputs)

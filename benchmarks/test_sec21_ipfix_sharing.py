"""Section 2.1: the opportunity for sharing, from IPFIX data.

Paper: with 1-in-4096 packet sampling and (/24 subnet, 1-minute)
aggregation, "50% of the flows share the WAN path with at least 5 other
flows while 12% share it with at least 100 other flows", and the true
sharing without sub-sampling is much higher.
"""

import numpy as np
from bench_common import report, run_once, scaled

from repro.ipfix import (
    EgressTrafficModel,
    IpfixCollector,
    IpfixSampler,
    SampledHeader,
    TrafficModelConfig,
    sharing_ccdf,
    sharing_stats,
)


def _run_pipeline():
    rng = np.random.default_rng(21)
    config = TrafficModelConfig()
    model = EgressTrafficModel(config, rng)

    sampled_collector = IpfixCollector()
    full_collector = IpfixCollector()
    sampler = IpfixSampler(rng)

    minutes = scaled(3, 15)
    for batch in model.generate(minutes):
        sampled_collector.ingest_many(sampler.sample_flows(batch))
        # Ground truth (no sub-sampling): every flow lands in its slot.
        for flow in batch:
            full_collector.ingest(SampledHeader(flow.four_tuple, flow.start_s))
    return sampler, sampled_collector, full_collector


def test_sec21_ipfix_sharing(benchmark, capfd):
    sampler, sampled, full = run_once(benchmark, _run_pipeline)

    stats = sharing_stats(sampled)
    truth = sharing_stats(full)
    ccdf = sharing_ccdf(sampled)

    with report(capfd, "Section 2.1: flow sharing per /24 + minute (IPFIX)"):
        print(f"sampled packets       : {sampler.packets_sampled} "
              f"(effective rate 1/{sampler.effective_rate:.0f})")
        print(f"flow observations     : {stats.observations}")
        print(f"{'threshold':>10s} {'sampled':>9s} {'paper':>7s} {'no-sampling':>12s}")
        paper = {5: 0.50, 100: 0.12}
        for threshold in (1, 5, 10, 50, 100, 500):
            line = (f"{'>= ' + str(threshold):>10s} "
                    f"{stats.fraction_at_least(threshold):>9.2f} "
                    f"{paper.get(threshold, float('nan')):>7.2f} "
                    f"{truth.fraction_at_least(threshold):>12.2f}")
            print(line)
        print(f"median companions (sampled): {stats.median_companions:.0f}")

    # Paper's headline fractions, within a band around 0.50 / 0.12.
    assert 0.35 <= stats.fraction_at_least(5) <= 0.65
    assert 0.05 <= stats.fraction_at_least(100) <= 0.25
    # "The actual sharing (without the sub-sampling) is likely to be much
    # higher."
    assert truth.fraction_at_least(5) > stats.fraction_at_least(5)
    assert truth.fraction_at_least(100) > stats.fraction_at_least(100)
    # The sampler really is ~1-in-4096.
    assert 3000 < sampler.effective_rate < 5500

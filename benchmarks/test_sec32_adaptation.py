"""Section 3.2: benefits of sharing without cooperation.

Two informed adaptations driven by shared observations:

- jitter buffers: a new stream initialized from the location's pooled
  jitter history suffers far fewer late-loss events than one starting
  from the fixed uninformed default;
- dupACK thresholds: on a reordering path, the shared-data threshold
  nearly eliminates spurious fast retransmits that the standard
  threshold of 3 would fire.
"""

import numpy as np
from bench_common import report, run_once, scaled

from repro.adaptation import (
    JitterObservatory,
    ReorderingObservatory,
    late_loss_rate,
)
from repro.adaptation.jitterbuffer import UNINFORMED_DEFAULT_BUFFER_S

LOCATION = ("isp-a", "nyc")
PATH = ("dc-east", "isp-a")


def _run():
    rng = np.random.default_rng(32)
    # A location with heavy delay variation (wireless-ish tail).
    n_history = scaled(5_000, 50_000)
    historical_jitter = rng.gamma(shape=2.0, scale=0.020, size=n_history)

    observatory = JitterObservatory()
    for jitter in historical_jitter:
        observatory.record_jitter(LOCATION, float(jitter))
    recommendation = observatory.recommend(LOCATION)

    # A fresh stream at the same location experiences the same weather.
    stream_delays = 0.080 + rng.gamma(2.0, 0.020, size=scaled(2_000, 20_000))
    uninformed_loss = late_loss_rate(stream_delays, UNINFORMED_DEFAULT_BUFFER_S)
    informed_loss = late_loss_rate(stream_delays, recommendation.buffer_s)

    # Reordering path: 3% of packets arrive 4 deep.
    reorder = ReorderingObservatory()
    depths = [0] * 9_700 + [4] * 300
    rng.shuffle(depths)
    reorder.record_depths(PATH, depths)
    dup_rec = reorder.recommend(PATH, target_spurious=0.001)
    standard_spurious = reorder.spurious_probability(PATH, 3)

    return (
        recommendation,
        uninformed_loss,
        informed_loss,
        dup_rec,
        standard_spurious,
    )


def test_sec32_informed_adaptation(benchmark, capfd):
    (
        recommendation,
        uninformed_loss,
        informed_loss,
        dup_rec,
        standard_spurious,
    ) = run_once(benchmark, _run)

    with report(capfd, "Section 3.2: informed adaptation without cooperation"):
        print("jitter buffer initialization:")
        print(f"  uninformed default : {UNINFORMED_DEFAULT_BUFFER_S * 1e3:.0f} ms "
              f"-> late loss {uninformed_loss:.1%}")
        print(f"  informed (shared)  : {recommendation.buffer_s * 1e3:.0f} ms "
              f"({recommendation.samples} pooled samples) "
              f"-> late loss {informed_loss:.1%}")
        print("\ndupACK threshold on a reordering path:")
        print(f"  standard threshold 3: spurious fast-rtx rate "
              f"{standard_spurious:.2%}")
        print(f"  informed threshold {dup_rec.threshold}: spurious rate "
              f"{dup_rec.spurious_probability:.2%}")

    # The informed buffer slashes late losses versus the fixed default.
    assert informed_loss < uninformed_loss / 2
    assert informed_loss < 0.05
    # The informed threshold suppresses spurious retransmits the standard
    # threshold would fire.
    assert standard_spurious > 0.01
    assert dup_rec.threshold > 3
    assert dup_rec.spurious_probability <= 0.001

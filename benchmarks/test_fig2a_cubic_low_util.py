"""Figure 2a: Cubic parameter sweep at low link utilization.

Workload per the paper: on/off senders with mean connection length
500 KB and mean off time 2 s.  The bench sweeps a focused subset of the
Table-2 grid (the full 576-point sweep is enabled with PHI_BENCH_FULL=1),
prints the throughput/queueing-delay scatter, and checks the paper's
shape: the optimal setting uses a larger initial window but a smaller
slow-start threshold than the default, and wins on P_l.
"""

from bench_common import report, run_once, scaled

from repro.experiments import FIG2A_LOW_UTILIZATION, cubic_evaluator
from repro.phi.optimizer import select_optimal, sweep
from repro.transport import CubicParams, cubic_sweep_grid

REDUCED_GRID = [
    CubicParams.default(),
    CubicParams(window_init=2, initial_ssthresh=16, beta=0.2),
    CubicParams(window_init=8, initial_ssthresh=32, beta=0.2),
    CubicParams(window_init=16, initial_ssthresh=64, beta=0.2),
    CubicParams(window_init=32, initial_ssthresh=128, beta=0.2),
    CubicParams(window_init=64, initial_ssthresh=64, beta=0.2),
    CubicParams(window_init=16, initial_ssthresh=64, beta=0.5),
    CubicParams(window_init=2, initial_ssthresh=256, beta=0.2),
]


def _run_sweep():
    grid = REDUCED_GRID if not scaled(False, True) else list(cubic_sweep_grid())
    evaluator = cubic_evaluator(
        FIG2A_LOW_UTILIZATION,
        base_seed=100,
        duration_s=scaled(25.0, 60.0),
    )
    return sweep(evaluator, grid, n_runs=scaled(2, 8))


def test_fig2a_low_utilization_sweep(benchmark, capfd):
    results = run_once(benchmark, _run_sweep)

    default = next(r for r in results if r.params == CubicParams.default())
    optimal = select_optimal(results)

    with report(capfd, "Figure 2a: Cubic parameters, low link utilization"):
        print(f"{'wInit':>6s} {'ssthr':>6s} {'beta':>5s} "
              f"{'thr(Mbps)':>10s} {'delay(ms)':>10s} {'loss%':>7s} {'P_l':>8s}")
        for result in sorted(results, key=lambda r: -r.mean_power_l):
            p = result.params
            marker = " <= optimal" if result is optimal else (
                " <= default" if result is default else "")
            print(f"{p.window_init:>6.0f} {p.initial_ssthresh:>6.0f} {p.beta:>5.1f} "
                  f"{result.mean_throughput_mbps:>10.2f} "
                  f"{result.mean_queueing_delay_ms:>10.1f} "
                  f"{result.mean_loss_rate * 100:>7.2f} "
                  f"{result.mean_power_l:>8.3f}{marker}")
        print(f"mean utilization (default run): "
              f"{default.runs[0].mean_utilization:.2f}")

    # Paper shape: optimal setting beats the default on the P_l objective.
    assert optimal.mean_power_l > default.mean_power_l
    # "The optimal case uses ... a smaller slow start threshold than the
    # default case" — the robust part of the paper's shape.  (The paper
    # also saw a larger initial window; with P_l's delay weighting our
    # optimum tolerates the default window, so only non-regression is
    # asserted for window_init.)
    assert optimal.params.initial_ssthresh < CubicParams.default().initial_ssthresh
    assert optimal.params.window_init >= CubicParams.default().window_init

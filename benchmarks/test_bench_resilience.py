"""Resilience-layer overhead bench: supervision + checkpointing tax.

PR 4 wrapped the sweep pool in a crash supervisor and an fsync'ing
checkpoint journal.  Both must be near-free on the happy path — a sweep
with zero faults should run at PR-3 speed.  This bench runs the same
reduced grid three ways:

- ``bare``        — no checkpointing (the PR-3 configuration),
- ``journal``     — checkpointing on, per-record fsync on,
- ``journal (no fsync)`` — checkpointing on, fsync off,

verifies all three are bit-identical, and appends the overhead ratios to
``BENCH_resilience.json`` so the tax is tracked commit over commit.
"""

import os

from bench_common import report, run_once, scaled

from repro.experiments.scenarios import TABLE3_REMY
from repro.runner import NullCache, SweepRunner, append_bench_entry, bench_entry
from repro.transport.cubic import cubic_sweep_grid

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_resilience.json"
)


def test_bench_resilience_overhead(benchmark, capfd, tmp_path):
    grid = list(
        cubic_sweep_grid(
            ssthresh_range=scaled([2.0, 128.0], None),
            window_init_range=scaled([2.0, 64.0], None),
            beta_range=scaled([0.2, 0.8], None),
        )
    )
    n_runs = scaled(1, 4)
    duration_s = scaled(5.0, None)

    def run(checkpoint_dir=None, fsync=True):
        runner = SweepRunner(
            TABLE3_REMY,
            duration_s=duration_s,
            cache=NullCache(),
            checkpoint_dir=checkpoint_dir,
            journal_fsync=fsync,
        )
        return runner.run(grid, n_runs=n_runs)

    bare = run_once(benchmark, run)
    journal = run(checkpoint_dir=str(tmp_path / "ckpt-fsync"))
    journal_nofsync = run(checkpoint_dir=str(tmp_path / "ckpt-nofsync"), fsync=False)

    for other in (journal, journal_nofsync):
        assert len(other.points) == len(bare.points)
        mismatched = [
            index
            for index, (a, b) in enumerate(zip(bare.points, other.points))
            if not a.identical_to(b)
        ]
        assert mismatched == [], f"checkpointing perturbed points: {mismatched}"
        assert other.complete

    tax_fsync = journal.wall_seconds / max(bare.wall_seconds, 1e-9)
    tax_nofsync = journal_nofsync.wall_seconds / max(bare.wall_seconds, 1e-9)

    entry = bench_entry(
        "bench-resilience-overhead",
        serial=bare,
        parallel=journal,
        gate=("journal_fsync_tax", tax_fsync, False),
        extra={
            "grid_points": len(grid),
            "n_runs": n_runs,
            "duration_s": duration_s,
            "journal_fsync_tax": tax_fsync,
            "journal_nofsync_tax": tax_nofsync,
        },
    )
    append_bench_entry(BENCH_JSON, entry)

    with report(capfd, "Resilience layer: supervision + checkpoint overhead"):
        print(f"grid points: {len(grid)}  runs/point: {n_runs}")
        print(f"{'path':<22s} {'wall (s)':>10s} {'vs bare':>9s}")
        print(f"{'bare':<22s} {bare.wall_seconds:>10.2f} {'1.00x':>9s}")
        print(f"{'journal (fsync)':<22s} {journal.wall_seconds:>10.2f} "
              f"{tax_fsync:>8.2f}x")
        print(f"{'journal (no fsync)':<22s} {journal_nofsync.wall_seconds:>10.2f} "
              f"{tax_nofsync:>8.2f}x")
        print(f"bit-identical: yes ({len(bare.points)} points)")
        print(f"trajectory: {BENCH_JSON}")

    # The happy path must not pay meaningfully for crash-safety: allow
    # generous slack for machine noise, but catch an accidental
    # serialization of the sweep behind the journal.
    assert tax_fsync < 2.0, f"checkpoint journal tax too high: {tax_fsync:.2f}x"

"""Figure 2b: Cubic parameter sweep at high link utilization.

Same workload shape as Figure 2a but with enough senders to drive the
bottleneck hard.  Paper headline: the optimal setting achieves a lower
packet loss rate than the default ("0.01% vs. 3.92%"), alongside higher
throughput and lower queueing delay; optimal settings shift smaller as
utilization rises.
"""

from bench_common import report, run_once, scaled

from repro.experiments import (
    FIG2A_LOW_UTILIZATION,
    FIG2B_HIGH_UTILIZATION,
    cubic_evaluator,
)
from repro.phi.optimizer import select_optimal, sweep
from repro.transport import CubicParams

REDUCED_GRID = [
    CubicParams.default(),
    CubicParams(window_init=2, initial_ssthresh=8, beta=0.3),
    CubicParams(window_init=4, initial_ssthresh=16, beta=0.3),
    CubicParams(window_init=8, initial_ssthresh=16, beta=0.5),
    CubicParams(window_init=16, initial_ssthresh=64, beta=0.2),
    CubicParams(window_init=32, initial_ssthresh=128, beta=0.2),
    CubicParams(window_init=4, initial_ssthresh=8, beta=0.7),
]


def _run_sweeps():
    high = sweep(
        cubic_evaluator(
            FIG2B_HIGH_UTILIZATION, base_seed=200, duration_s=scaled(25.0, 60.0)
        ),
        REDUCED_GRID,
        n_runs=scaled(2, 8),
    )
    low = sweep(
        cubic_evaluator(
            FIG2A_LOW_UTILIZATION, base_seed=100, duration_s=scaled(25.0, 60.0)
        ),
        REDUCED_GRID,
        n_runs=scaled(2, 8),
    )
    return high, low


def test_fig2b_high_utilization_sweep(benchmark, capfd):
    high, low = run_once(benchmark, _run_sweeps)

    default = next(r for r in high if r.params == CubicParams.default())
    optimal_high = select_optimal(high)
    optimal_low = select_optimal(low)

    with report(capfd, "Figure 2b: Cubic parameters, high link utilization"):
        print(f"{'wInit':>6s} {'ssthr':>6s} {'beta':>5s} "
              f"{'thr(Mbps)':>10s} {'delay(ms)':>10s} {'loss%':>7s} {'P_l':>8s}")
        for result in sorted(high, key=lambda r: -r.mean_power_l):
            p = result.params
            marker = " <= optimal" if result is optimal_high else (
                " <= default" if result is default else "")
            print(f"{p.window_init:>6.0f} {p.initial_ssthresh:>6.0f} {p.beta:>5.1f} "
                  f"{result.mean_throughput_mbps:>10.2f} "
                  f"{result.mean_queueing_delay_ms:>10.1f} "
                  f"{result.mean_loss_rate * 100:>7.2f} "
                  f"{result.mean_power_l:>8.3f}{marker}")
        print(f"\npaper: optimal loss 0.01% vs default 3.92%")
        print(f"ours : optimal loss {optimal_high.mean_loss_rate * 100:.2f}% vs "
              f"default {default.mean_loss_rate * 100:.2f}%")
        print(f"optimal ssthresh: low-util {optimal_low.params.initial_ssthresh:.0f} "
              f"-> high-util {optimal_high.params.initial_ssthresh:.0f}")

    # Paper shapes.
    assert optimal_high.mean_power_l > default.mean_power_l
    assert optimal_high.mean_queueing_delay_ms < default.mean_queueing_delay_ms
    assert optimal_high.mean_loss_rate <= default.mean_loss_rate
    # "optimal settings of these parameters shift to be smaller as the
    # link utilization becomes higher" (ssthresh + window_init combined).
    size_low = (
        optimal_low.params.initial_ssthresh + optimal_low.params.window_init
    )
    size_high = (
        optimal_high.params.initial_ssthresh + optimal_high.params.window_init
    )
    assert size_high <= size_low

"""Figure 3: stability (leave-one-out) analysis of the optimal setting.

Paper: "for each workload, we take the 'optimal' parameter settings from
one run and evaluate its performance on the remaining n-1 = 7 runs ...
applying such a common parameter setting to all runs yields significant
performance gains over the default setting, almost equal to the gains
from the 'optimal' setting for each run."
"""

from statistics import mean

from bench_common import report, run_once, scaled

from repro.experiments import FIG2B_HIGH_UTILIZATION, cubic_evaluator
from repro.phi.optimizer import leave_one_out, sweep
from repro.transport import CubicParams

GRID = [
    CubicParams.default(),
    CubicParams(window_init=4, initial_ssthresh=16, beta=0.3),
    CubicParams(window_init=8, initial_ssthresh=32, beta=0.3),
    CubicParams(window_init=16, initial_ssthresh=64, beta=0.2),
    CubicParams(window_init=32, initial_ssthresh=128, beta=0.2),
]


def _run():
    evaluator = cubic_evaluator(
        FIG2B_HIGH_UTILIZATION, base_seed=300, duration_s=scaled(20.0, 60.0)
    )
    results = sweep(evaluator, GRID, n_runs=scaled(4, 8))
    return results, leave_one_out(results)


def test_fig3_leave_one_out_stability(benchmark, capfd):
    results, records = run_once(benchmark, _run)

    with report(capfd, "Figure 3: leave-one-out stability of the optimal setting"):
        print(f"{'held-out':>9s} {'chosen (wI/ssthr/beta)':>24s} "
              f"{'transfer P_l':>13s} {'oracle P_l':>11s} {'default P_l':>12s} "
              f"{'gain':>6s}")
        for record in records:
            p = record.chosen_params
            print(f"{record.held_out_run:>9d} "
                  f"{f'{p.window_init:.0f}/{p.initial_ssthresh:.0f}/{p.beta:.1f}':>24s} "
                  f"{record.transfer_power_l:>13.4f} {record.oracle_power_l:>11.4f} "
                  f"{record.default_power_l:>12.4f} "
                  f"{record.gain_over_default:>6.2f}x")
        mean_gain = mean(r.gain_over_default for r in records)
        mean_fraction = mean(r.fraction_of_oracle for r in records)
        print(f"\nmean gain over default : {mean_gain:.2f}x")
        print(f"mean fraction of oracle: {mean_fraction:.2f}")

    # The gains are not a fluke: no held-out run's winner *loses* to the
    # default when transferred (on a noisy run the default itself may win,
    # making that run's gain exactly 1.0), most runs transfer a strict
    # win, and the mean gain is solid.
    assert all(r.gain_over_default >= 1.0 for r in records)
    strict_wins = sum(1 for r in records if r.gain_over_default > 1.0)
    assert strict_wins >= len(records) / 2
    assert mean(r.gain_over_default for r in records) > 1.1
    # "almost equal to the gains from the 'optimal' setting for each run"
    assert mean(r.fraction_of_oracle for r in records) > 0.6

"""Table 3: Remy vs Remy-Phi (ideal/practical) vs Cubic.

Paper setting: dumbbell, 15 Mbps, 150 ms RTT, 8 senders alternating
exp(100 KB) flows and exp(0.5 s) off times.  Both Remy variants are
retrained here (small budget at reduced scale); the Phi variant's memory
carries the shared bottleneck-utilization dimension.

Paper result (median throughput / queueing delay / objective):
  Remy-Phi-practical  1.93 / 5.6 / 2.52
  Remy-Phi-ideal      1.97 / 3.0 / 2.56
  Remy                1.45 / 1.7 / 2.26
  Cubic               1.03 / 9.3 / 1.87
Shape to reproduce: Phi variants > Remy > Cubic on the objective, with
Cubic's queueing delay the largest.
"""

from bench_common import report, run_once, scaled

from repro.experiments import run_table3, train_tables


def _train_and_evaluate():
    remy_result, phi_result = train_tables(
        budget=scaled(32, 80),
        duration_s=scaled(12.0, 30.0),
    )
    table = run_table3(
        remy_result.table,
        phi_result.table,
        n_runs=scaled(4, 8),
        duration_s=scaled(30.0, 60.0),
    )
    table.remy_training = remy_result
    table.phi_training = phi_result
    return table


def test_table3_remy_comparison(benchmark, capfd):
    table = run_once(benchmark, _train_and_evaluate)

    with report(capfd, "Table 3: Remy / Remy-Phi / Cubic comparison"):
        print(table.format())
        print(f"\ntraining: remy {table.remy_training.evaluations} evals "
              f"(score {table.remy_training.score:.2f}), "
              f"phi {table.phi_training.evaluations} evals "
              f"(score {table.phi_training.score:.2f})")
        print("paper objective ordering: Phi-ideal >= Phi-practical > Remy > Cubic")

    ideal = table.row("Remy-Phi-ideal")
    practical = table.row("Remy-Phi-practical")
    remy = table.row("Remy")
    cubic = table.row("Cubic")

    # The paper's ordering on the objective.
    assert remy.median_objective > cubic.median_objective
    assert practical.median_objective >= remy.median_objective
    assert ideal.median_objective >= remy.median_objective
    # Cubic's queueing delay is the largest of the four rows.
    delays = [r.median_queueing_delay_ms for r in table.rows]
    assert cubic.median_queueing_delay_ms == max(delays)
    # Remy variants move at least as much data as Cubic.
    assert remy.median_throughput_mbps >= 0.8 * cubic.median_throughput_mbps

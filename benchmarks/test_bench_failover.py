"""Failover-stack overhead bench: what replication costs when healthy.

PR 9 put a ``FailoverChannel`` over N per-replica ``ControlChannel``s and
an anti-entropy merge loop under the context service.  On the happy path
(no faults) all of that must be near-free: the sticky replica serves
every call, the merge loop finds nothing to reconcile, and an end-to-end
run should cost about what the single-server stack costs.  This bench
times the same scenario both ways, plus a per-call micro-bench of the
failover dispatch itself, and appends the ratios to
``BENCH_failover.json``.
"""

import os
import time

from bench_common import report, run_once, scaled

from repro.experiments.degraded import run_degraded_phi_cubic
from repro.experiments.partitioned import run_partitioned_phi_cubic
from repro.experiments.scenarios import TABLE3_REMY
from repro.phi.channel import ControlChannel
from repro.phi.failover import FailoverChannel, FailoverConfig
from repro.phi.policy import REFERENCE_POLICY
from repro.phi.server import ContextServer
from repro.runner import append_bench_entry, bench_entry
from repro.simnet import Simulator

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_failover.json"
)


def _per_call_ns(channel, calls):
    start = time.perf_counter()
    for _ in range(calls):
        channel.call_lookup()
    return (time.perf_counter() - start) / calls * 1e9


def test_bench_failover_overhead(benchmark, capfd):
    duration_s = scaled(10.0, 30.0)
    n_replicas = scaled(3, 5)
    micro_calls = scaled(20_000, 100_000)

    def single():
        return run_degraded_phi_cubic(
            REFERENCE_POLICY, TABLE3_REMY,
            unavailability=0.0, seed=0, duration_s=duration_s,
        )

    def replicated():
        return run_partitioned_phi_cubic(
            REFERENCE_POLICY, TABLE3_REMY,
            n_replicas=n_replicas, severity=0.0, seed=0,
            duration_s=duration_s,
        )

    start = time.perf_counter()
    single_run = single()
    single_wall = time.perf_counter() - start

    start = time.perf_counter()
    replicated_run = run_once(benchmark, replicated)
    replicated_wall = time.perf_counter() - start

    e2e_tax = replicated_wall / max(single_wall, 1e-9)

    # Per-call dispatch micro-bench: bare channel vs failover wrapper.
    sim = Simulator()
    server = ContextServer(sim, 15e6)
    bare = ControlChannel(sim, server)
    stacked = FailoverChannel(
        sim,
        [ControlChannel(sim, server) for _ in range(n_replicas)],
        config=FailoverConfig(suspend_jitter=0.0),
    )
    bare_ns = _per_call_ns(bare, micro_calls)
    stacked_ns = _per_call_ns(stacked, micro_calls)
    dispatch_tax = stacked_ns / max(bare_ns, 1e-9)

    entry = bench_entry(
        "bench-failover-overhead",
        gate=("dispatch_tax", dispatch_tax, False),
        extra={
            "n_replicas": n_replicas,
            "duration_s": duration_s,
            "single_wall_seconds": single_wall,
            "replicated_wall_seconds": replicated_wall,
            "e2e_tax": e2e_tax,
            "bare_call_ns": bare_ns,
            "failover_call_ns": stacked_ns,
            "dispatch_tax": dispatch_tax,
            "failovers": replicated_run.failovers,
            "anti_entropy_merges": replicated_run.anti_entropy_merges,
        },
    )
    append_bench_entry(BENCH_JSON, entry)

    with report(capfd, "Failover stack: healthy-path overhead"):
        print(f"replicas: {n_replicas}  duration: {duration_s:g}s")
        print(f"{'path':<26s} {'wall (s)':>10s} {'vs single':>10s}")
        print(f"{'single server':<26s} {single_wall:>10.2f} {'1.00x':>10s}")
        print(f"{'replicated (no fault)':<26s} {replicated_wall:>10.2f} "
              f"{e2e_tax:>9.2f}x")
        print(f"dispatch: bare {bare_ns:.0f} ns/call, "
              f"failover {stacked_ns:.0f} ns/call ({dispatch_tax:.2f}x)")
        print(f"failovers: {replicated_run.failovers}  "
              f"merges: {replicated_run.anti_entropy_merges}")
        print(f"P_l: single {single_run.metrics.power_l:.4f}  "
              f"replicated {replicated_run.metrics.power_l:.4f}")
        print(f"trajectory: {BENCH_JSON}")

    # Healthy-path invariants: no failovers, and neither the end-to-end
    # run nor the per-call dispatch pays an order of magnitude for
    # replication.  Caps are loose — machine noise, not a budget.
    assert replicated_run.failovers == 0
    assert e2e_tax < 4.0, f"replicated happy path too slow: {e2e_tax:.2f}x"
    assert dispatch_tax < 25.0, f"dispatch tax too high: {dispatch_tax:.2f}x"

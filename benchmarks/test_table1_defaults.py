"""Table 1: default settings of the TCP Cubic parameters.

Paper values: initial_ssthresh arbitrarily large (65K segments),
windowInit_ = 2 segments, beta = 0.2.
"""

from bench_common import report, run_once

from repro.transport import (
    DEFAULT_BETA,
    DEFAULT_INITIAL_SSTHRESH,
    DEFAULT_WINDOW_INIT,
    CubicParams,
)


def test_table1_default_parameters(benchmark, capfd):
    params = run_once(benchmark, CubicParams.default)

    assert params.initial_ssthresh == DEFAULT_INITIAL_SSTHRESH == 65536.0
    assert params.window_init == DEFAULT_WINDOW_INIT == 2.0
    assert params.beta == DEFAULT_BETA == 0.2

    with report(capfd, "Table 1: Default settings of the TCP Cubic parameters"):
        print(f"{'Parameter':<20s} {'Default Value':<40s}")
        print(f"{'initial_ssthresh':<20s} "
              f"Arbitrarily large ({params.initial_ssthresh:.0f} segments)")
        print(f"{'windowInit_':<20s} {params.window_init:.0f} segments")
        print(f"{'beta':<20s} {params.beta}")

"""Section 3.3: prioritization across flows.

"A single entity could have some of its flows be more (or less)
aggressive than others (say based on their 'importance'), while still
ensuring that the ensemble of flows remains TCP-friendly."

The bench runs an entity's weighted ensemble (HD video vs bulk) against
an equal pool of unmodified competitor flows on a shared bottleneck, and
checks (a) capacity shifts toward important flows, and (b) the ensemble's
aggregate share stays close to its fair share (TCP-friendliness).
"""

from bench_common import report, run_once, scaled

from repro.prioritization import (
    EnsembleAllocator,
    FlowClass,
    PriorityController,
)
from repro.prioritization.weighted import WeightedRenoSender
from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    FlowIdAllocator,
    FlowSpec,
    Simulator,
)
from repro.transport.sink import TcpSink


def _run():
    duration = scaled(60.0, 180.0)
    sim = Simulator()
    # 8 entity flows + 8 competitor flows share the bottleneck.  A 2xBDP
    # buffer keeps loss events frequent enough for the weighted-AIMD
    # shares to converge within the run (a 5xBDP buffer nearly never
    # drops here, leaving the ensemble stuck in its slow-start shares).
    config = DumbbellConfig(
        n_senders=16,
        bottleneck_bandwidth_bps=20e6,
        rtt_s=0.08,
        buffer_bdp_multiple=2.0,
    )
    topology = DumbbellTopology(sim, config)
    flow_ids = FlowIdAllocator()

    allocator = EnsembleAllocator(
        [FlowClass("hd-video", 4.0), FlowClass("bulk", 1.0)]
    )
    controller = PriorityController(sim, allocator)
    entity_pairs = [(topology.senders[i], topology.receivers[i]) for i in range(8)]
    classes = ["hd-video"] * 4 + ["bulk"] * 4
    controller.launch(entity_pairs, classes, flow_ids)

    competitors = []
    for i in range(8, 16):
        spec = FlowSpec(
            flow_ids.next_id(),
            topology.senders[i].name,
            40_000 + i,
            topology.receivers[i].name,
            443,
        )
        TcpSink(sim, topology.receivers[i], spec)
        sender = WeightedRenoSender(
            sim, topology.senders[i], spec, 10**9, weight=1.0
        )
        sender.start()
        competitors.append(sender)

    sim.run(until=duration)
    by_class = controller.throughput_by_class(duration)
    competitor_mbps = sum(
        max(s.stats.bytes_goodput, s.snd_una) * 8.0 / duration / 1e6
        for s in competitors
    )
    controller.finish_all()
    for sender in competitors:
        sender.abort()
    return by_class, competitor_mbps, config


def test_sec33_ensemble_prioritization(benchmark, capfd):
    by_class, competitor_mbps, config = run_once(benchmark, _run)

    entity_mbps = sum(by_class.values())
    capacity = config.bottleneck_bandwidth_bps / 1e6

    with report(capfd, "Section 3.3: ensemble prioritization across hosts"):
        print(f"{'class':<12s} {'flows':>6s} {'agg thr (Mbps)':>15s} "
              f"{'per-flow (Mbps)':>16s}")
        print(f"{'hd-video':<12s} {4:>6d} {by_class['hd-video']:>15.2f} "
              f"{by_class['hd-video'] / 4:>16.2f}")
        print(f"{'bulk':<12s} {4:>6d} {by_class['bulk']:>15.2f} "
              f"{by_class['bulk'] / 4:>16.2f}")
        print(f"{'competitors':<12s} {8:>6d} {competitor_mbps:>15.2f} "
              f"{competitor_mbps / 8:>16.2f}")
        print(f"\nentity aggregate : {entity_mbps:.2f} Mbps "
              f"(fair share of 8/16 flows = {capacity / 2:.2f} Mbps)")

    # Important flows get a clear per-flow capacity advantage inside the
    # ensemble.  (Drop-tail loss synchronization compresses the ideal w
    # ratio, so the asserted margin is conservative; the printed table
    # shows the actual split.)
    assert by_class["hd-video"] / 4 > 1.3 * (by_class["bulk"] / 4)
    # ...while the ensemble as a whole stays TCP-friendly: its share is
    # within a modest factor of the 8-flow fair share.
    fair = capacity / 2
    assert 0.6 * fair <= entity_mbps <= 1.4 * fair

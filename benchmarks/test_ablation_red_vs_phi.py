"""Ablation: Phi end-host coordination vs in-network RED/ECN.

The paper pins the need for coordination on FIFO queueing ("the
prevalence of FIFO queueing makes the network not incentive
compatible").  The classic in-network answer to the same standing-queue
problem is RED.  This bench runs heavy long-lived traffic under

- drop-tail + default Cubic        (the status-quo baseline),
- RED + default Cubic              (router-side fix),
- drop-tail + Phi-tuned Cubic      (end-host coordination),

and shows both remedies cut the standing queue the baseline builds —
Phi needing no router support, which is its deployment argument.
"""

import numpy as np
from bench_common import report, run_once, scaled

from repro.experiments.dumbbell import ExperimentEnv, run_long_running_scenario
from repro.phi import plain_cubic_factory
from repro.simnet import DumbbellConfig, RedQueue
from repro.simnet.monitor import LinkMonitor
from repro.transport import CubicParams
from repro.workload import launch_long_running_flows
from repro.metrics import summarize_connections

N_SENDERS = 16
PHI_TUNED = CubicParams(window_init=4, initial_ssthresh=16, beta=0.6)


def _run_arm(queue_kind, params, seed):
    config = DumbbellConfig(n_senders=N_SENDERS)
    env = ExperimentEnv.create(config, seed=seed)
    if queue_kind == "red":
        buffer_bytes = config.buffer_bytes
        red = RedQueue(
            buffer_bytes,
            lambda: env.sim.now,
            np.random.default_rng(seed),
            min_thresh_bytes=0.1 * buffer_bytes,
            max_thresh_bytes=0.4 * buffer_bytes,
            max_probability=0.1,
        )
        # Swap before any traffic: the monitor reads link.queue lazily.
        env.topology.bottleneck.queue = red

    factory = plain_cubic_factory(params)
    pairs = [
        (env.topology.senders[i], env.topology.receivers[i])
        for i in range(N_SENDERS)
    ]
    flows = launch_long_running_flows(
        env.sim, pairs, factory, env.flow_ids, env.rngs.stream("lr")
    )
    duration = scaled(30.0, 90.0)
    env.sim.run(until=duration)
    stats = [flow.finish() for flow in flows]
    drop_rate = env.topology.bottleneck.queue.stats.drop_rate()
    metrics = summarize_connections(
        stats,
        bottleneck_loss_rate=drop_rate,
        mean_utilization=env.monitor.mean_utilization(since=5.0),
    )
    return metrics


def _run_all():
    arms = {}
    seeds = range(scaled(2, 5))
    for label, queue_kind, params in [
        ("drop-tail + default", "droptail", CubicParams.default()),
        ("RED + default", "red", CubicParams.default()),
        ("drop-tail + Phi-tuned", "droptail", PHI_TUNED),
    ]:
        runs = [_run_arm(queue_kind, params, seed) for seed in seeds]
        arms[label] = (
            sum(m.queueing_delay_ms for m in runs) / len(runs),
            sum(m.mean_utilization for m in runs) / len(runs),
            sum(m.loss_rate for m in runs) / len(runs),
        )
    return arms


def test_ablation_red_vs_phi(benchmark, capfd):
    arms = run_once(benchmark, _run_all)

    with report(capfd, "Ablation: RED/in-network vs Phi/end-host queue control"):
        print(f"{'arm':<24s} {'delay(ms)':>10s} {'util':>6s} {'loss%':>7s}")
        for label, (delay, util, loss) in arms.items():
            print(f"{label:<24s} {delay:>10.0f} {util:>6.2f} {loss * 100:>7.2f}")

    baseline_delay = arms["drop-tail + default"][0]
    red_delay = arms["RED + default"][0]
    phi_delay = arms["drop-tail + Phi-tuned"][0]
    # Both remedies shrink the standing queue the baseline builds.
    assert red_delay < baseline_delay
    assert phi_delay < baseline_delay
    # Neither collapses the link.
    assert arms["RED + default"][1] > 0.6
    assert arms["drop-tail + Phi-tuned"][1] > 0.6

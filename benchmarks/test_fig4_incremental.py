"""Figure 4: Cubic parameters under incremental deployment.

Paper: "one half of the senders ('unmodified') sticks with the default
parameter settings for TCP Cubic, while the other half ('modified') uses
the parameter setting that would have been optimal had all senders been
cooperating.  ... the modified senders still see improved throughput and
delay compared to the default case.  Even the unmodified senders see an
improvement in the power metric."  The modified ssthresh in the paper's
figure is 64 segments.
"""

from bench_common import report, run_once, scaled

from repro.experiments import (
    FIG4_INCREMENTAL,
    run_cubic_fixed,
    run_incremental_deployment,
)
from repro.transport import CubicParams

#: The setting the paper's Figure-4 modified senders use (ssthresh 64).
MODIFIED_PARAMS = CubicParams(window_init=16, initial_ssthresh=64, beta=0.3)


def _run():
    duration = scaled(30.0, 60.0)
    seeds = range(scaled(2, 8))
    mixed = [
        run_incremental_deployment(
            MODIFIED_PARAMS, FIG4_INCREMENTAL, 0.5, seed=s, duration_s=duration
        )
        for s in seeds
    ]
    baseline = [
        run_cubic_fixed(
            CubicParams.default(), FIG4_INCREMENTAL, seed=s, duration_s=duration
        )
        for s in seeds
    ]
    return mixed, baseline


def _mean(values):
    values = list(values)
    return sum(values) / len(values)


def test_fig4_incremental_deployment(benchmark, capfd):
    mixed, baseline = run_once(benchmark, _run)

    mod_thr = _mean(r.modified.throughput_mbps for r in mixed)
    mod_delay = _mean(r.modified.queueing_delay_ms for r in mixed)
    mod_power = _mean(r.modified.power_l for r in mixed)
    unmod_thr = _mean(r.unmodified.throughput_mbps for r in mixed)
    unmod_delay = _mean(r.unmodified.queueing_delay_ms for r in mixed)
    unmod_power = _mean(r.unmodified.power_l for r in mixed)
    base_thr = _mean(r.metrics.throughput_mbps for r in baseline)
    base_delay = _mean(r.metrics.queueing_delay_ms for r in baseline)
    base_power = _mean(r.metrics.power_l for r in baseline)

    with report(capfd, "Figure 4: incremental deployment (half modified)"):
        print(f"{'population':<22s} {'thr(Mbps)':>10s} {'delay(ms)':>10s} {'P_l':>9s}")
        print(f"{'all default':<22s} {base_thr:>10.2f} {base_delay:>10.1f} "
              f"{base_power:>9.4f}")
        print(f"{'modified half':<22s} {mod_thr:>10.2f} {mod_delay:>10.1f} "
              f"{mod_power:>9.4f}")
        print(f"{'unmodified half':<22s} {unmod_thr:>10.2f} {unmod_delay:>10.1f} "
              f"{unmod_power:>9.4f}")
        print(f"\nmean utilization (mixed runs): "
              f"{_mean(r.overall.mean_utilization for r in mixed):.2f}")

    # Modified senders beat the all-default baseline on delay and power.
    assert mod_delay < base_delay
    assert mod_power > base_power
    # Modified senders also do better than their unmodified competitors.
    assert mod_power >= unmod_power
    # "Even the unmodified senders see an improvement in the power metric"
    assert unmod_power > base_power

"""Extension X7: the safety envelope under a *partitioned* control plane.

X4 covered an absent context server and X6 a lying one; this bench
covers a *replicated* control plane that splits.  A sweep over replica
count × partition severity on the lightly loaded Fig-2a preset, with
the cut replicas chosen lowest-index-first so a nonzero severity always
dislodges the replica every client started sticky on.  Claims:

* **minority cut, ≥ 2 replicas** — client failover masks the partition
  entirely: power *and* throughput stay within tolerance of the
  *degraded* single-server-outage baseline (PR 1's best effort), and in
  practice match the no-fault run because retries are free in sim time.
* **any cut, any replica count** — the stock-Cubic floor of X4/X6
  still holds: losing the whole plane degrades to uncoordinated, never
  below it.
* **convergence** — anti-entropy closes the divergence the partition
  opened: every healed cell ends with zero replica divergence.
"""

from bench_common import report, run_once, scaled

from repro.experiments import (
    FIG2A_LOW_UTILIZATION,
    check_partition_envelope,
    run_partition_sweep,
)
from repro.phi import REFERENCE_POLICY

REPLICAS = (1, 2, 3)
SEVERITIES = (0.0, 0.34, 1.0)


def _run():
    duration = scaled(30.0, 60.0)
    seeds = tuple(range(scaled(2, 4)))
    return run_partition_sweep(
        REFERENCE_POLICY, FIG2A_LOW_UTILIZATION,
        replica_counts=REPLICAS,
        severities=SEVERITIES,
        heal_times=(scaled(8.0, 15.0),),
        seeds=seeds,
        partition_start_s=10.0,
        duration_s=duration,
        parallel=False,
        collect_telemetry=False,
    )


def test_extension_partitioned_control(benchmark, capfd):
    outcome = run_once(benchmark, _run)

    with report(capfd, "Extension X7: safety envelope under control-plane partition"):
        first = outcome.rows[0]
        print(f"stock baseline:    P_l = {first.stock_power_l:.4f}  "
              f"thr = {first.stock_throughput_mbps:.2f} Mbps")
        print(f"degraded baseline: P_l = {first.degraded_power_l:.4f}  "
              f"thr = {first.degraded_throughput_mbps:.2f} Mbps")
        print()
        print(f"{'N':>3s} {'sev':>5s} {'cut':>4s} {'P_l':>9s} {'x-stock':>8s} "
              f"{'x-degr':>7s} {'thr':>8s} | {'fo':>4s} {'merge':>6s} "
              f"{'maxdiv':>7s}")
        for row in outcome.rows:
            if row.minority:
                kind = "min"
            elif row.n_cut == row.n_replicas:
                kind = "all"
            elif row.n_cut:
                kind = "maj"
            else:
                kind = "-"
            print(f"{row.n_replicas:>3d} {row.severity:>5.2f} "
                  f"{row.n_cut:>2d}/{kind:<3s} {row.mean_power_l:>9.4f} "
                  f"{row.power_vs_stock:>7.2f}x {row.power_vs_degraded:>6.2f}x "
                  f"{row.mean_throughput_mbps:>8.2f} | {row.failovers:>4d} "
                  f"{row.anti_entropy_merges:>6d} {row.max_divergence:>7.3f}")

    # The full envelope: stock floor everywhere, degraded floor on every
    # minority cut of a multi-replica plane.
    assert check_partition_envelope(outcome, rel_tol=0.05) == []

    minority = [r for r in outcome.rows if r.minority and r.n_replicas >= 2]
    assert minority, "sweep produced no minority-cut rows"
    for row in minority:
        # Failover actually fired and masked the cut.
        assert row.failovers > 0
        assert row.anti_entropy_merges > 0
        assert row.decision_counts.get("fallback", 0) == 0
        # The partition visibly opened divergence before healing.
        assert row.max_divergence > 0

    # Bounded convergence: every healed multi-replica cell closed its
    # divergence by end of run (heal + anti-entropy did their job).
    healed = [
        r for r in outcome.rows
        if r.n_replicas >= 2 and 0 < r.n_cut and r.heal_s > 0
    ]
    for result in outcome.results:
        if result.n_replicas >= 2:
            assert result.final_divergence < 1e-9
    assert healed

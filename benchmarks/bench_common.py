"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures and prints a
paper-shaped report.  Scale is controlled by ``PHI_BENCH_FULL=1`` in the
environment: the default ("reduced") scale finishes in tens of seconds
per bench while preserving every qualitative shape; full scale matches
the paper's durations and sweep sizes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

FULL_SCALE = os.environ.get("PHI_BENCH_FULL", "") == "1"


def scaled(reduced, full):
    """Pick the reduced or full-scale value of a knob."""
    return full if FULL_SCALE else reduced


@contextmanager
def report(capfd, title: str):
    """Print a bench report section with capture disabled.

    pytest captures stdout by default; the benches' whole point is their
    printed tables, so each one opens this context to write through.
    """
    with capfd.disabled():
        print()
        print("=" * 72)
        print(title + ("  [FULL SCALE]" if FULL_SCALE else "  [reduced scale]"))
        print("=" * 72)
        yield
        print()


def run_once(benchmark, func):
    """Run a heavy scenario exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

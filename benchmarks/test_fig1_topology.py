"""Figure 1: the dumbbell network used for the TCP Cubic experiments.

"The buffer size is 5 times the bandwidth-delay product of the
bottleneck link."  This bench validates the topology construction and
measures the simulator's raw event throughput on it.
"""

from bench_common import report, run_once, scaled

from repro.simnet import (
    DumbbellConfig,
    DumbbellTopology,
    Simulator,
    bdp_bytes,
    make_data_packet,
)


def _build_and_saturate():
    sim = Simulator()
    config = DumbbellConfig()  # Table 3 defaults: 15 Mbps, 150 ms, n=8
    topology = DumbbellTopology(sim, config)
    for receiver in topology.receivers:
        receiver.set_default_handler(lambda p: None)
    packets = scaled(2_000, 20_000)
    for i in range(packets):
        sender = topology.senders[i % len(topology.senders)]
        receiver = topology.receivers[i % len(topology.receivers)]
        sender.send(make_data_packet(1 + i % 8, sender.name, receiver.name, i, 1400))
    sim.run()
    return sim, topology


def test_fig1_dumbbell_topology(benchmark, capfd):
    sim, topology = run_once(benchmark, _build_and_saturate)

    config = topology.config
    bdp = bdp_bytes(config.bottleneck_bandwidth_bps, config.rtt_s)
    assert config.buffer_bytes == 5 * bdp
    assert topology.bottleneck.packets_transmitted > 0
    assert sim.events_processed > 0

    with report(capfd, "Figure 1: dumbbell topology (buffer = 5 x BDP)"):
        print(f"bottleneck bandwidth : {config.bottleneck_bandwidth_bps / 1e6:.0f} Mbps")
        print(f"round-trip time      : {config.rtt_s * 1e3:.0f} ms")
        print(f"senders / receivers  : {config.n_senders} / {config.n_senders}")
        print(f"BDP                  : {bdp} bytes")
        print(f"bottleneck buffer    : {config.buffer_bytes} bytes (5 x BDP)")
        print(f"events processed     : {sim.events_processed}")
        print(f"packets across bottleneck: {topology.bottleneck.packets_transmitted}")

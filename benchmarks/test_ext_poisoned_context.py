"""Extension X6: the safety envelope under a *lying* control plane.

The degraded-control bench (X4) covered an *absent* context server;
this one covers a *Byzantine* server whose answers are corrupted —
self-consistent inflation lies ("the network is jammed") that steer
every coordinated sender onto SEVERE parameters.  Two sweeps over
corruption severity on the lightly loaded Fig-2a preset:

* **guarded** — robust server aggregation + :class:`ContextGuard` +
  outcome-driven :class:`TrustTracker` distrust.  Claim: power *and*
  throughput never fall materially below the uncoordinated Cubic
  baseline at any severity (the X4-shaped safety envelope), because
  caught lies land senders on stock defaults.
* **unguarded** — the same lies trusted blindly.  Claim: throughput
  collapses well below baseline at high severity, proving the harness
  injects real harm and the defences are load-bearing.

A calibration note: stock Cubic's ssthresh floods the queue, so *power*
(throughput over queueing delay) cannot show inflation harm — crawling
senders have tiny queues and great power.  The harm axis is
throughput; the envelope is asserted on both axes (see
``check_safety_envelope``).
"""

from bench_common import report, run_once, scaled

from repro.experiments import (
    FIG2A_LOW_UTILIZATION,
    check_harm_demonstrated,
    check_safety_envelope,
    run_poison_sweep,
)
from repro.phi import REFERENCE_POLICY

SEVERITIES = (0.0, 0.25, 0.5, 0.75, 1.0)
MODES = ("inflate",)


def _run_all():
    duration = scaled(30.0, 60.0)
    seeds = tuple(range(scaled(2, 4)))
    common = dict(
        severities=SEVERITIES, seeds=seeds, modes=MODES,
        duration_s=duration, parallel=False, collect_telemetry=False,
    )
    guarded = run_poison_sweep(
        REFERENCE_POLICY, FIG2A_LOW_UTILIZATION, guarded=True, **common
    )
    unguarded = run_poison_sweep(
        REFERENCE_POLICY, FIG2A_LOW_UTILIZATION, guarded=False, **common
    )
    return guarded, unguarded


def _print_rows(rows):
    print(f"{'sev':>5s} {'P_l':>9s} {'vs base':>8s} {'thr(Mbps)':>10s} "
          f"{'vs base':>8s} | {'reject':>6s} {'distr':>6s} {'trust':>6s}")
    for row in rows:
        print(f"{row.severity:>5.2f} {row.mean_power_l:>9.4f} "
              f"{row.power_vs_baseline:>7.2f}x "
              f"{row.mean_throughput_mbps:>10.2f} "
              f"{row.throughput_vs_baseline:>7.2f}x | "
              f"{sum(row.guard_rejections.values()):>6d} "
              f"{row.decision_counts.get('distrusted', 0):>6d} "
              f"{row.mean_trust_score:>6.2f}")


def test_extension_poisoned_context(benchmark, capfd):
    guarded, unguarded = run_once(benchmark, _run_all)

    with report(capfd, "Extension X6: safety envelope under Byzantine context"):
        base = guarded.rows[0]
        print(f"uncoordinated baseline: P_l = {base.baseline_power_l:.4f}  "
              f"thr = {base.baseline_throughput_mbps:.2f} Mbps")
        print()
        print("guarded (robust aggregation + guard + trust):")
        _print_rows(guarded.rows)
        print()
        print("unguarded (lies trusted blindly):")
        _print_rows(unguarded.rows)

    # The safety envelope: at every severity the guarded stack stays
    # within 5% of the uncoordinated baseline on power and throughput.
    assert check_safety_envelope(guarded, rel_tol=0.05) == []
    # At full severity the trust layer has tripped: senders run stock
    # defaults through the DISTRUSTED decision.
    top = guarded.rows[-1]
    assert top.severity == 1.0
    assert top.decision_counts.get("distrusted", 0) > 0
    assert top.mean_trust_score < 0.7

    # The ablation proves the harness injects real harm: without the
    # defences the same lies drive throughput well below baseline.
    assert check_harm_demonstrated(unguarded, rel_tol=0.05)
    worst = unguarded.rows[-1]
    assert worst.throughput_vs_baseline < 0.8
    # And nothing in the unguarded stack ever fought back.
    assert all(not row.guard_rejections for row in unguarded.rows)
    assert all(
        row.decision_counts.get("distrusted", 0) == 0 for row in unguarded.rows
    )

"""Extension: default-vs-tuned gap across the paper's load range.

Section 2.2: "The varying workload generates different levels of
congestion at the bottleneck link, with average link utilization
spanning from 20% to 80% across the experiments."  Using the open-loop
Poisson workload to dial offered load precisely, this bench sweeps that
range and reports the P_l gap between default and tuned Cubic at each
level — the x-axis the paper's Figure 2 panels sit on.
"""

from bench_common import report, run_once, scaled

from repro.experiments.dumbbell import ExperimentEnv
from repro.metrics import summarize_connections
from repro.phi import plain_cubic_factory
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import PoissonConfig, PoissonFlowGenerator

TUNED = CubicParams(window_init=8, initial_ssthresh=32, beta=0.3)
LOADS = (0.2, 0.4, 0.6, 0.8)


def _run_arm(load, params, seed):
    config = DumbbellConfig(n_senders=8)
    env = ExperimentEnv.create(config, seed=seed)
    pairs = [(env.topology.senders[i], env.topology.receivers[i]) for i in range(8)]
    generator = PoissonFlowGenerator(
        env.sim,
        pairs,
        plain_cubic_factory(params),
        env.flow_ids,
        env.rngs.stream("poisson"),
        PoissonConfig.for_load(load, config.bottleneck_bandwidth_bps,
                               mean_flow_bytes=300_000),
        flow_tracker=env.flow_tracker,
    )
    generator.start()
    env.sim.run(until=scaled(30.0, 90.0))
    generator.stop()
    return summarize_connections(
        generator.completed,
        bottleneck_loss_rate=env.topology.bottleneck_queue.stats.drop_rate(),
        mean_utilization=env.monitor.mean_utilization(since=5.0),
    )


def _run_sweep():
    rows = []
    for load in LOADS:
        default = _run_arm(load, CubicParams.default(), seed=17)
        tuned = _run_arm(load, TUNED, seed=17)
        rows.append((load, default, tuned))
    return rows


def test_extension_load_sweep(benchmark, capfd):
    rows = run_once(benchmark, _run_sweep)

    with report(capfd, "Extension: default vs tuned Cubic across offered load"):
        print(f"{'load':>5s} {'util':>6s} | {'default P_l':>12s} {'delay':>7s} | "
              f"{'tuned P_l':>10s} {'delay':>7s} | {'gain':>6s}")
        for load, default, tuned in rows:
            gain = tuned.power_l / max(default.power_l, 1e-9)
            print(f"{load:>5.1f} {default.mean_utilization:>6.2f} | "
                  f"{default.power_l:>12.4f} {default.queueing_delay_ms:>7.1f} | "
                  f"{tuned.power_l:>10.4f} {tuned.queueing_delay_ms:>7.1f} | "
                  f"{gain:>6.2f}x")

    # Offered load actually rises across the sweep.
    utils = [default.mean_utilization for _l, default, _t in rows]
    assert utils[0] < utils[-1]
    # Tuned parameters never lose badly, and win clearly somewhere in the
    # paper's range.
    gains = [
        tuned.power_l / max(default.power_l, 1e-9)
        for _l, default, tuned in rows
    ]
    assert max(gains) > 1.2
    assert min(gains) > 0.5

"""Sweep-runner benchmark: serial baseline vs parallel `repro.runner`.

Runs a (reduced) Table-2 grid twice — once through the single-process
baseline, once through the multiprocess :class:`SweepRunner` — verifies
the parallel results are bit-identical, and appends both timings plus a
raw event-core throughput measurement to the ``BENCH_sweep.json``
trajectory file at the repo root, so the perf history accumulates
commit over commit.

The ≥3x speedup assertion (ISSUE 3 acceptance) only applies on machines
with ≥4 usable cores; on smaller boxes the bench still records both
timings and enforces determinism.
"""

import os

import pytest
from bench_common import report, run_once, scaled

from repro.experiments.scenarios import TABLE3_REMY
from repro.runner import (
    NullCache,
    SweepRunner,
    append_bench_entry,
    bench_entry,
    machine_fingerprint,
)
from repro.simnet.engine import Simulator
from repro.transport.cubic import cubic_sweep_grid

BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_sweep.json")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _event_core_churn(n_events: int = 100_000) -> float:
    """Raw engine throughput via the opt-in profiling hook (events/sec)."""
    sim = Simulator()
    profile = sim.enable_profiling()
    remaining = [n_events]

    def tick(lane: int) -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001 * (lane + 1), tick, lane)

    for lane in range(32):
        sim.schedule(0.001, tick, lane)
    sim.run()
    return profile.events_per_second


def test_bench_sweep_runner(benchmark, capfd):
    grid = list(
        cubic_sweep_grid(
            ssthresh_range=scaled([2.0, 16.0, 128.0], None),
            window_init_range=scaled([2.0, 64.0], None),
            beta_range=scaled([0.2, 0.5, 0.8], None),
        )
    )
    n_runs = scaled(1, 8)
    duration_s = scaled(5.0, None)
    cpus = _usable_cpus()

    serial_runner = SweepRunner(
        TABLE3_REMY, duration_s=duration_s, n_workers=1, cache=NullCache()
    )
    parallel_runner = SweepRunner(
        TABLE3_REMY, duration_s=duration_s, cache=NullCache()
    )

    serial = serial_runner.run_serial(grid, n_runs=n_runs)

    def run_parallel():
        return parallel_runner.run(grid, n_runs=n_runs)

    parallel = run_once(benchmark, run_parallel)

    # Hard requirement regardless of core count: parallel == serial.
    assert len(parallel.points) == len(serial.points) == len(grid) * n_runs
    mismatched = [
        index
        for index, (a, b) in enumerate(zip(serial.points, parallel.points))
        if not a.identical_to(b)
    ]
    assert mismatched == [], f"non-deterministic points: {mismatched}"

    speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
    churn = _event_core_churn()

    entry = bench_entry(
        "bench-table2-sweep",
        serial=serial,
        parallel=parallel,
        gate=("speedup", speedup, True),
        extra={
            "grid_points": len(grid),
            "n_runs": n_runs,
            "duration_s": duration_s,
            "event_core_events_per_second": churn,
        },
    )
    append_bench_entry(BENCH_JSON, entry)

    with report(capfd, "Sweep runner: serial baseline vs repro.runner"):
        print(f"grid points: {len(grid)}  runs/point: {n_runs}  "
              f"usable cpus: {cpus}")
        print(f"{'path':<10s} {'wall (s)':>10s} {'events/s':>14s}")
        print(f"{'serial':<10s} {serial.wall_seconds:>10.2f} "
              f"{serial.events_per_second:>14,.0f}")
        print(f"{'parallel':<10s} {parallel.wall_seconds:>10.2f} "
              f"{parallel.events_per_second:>14,.0f}  "
              f"(workers={parallel.workers})")
        print(f"speedup: {speedup:.2f}x   "
              f"event core: {churn:,.0f} events/s")
        print(f"bit-identical: yes ({len(parallel.points)} points)")
        print(f"trajectory: {BENCH_JSON}")

    if cpus >= 4:
        assert speedup >= 3.0, (
            f"expected >=3x sweep speedup on {cpus} cores, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >=4 usable cores "
            f"(have {cpus}); timings recorded"
        )


def test_bench_machine_fingerprint_recorded():
    fingerprint = machine_fingerprint()
    assert fingerprint["usable_cpus"] >= 1
    assert fingerprint["python"]

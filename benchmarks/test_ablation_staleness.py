"""Ablation A2 (Section 2.2.2): how much context freshness matters.

Compares default Cubic (no sharing) against Phi-practical (lookup at
start / report at end) and Phi-ideal (live ground truth), plus a
*stale* practical server whose estimation window is far too long.  The
paper's claim: "such a practical approach, with minimal overhead, still
provides significant gains."
"""

from bench_common import report, run_once, scaled

from repro.experiments import run_cubic_fixed, run_onoff_scenario, uniform_slots
from repro.experiments.scenarios import ScenarioPreset
from repro.phi import REFERENCE_POLICY, ContextServer, SharingMode, phi_cubic_factory
from repro.phi.server import IdealContextOracle
from repro.simnet import DumbbellConfig
from repro.transport import CubicParams
from repro.workload import OnOffConfig

PRESET = ScenarioPreset(
    name="staleness",
    config=DumbbellConfig(n_senders=16),
    workload=OnOffConfig(mean_on_bytes=400_000, mean_off_s=0.5),
    duration_s=30.0,
    description="A2 staleness ablation",
)


def _run_arm(mode, seed, duration, stale_window=None):
    if mode == "none":
        return run_cubic_fixed(CubicParams.default(), PRESET, seed, duration)

    def build(env):
        if mode == "ideal":
            source = IdealContextOracle(env.sim, env.monitor, env.flow_tracker)
        else:
            window = stale_window if stale_window is not None else 10.0
            source = ContextServer(
                env.sim, env.bottleneck_capacity_bps, window_s=window
            )
        return phi_cubic_factory(source, REFERENCE_POLICY, now=lambda: env.sim.now)

    return run_onoff_scenario(
        uniform_slots(build),
        config=PRESET.config,
        workload=PRESET.workload,
        duration_s=duration,
        seed=seed,
    )


def _run_all():
    duration = scaled(25.0, 60.0)
    seeds = range(scaled(2, 6))
    arms = {}
    for name, kwargs in [
        ("no sharing (default)", dict(mode="none")),
        ("phi practical", dict(mode="practical")),
        ("phi practical, stale", dict(mode="practical", stale_window=300.0)),
        ("phi ideal", dict(mode="ideal")),
    ]:
        runs = [_run_arm(seed=s, duration=duration, **kwargs) for s in seeds]
        arms[name] = (
            sum(r.metrics.power_l for r in runs) / len(runs),
            sum(r.metrics.queueing_delay_ms for r in runs) / len(runs),
            sum(r.metrics.throughput_mbps for r in runs) / len(runs),
        )
    return arms


def test_ablation_context_staleness(benchmark, capfd):
    arms = run_once(benchmark, _run_all)

    with report(capfd, "Ablation A2: context freshness (none/practical/stale/ideal)"):
        print(f"{'arm':<24s} {'P_l':>9s} {'delay(ms)':>10s} {'thr(Mbps)':>10s}")
        for name, (power, delay, thr) in arms.items():
            print(f"{name:<24s} {power:>9.4f} {delay:>10.1f} {thr:>10.2f}")

    none = arms["no sharing (default)"][0]
    practical = arms["phi practical"][0]
    ideal = arms["phi ideal"][0]
    # The paper's claim: practical sharing still provides significant gains.
    assert practical > none
    assert ideal > none
    # Practical retains a large share of the ideal gain.
    assert practical >= 0.4 * ideal

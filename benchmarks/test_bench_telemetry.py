"""Telemetry overhead benchmark: the table-3 hot path, on vs off.

The observability layer promises a strict no-op fast path: with no
session enabled, instrumented code pays one module-global lookup and an
``enabled`` check per *run* (not per event), so the simulation should
time the same with the layer compiled in as the pre-telemetry engine.
With a session enabled it still only pays per-run and per-sample-tick
costs, so the budget is a few percent.

Appends wall times and the on/off ratio to ``BENCH_telemetry.json`` so
the overhead trajectory accumulates commit over commit.  The hard
assertion is deliberately loose (CI boxes are noisy); the recorded
numbers are the real deliverable.
"""

import os
import time

from bench_common import report, run_once, scaled

from repro import telemetry
from repro.experiments.scenarios import TABLE3_REMY, run_cubic_fixed
from repro.runner import append_bench_entry, bench_entry
from repro.transport.cubic import CubicParams

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_telemetry.json"
)

PARAMS = CubicParams(window_init=4.0, initial_ssthresh=64.0, beta=0.7)


def _time_best_of(n, func):
    """Best-of-n wall time: robust to scheduler noise on shared CI."""
    best = float("inf")
    result = None
    for _ in range(n):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_telemetry_overhead(benchmark, capfd):
    duration_s = scaled(20.0, None)
    rounds = scaled(3, 5)

    def run_disabled():
        return run_cubic_fixed(PARAMS, TABLE3_REMY, seed=1, duration_s=duration_s)

    def run_enabled():
        with telemetry.use() as tele:
            result = run_cubic_fixed(
                PARAMS, TABLE3_REMY, seed=1, duration_s=duration_s
            )
            snapshot = tele.registry.snapshot()
        return result, snapshot

    # Warm caches/JIT-free interpreter state once before timing anything.
    baseline = run_disabled()

    wall_disabled, _ = _time_best_of(rounds, run_disabled)
    wall_enabled, (instrumented, snapshot) = _time_best_of(rounds, run_enabled)
    run_once(benchmark, run_disabled)

    # Telemetry observes without perturbing: identical simulation.
    assert instrumented.events_processed == baseline.events_processed
    assert instrumented.metrics == baseline.metrics
    # And the disabled path really collected nothing.
    assert not telemetry.session().enabled
    assert snapshot["counters"]["sim.events"] == float(baseline.events_processed)

    ratio = wall_enabled / max(wall_disabled, 1e-9)
    events_per_second = baseline.events_processed / max(wall_disabled, 1e-9)

    entry = bench_entry(
        "bench-telemetry-overhead",
        gate=("overhead_ratio", ratio, False),
        extra={
            "duration_s": duration_s,
            "rounds": rounds,
            "wall_disabled_s": wall_disabled,
            "wall_enabled_s": wall_enabled,
            "overhead_ratio": ratio,
            "events_processed": baseline.events_processed,
            "events_per_second_disabled": events_per_second,
            "metrics_collected": len(snapshot["counters"])
            + len(snapshot["gauges"])
            + len(snapshot["histograms"]),
        },
    )
    append_bench_entry(BENCH_JSON, entry)

    with report(capfd, "Telemetry overhead: table-3 hot path, on vs off"):
        print(f"sim duration: {duration_s or TABLE3_REMY.duration_s:.0f} s  "
              f"events: {baseline.events_processed:,}  best of {rounds}")
        print(f"{'telemetry':<10s} {'wall (s)':>10s} {'events/s':>14s}")
        print(f"{'off':<10s} {wall_disabled:>10.3f} {events_per_second:>14,.0f}")
        print(f"{'on':<10s} {wall_enabled:>10.3f} "
              f"{baseline.events_processed / max(wall_enabled, 1e-9):>14,.0f}")
        print(f"overhead: {(ratio - 1.0) * 100:+.2f}%   "
              f"metric series collected: {entry['metrics_collected']}")
        print(f"trajectory: {BENCH_JSON}")

    # Budget: <=2% on a quiet box; allow generous headroom for CI noise.
    assert ratio <= 1.25, (
        f"telemetry overhead {ratio:.3f}x exceeds the noise-tolerant cap"
    )

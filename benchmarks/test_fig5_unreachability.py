"""Figure 5: an unreachability event localized to an ISP in a metro.

Paper: "Figure 5 shows an unreachability event detected in the context
of a large global-scale cloud provider, that was localized to an ISP
network on a particular metro" and "lasted for around 2 hours".

The bench injects exactly such an event into the synthetic telemetry,
runs the detection + localization pipeline, and prints the normalized
volume series of the affected slice (the figure's curve).
"""

import numpy as np
from bench_common import report, run_once, scaled

from repro.diagnosis import (
    OutageSpec,
    TelemetryConfig,
    TelemetryGenerator,
    UnreachabilityDetector,
    localize,
)

OUTAGE_ASN = "isp-a"
OUTAGE_METRO = "nyc"


def _run_pipeline():
    config = TelemetryConfig()
    train_bins = scaled(2, 7) * config.bins_per_day
    bins_2h = 120 // config.bin_minutes
    outage = OutageSpec(
        start_bin=train_bins + 80,
        duration_bins=bins_2h,
        severity=0.92,
        asn=OUTAGE_ASN,
        metro=OUTAGE_METRO,
    )
    generator = TelemetryGenerator(config, np.random.default_rng(55), [outage])
    series = generator.generate(train_bins + config.bins_per_day)
    detector = UnreachabilityDetector(config.bins_per_day)
    dips = detector.detect(series, train_bins)
    events = localize(dips, config.slice_keys())
    return config, outage, series, dips, events, train_bins


def test_fig5_unreachability_event(benchmark, capfd):
    config, outage, series, dips, events, train_bins = run_once(
        benchmark, _run_pipeline
    )

    with report(capfd, "Figure 5: unreachability event detection + localization"):
        print(f"injected : asn={OUTAGE_ASN}, metro={OUTAGE_METRO}, "
              f"bins [{outage.start_bin}, {outage.end_bin}) "
              f"({outage.duration_bins * config.bin_minutes} minutes), "
              f"severity {outage.severity:.0%}")
        print(f"slice dips detected: {len(dips)}")
        for event in events:
            print(f"detected : {event.describe()}, "
                  f"bins [{event.start_bin}, {event.end_bin}) "
                  f"({event.duration_bins * config.bin_minutes} minutes), "
                  f"mean drop {event.mean_drop_fraction:.0%}, "
                  f"{event.affected_slices} slices")
        # The figure's curve: affected-slice volume around the event,
        # normalized to the healthy mean, rendered as ASCII.
        key = (OUTAGE_ASN, OUTAGE_METRO, "voip")
        window = series[key][outage.start_bin - 12 : outage.end_bin + 12]
        healthy = np.mean(series[key][train_bins : outage.start_bin - 12])
        print("\nrequest volume (affected slice, '#' = 10% of normal):")
        for offset, value in enumerate(window):
            bars = int(round(value / healthy * 10))
            bin_index = outage.start_bin - 12 + offset
            flag = " <- outage" if outage.affects(key, bin_index) else ""
            print(f"  bin {bin_index:>4d} {'#' * bars}{flag}")

    assert len(events) == 1, "exactly one event expected"
    event = events[0]
    assert event.asn == OUTAGE_ASN
    assert event.metro == OUTAGE_METRO
    assert event.service is None, "event spans services (network-level)"
    # Duration recovered to within a couple of bins of the 2 hours.
    assert abs(event.duration_bins - outage.duration_bins) <= 2
    assert event.mean_drop_fraction > 0.7

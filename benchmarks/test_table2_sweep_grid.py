"""Table 2: range of the TCP Cubic-Phi parameter sweep.

Paper: initial_ssthresh 2-256 segments (x2), windowInit_ 2-256 segments
(x2), beta 0.1-0.9 (+0.1) — 576 grid points.
"""

import pytest
from bench_common import report, run_once

from repro.phi.optimizer import CUBIC_SWEEP_GRID
from repro.transport import cubic_sweep_grid


def test_table2_sweep_grid(benchmark, capfd):
    grid = run_once(benchmark, lambda: list(cubic_sweep_grid()))

    assert len(grid) == 576
    assert grid == CUBIC_SWEEP_GRID
    ssthreshes = sorted({p.initial_ssthresh for p in grid})
    window_inits = sorted({p.window_init for p in grid})
    betas = sorted({p.beta for p in grid})

    # Powers-of-two sweeps, per Table 2.
    assert ssthreshes == [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
    assert window_inits == ssthreshes
    assert betas == pytest.approx([0.1 * k for k in range(1, 10)])

    with report(capfd, "Table 2: Range of parameter sweep in TCP Cubic-Phi"):
        print(f"{'Parameter':<20s} {'Range':<22s} {'Increment':<10s}")
        print(f"{'initial_ssthresh':<20s} {'2 - 256 segments':<22s} {'x 2':<10s}")
        print(f"{'windowInit_':<20s} {'2 - 256 segments':<22s} {'x 2':<10s}")
        print(f"{'beta':<20s} {'0.1 - 0.9':<22s} {'+ 0.1':<10s}")
        print(f"grid points: {len(grid)}")

"""Section 3.5: performance prediction from pooled observations.

"Before an application downloads a file or makes a VoIP call ... it
would be able to obtain an indication of the expected performance."

The bench pools per-location observations (as a cloud provider would),
then measures download-time prediction error against held-out transfers
as the shared history grows, and exercises the call-quality surface on a
good and a bad location.
"""

import numpy as np
from bench_common import report, run_once, scaled

from repro.prediction import (
    ObservationStore,
    PerfObservation,
    PerformancePredictor,
)

LOCATION = ("isp-a", "nyc")
SIZE_BYTES = 25_000_000  # a 25 MB download


def _location_throughput(rng, n):
    # Log-normal Mbps: heterogeneous client links at the same location.
    return rng.lognormal(mean=np.log(8.0), sigma=0.5, size=n)


def _run():
    rng = np.random.default_rng(35)
    holdout = _location_throughput(rng, scaled(500, 5_000))
    true_times = SIZE_BYTES * 8.0 / (holdout * 1e6)

    rows = []
    for history_size in (5, 20, 100, 1_000):
        store = ObservationStore()
        for i, mbps in enumerate(_location_throughput(rng, history_size)):
            store.record(
                PerfObservation(LOCATION, float(i), float(mbps), 60.0, 0.001)
            )
        predictor = PerformancePredictor(store)
        prediction = predictor.predict_download_time(LOCATION, SIZE_BYTES)
        median_error = abs(
            prediction.expected_seconds - float(np.median(true_times))
        ) / float(np.median(true_times))
        p90_coverage = float(np.mean(true_times <= prediction.p90_seconds))
        rows.append((history_size, prediction, median_error, p90_coverage))

    # Call quality at a clean and a congested location.
    store = ObservationStore()
    for i in range(200):
        store.record(PerfObservation(("isp-good", "lon"), float(i), 20.0, 45.0, 0.0))
        store.record(
            PerfObservation(("isp-bad", "syd"), float(i), 1.0, 480.0, 0.06)
        )
    predictor = PerformancePredictor(store)
    good = predictor.predict_call_quality(("isp-good", "lon"))
    bad = predictor.predict_call_quality(("isp-bad", "syd"))
    return rows, good, bad


def test_sec35_performance_prediction(benchmark, capfd):
    rows, good, bad = run_once(benchmark, _run)

    with report(capfd, "Section 3.5: performance prediction accuracy"):
        print(f"download-time prediction for a {SIZE_BYTES // 1_000_000} MB file:")
        print(f"{'history':>8s} {'expected(s)':>12s} {'p90(s)':>8s} "
              f"{'median err':>11s} {'p90 coverage':>13s} {'confidence':>11s}")
        for history_size, prediction, error, coverage in rows:
            print(f"{history_size:>8d} {prediction.expected_seconds:>12.1f} "
                  f"{prediction.p90_seconds:>8.1f} {error:>11.1%} "
                  f"{coverage:>13.1%} {prediction.confidence.value:>11s}")
        print("\ncall-quality surface:")
        print(f"  good location: MOS {good.mos:.2f} "
              f"(acceptable={good.acceptable})")
        print(f"  bad  location: MOS {bad.mos:.2f} "
              f"(acceptable={bad.acceptable})")

    # With a large pool the median prediction error is small, and the
    # confidence grade rises with history (a tiny history can get lucky
    # on point error, so accuracy monotonicity is not asserted per-seed).
    errors = {h: e for h, _p, e, _c in rows}
    assert errors[1_000] < 0.15
    confidences = {h: p.confidence for h, p, _e, _c in rows}
    assert confidences[1_000].value == "high"
    assert confidences[5].value == "low"
    # The p90 bound actually covers ~90% of held-out transfers at scale.
    coverage_at_scale = [c for h, _p, _e, c in rows if h == 1_000][0]
    assert 0.80 <= coverage_at_scale <= 0.98
    # The user-facing surface separates good from bad locations.
    assert good.acceptable and not bad.acceptable

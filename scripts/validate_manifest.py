#!/usr/bin/env python3
"""Validate telemetry artifacts produced by a sweep or run.

Usage:
    python scripts/validate_manifest.py MANIFEST.json [TRACE.jsonl]

Checks the manifest against the repro-telemetry-manifest/1 schema,
optionally sanity-checks a JSONL trace (header line plus well-formed
records), prints a short summary, and exits nonzero on any problem —
the CI telemetry-smoke job gates on this.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.telemetry.manifest import (  # noqa: E402
    load_manifest,
    summarize_manifest,
    validate_manifest,
)


def check_trace(path: str) -> list:
    """Structural checks on a JSONL trace file; returns error strings."""
    errors = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return [f"{path}: empty trace file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"{path}: header is not JSON: {exc}"]
    if header.get("kind") != "header":
        errors.append(f"{path}: first line is not a trace header")
    for key in ("emitted", "evicted", "capacity"):
        if not isinstance(header.get(key), int):
            errors.append(f"{path}: header missing integer '{key}'")
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{number}: not JSON: {exc}")
            continue
        if "name" not in record or "kind" not in record:
            errors.append(f"{path}:{number}: record lacks name/kind")
        if "wall_time" not in record:
            errors.append(f"{path}:{number}: record lacks wall_time")
    expected = min(header.get("emitted", 0), header.get("capacity", 0))
    if isinstance(expected, int) and len(lines) - 1 != expected:
        errors.append(
            f"{path}: header promises {expected} record(s), found {len(lines) - 1}"
        )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("manifest", help="manifest.json to validate")
    parser.add_argument("trace", nargs="?", help="optional trace.jsonl to validate")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary on success"
    )
    args = parser.parse_args(argv)

    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"FAIL {args.manifest}: {exc}", file=sys.stderr)
        return 1
    errors = validate_manifest(manifest)
    if args.trace:
        errors += check_trace(args.trace)
    if errors:
        for error in errors:
            print(f"FAIL {error}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(summarize_manifest(manifest))
    print(f"OK {args.manifest}" + (f" + {args.trace}" if args.trace else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())

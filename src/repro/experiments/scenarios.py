"""Named experiment scenarios and convenience runners.

Encodes the paper's workload settings (Sections 2.2.1-2.2.4) as presets
and provides one-call runners for each arm of the evaluation: fixed-
parameter Cubic (sweep evaluator), Phi-coordinated Cubic in ideal and
practical modes, and partial deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..metrics.summary import RunMetrics
from ..phi.client import (
    SharingMode,
    phi_cubic_factory,
    plain_cubic_factory,
)
from ..phi.deployment import deployment_factories, split_stats
from ..phi.optimizer import Evaluator
from ..phi.policy import PolicyTable
from ..phi.server import ContextServer, IdealContextOracle
from ..metrics.summary import summarize_connections
from ..simnet.engine import WatchdogConfig
from ..simnet.topology import DumbbellConfig
from ..transport.cubic import CubicParams
from ..workload.onoff import OnOffConfig
from .dumbbell import (
    ExperimentEnv,
    ScenarioResult,
    run_long_running_scenario,
    run_onoff_scenario,
    uniform_slots,
)


@dataclass(frozen=True)
class ScenarioPreset:
    """A (topology, workload, duration) bundle from the paper."""

    name: str
    config: DumbbellConfig
    workload: Optional[OnOffConfig]
    duration_s: float
    description: str


#: Figure 2a: on/off Cubic senders at low bottleneck utilization
#: (mean connection length 500 KB, mean off 2 s).
FIG2A_LOW_UTILIZATION = ScenarioPreset(
    name="fig2a-low-utilization",
    config=DumbbellConfig(n_senders=8),
    workload=OnOffConfig(mean_on_bytes=500_000, mean_off_s=2.0),
    duration_s=60.0,
    description="Figure 2a: low link utilization, 500 KB / 2 s on-off",
)

#: Figure 2b: same workload shape, more senders -> high utilization.
FIG2B_HIGH_UTILIZATION = ScenarioPreset(
    name="fig2b-high-utilization",
    config=DumbbellConfig(n_senders=24),
    workload=OnOffConfig(mean_on_bytes=500_000, mean_off_s=2.0),
    duration_s=60.0,
    description="Figure 2b: high link utilization, 500 KB / 2 s on-off",
)

#: Figure 2c: long-running connections saturating the link (~99%).
#: The paper uses 100; the preset keeps the dynamics with a tractable
#: sender count (override n via the config for the full-scale run).
FIG2C_LONG_RUNNING = ScenarioPreset(
    name="fig2c-long-running",
    config=DumbbellConfig(n_senders=40),
    workload=None,
    duration_s=60.0,
    description="Figure 2c: persistent bulk flows, ~99% utilization",
)

#: Figure 4: incremental deployment at moderate utilization (the paper
#: notes the unmodified senders' benefit diminishes as utilization goes
#: higher, so the preset keeps the link out of saturation).
FIG4_INCREMENTAL = ScenarioPreset(
    name="fig4-incremental",
    config=DumbbellConfig(n_senders=10),
    workload=OnOffConfig(mean_on_bytes=500_000, mean_off_s=2.0),
    duration_s=60.0,
    description="Figure 4: half modified / half unmodified senders",
)

#: Table 3: "single bottleneck dumbbell topology with link speed 15 Mbps
#: and round-trip time 150 ms with 8 senders, each alternating between
#: flows of exponentially-distributed byte length (mean 100 KB) and
#: exponentially-distributed off time (mean 0.5 s)".
TABLE3_REMY = ScenarioPreset(
    name="table3-remy",
    config=DumbbellConfig(
        n_senders=8, bottleneck_bandwidth_bps=15e6, rtt_s=0.150
    ),
    workload=OnOffConfig(mean_on_bytes=100_000, mean_off_s=0.5),
    duration_s=60.0,
    description="Table 3: Remy comparison workload",
)

ALL_PRESETS = (
    FIG2A_LOW_UTILIZATION,
    FIG2B_HIGH_UTILIZATION,
    FIG2C_LONG_RUNNING,
    FIG4_INCREMENTAL,
    TABLE3_REMY,
)


# ----------------------------------------------------------------------
# Fixed-parameter Cubic (the sweep arm of Figures 2 and 3)
# ----------------------------------------------------------------------
def run_cubic_fixed(
    params: CubicParams,
    preset: ScenarioPreset,
    seed: int = 0,
    duration_s: Optional[float] = None,
    watchdog: Optional[WatchdogConfig] = None,
    checked: Optional[bool] = None,
    check_report=None,
    slot_order: Optional[Sequence[int]] = None,
    monitor_period_s: float = 0.1,
    profile: bool = False,
    fault_hook=None,
) -> ScenarioResult:
    """All senders run Cubic with one fixed parameter setting.

    This is the paper's "simplified setting, where ... all the TCP Cubic
    senders use the same parameter settings that is fixed for the
    duration of the run".  ``watchdog`` bounds the run's event/wall
    budgets (see :class:`~repro.simnet.engine.SimWatchdog`);
    ``checked``/``check_report``/``slot_order`` feed the simcheck
    invariant layer and oracles (see :mod:`repro.simcheck`).
    """
    slots = uniform_slots(lambda env: plain_cubic_factory(params))
    duration = duration_s if duration_s is not None else preset.duration_s
    if preset.workload is None:
        if slot_order is not None:
            raise ValueError("slot_order applies to on/off workloads only")
        return run_long_running_scenario(
            slots,
            config=preset.config,
            duration_s=duration,
            seed=seed,
            watchdog=watchdog,
            checked=checked,
            check_report=check_report,
            profile=profile,
            fault_hook=fault_hook,
        )
    return run_onoff_scenario(
        slots,
        config=preset.config,
        workload=preset.workload,
        duration_s=duration,
        seed=seed,
        watchdog=watchdog,
        checked=checked,
        check_report=check_report,
        slot_order=slot_order,
        monitor_period_s=monitor_period_s,
        profile=profile,
        fault_hook=fault_hook,
    )


def cubic_evaluator(
    preset: ScenarioPreset,
    base_seed: int = 0,
    duration_s: Optional[float] = None,
) -> Evaluator:
    """An :data:`~repro.phi.optimizer.Evaluator` for the Table-2 sweep.

    Run ``i`` of every parameter setting shares seed ``base_seed + i`` so
    the leave-one-out comparison sees identical workloads across settings.
    """

    def evaluate(params: CubicParams, run_index: int) -> RunMetrics:
        result = run_cubic_fixed(
            params, preset, seed=base_seed + run_index, duration_s=duration_s
        )
        return result.metrics

    return evaluate


# ----------------------------------------------------------------------
# Phi-coordinated Cubic
# ----------------------------------------------------------------------
def run_phi_cubic(
    policy: PolicyTable,
    preset: ScenarioPreset,
    mode: SharingMode = SharingMode.PRACTICAL,
    seed: int = 0,
    duration_s: Optional[float] = None,
    profile: bool = False,
) -> ScenarioResult:
    """All senders use Phi: context lookup at start, report at end.

    ``SharingMode.PRACTICAL`` routes lookups through a
    :class:`ContextServer` fed only by the minimal protocol;
    ``SharingMode.IDEAL`` gives senders ground truth from the link
    instrumentation.
    """
    if mode is SharingMode.NONE:
        raise ValueError("use run_cubic_fixed for the no-sharing baseline")

    def build(env: ExperimentEnv):
        if mode is SharingMode.IDEAL:
            source = IdealContextOracle(env.sim, env.monitor, env.flow_tracker)
        else:
            source = ContextServer(env.sim, env.bottleneck_capacity_bps)
        return phi_cubic_factory(source, policy, now=lambda: env.sim.now)

    duration = duration_s if duration_s is not None else preset.duration_s
    if preset.workload is None:
        return run_long_running_scenario(
            uniform_slots(build),
            config=preset.config,
            duration_s=duration,
            seed=seed,
            profile=profile,
        )
    return run_onoff_scenario(
        uniform_slots(build),
        config=preset.config,
        workload=preset.workload,
        duration_s=duration,
        seed=seed,
        profile=profile,
    )


# ----------------------------------------------------------------------
# Incremental deployment (Figure 4)
# ----------------------------------------------------------------------
@dataclass
class IncrementalResult:
    """Figure-4 outcome: overall plus per-population metrics."""

    overall: ScenarioResult
    modified: RunMetrics
    unmodified: RunMetrics
    modified_fraction: float


def run_incremental_deployment(
    optimal_params: CubicParams,
    preset: ScenarioPreset = FIG4_INCREMENTAL,
    modified_fraction: float = 0.5,
    seed: int = 0,
    duration_s: Optional[float] = None,
) -> IncrementalResult:
    """A fraction of senders adopt the coordinated-optimal parameters.

    Modified senders use ``optimal_params`` ("the parameter setting that
    would have been optimal had all senders been cooperating"); the rest
    keep the Table-1 defaults.
    """
    if preset.workload is None:
        raise ValueError("incremental deployment is defined on on/off workloads")
    n = preset.config.n_senders
    assignments = deployment_factories(
        n,
        modified_fraction,
        modified_factory=plain_cubic_factory(optimal_params),
        unmodified_factory=plain_cubic_factory(CubicParams.default()),
    )

    def for_slot(index: int, env: ExperimentEnv):
        return assignments[index].factory

    duration = duration_s if duration_s is not None else preset.duration_s
    overall = run_onoff_scenario(
        for_slot,
        config=preset.config,
        workload=preset.workload,
        duration_s=duration,
        seed=seed,
    )
    modified_stats, unmodified_stats = split_stats(
        assignments, overall.per_sender_stats
    )
    kwargs = dict(
        bottleneck_loss_rate=overall.bottleneck_drop_rate,
        mean_utilization=overall.mean_utilization,
    )
    return IncrementalResult(
        overall=overall,
        modified=summarize_connections(modified_stats, **kwargs),
        unmodified=summarize_connections(unmodified_stats, **kwargs),
        modified_fraction=modified_fraction,
    )

"""Experiment harness shared by tests, benchmarks, and examples."""

from .degraded import (
    DegradedRunResult,
    DegradedSweepRow,
    run_degraded_phi_cubic,
    schedule_unavailability,
    sweep_unavailability,
)
from .dumbbell import (
    ExperimentEnv,
    FactoryForSlot,
    ScenarioResult,
    run_long_running_scenario,
    run_onoff_scenario,
    uniform_slots,
)
from .scenarios import (
    ALL_PRESETS,
    FIG2A_LOW_UTILIZATION,
    FIG2B_HIGH_UTILIZATION,
    FIG2C_LONG_RUNNING,
    FIG4_INCREMENTAL,
    TABLE3_REMY,
    IncrementalResult,
    ScenarioPreset,
    cubic_evaluator,
    run_cubic_fixed,
    run_incremental_deployment,
    run_phi_cubic,
)
from .sweep import run_parameter_sweep, run_table2_sweep
from .table3 import (
    Table3Result,
    Table3Row,
    make_table_evaluator,
    run_remy_scenario,
    run_table3,
    train_tables,
)

__all__ = [
    "ALL_PRESETS",
    "FIG2A_LOW_UTILIZATION",
    "FIG2B_HIGH_UTILIZATION",
    "FIG2C_LONG_RUNNING",
    "FIG4_INCREMENTAL",
    "TABLE3_REMY",
    "DegradedRunResult",
    "DegradedSweepRow",
    "ExperimentEnv",
    "FactoryForSlot",
    "IncrementalResult",
    "ScenarioPreset",
    "ScenarioResult",
    "Table3Result",
    "Table3Row",
    "cubic_evaluator",
    "make_table_evaluator",
    "run_cubic_fixed",
    "run_degraded_phi_cubic",
    "schedule_unavailability",
    "sweep_unavailability",
    "run_incremental_deployment",
    "run_long_running_scenario",
    "run_onoff_scenario",
    "run_parameter_sweep",
    "run_phi_cubic",
    "run_remy_scenario",
    "run_table2_sweep",
    "run_table3",
    "train_tables",
    "uniform_slots",
]

"""The Table-3 harness: Cubic vs Remy vs Remy-Phi (ideal / practical).

Reproduces the paper's Section 2.2.4 comparison on the Table-3 topology:
"single bottleneck dumbbell topology with link speed 15 Mbps and
round-trip time 150 ms with 8 senders, each alternating between flows of
exponentially-distributed byte length (mean 100 KB) and exponentially-
distributed off time (mean 0.5 s)".

The two Remy variants are retrained here exactly as the paper describes:
the Phi variant's memory is extended "with an additional dimension
corresponding to the bottleneck link utilization, u", and "during
training, we allow each sender access to up-to-the-minute link
utilization".
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import List, Optional

from ..metrics.summary import RunMetrics
from ..phi.client import (
    SharingMode,
    phi_remy_factory,
    plain_cubic_factory,
    plain_remy_factory,
)
from ..phi.server import ContextServer, IdealContextOracle
from ..remy.trainer import RemyTrainer, TrainingResult
from ..remy.whisker import WhiskerTable
from ..transport.cubic import CubicParams
from .dumbbell import ExperimentEnv, ScenarioResult, run_onoff_scenario, uniform_slots
from .scenarios import TABLE3_REMY, ScenarioPreset


def run_remy_scenario(
    table: WhiskerTable,
    mode: SharingMode,
    preset: ScenarioPreset = TABLE3_REMY,
    seed: int = 0,
    duration_s: Optional[float] = None,
) -> ScenarioResult:
    """Run the Table-3 workload with Remy senders in the given mode."""

    def build(env: ExperimentEnv):
        if mode is SharingMode.NONE:
            return plain_remy_factory(table)
        if mode is SharingMode.IDEAL:
            oracle = IdealContextOracle(env.sim, env.monitor, env.flow_tracker)
            return phi_remy_factory(
                table,
                oracle,
                SharingMode.IDEAL,
                now=lambda: env.sim.now,
                live_utilization=oracle.utilization_provider(),
            )
        server = ContextServer(env.sim, env.bottleneck_capacity_bps)
        return phi_remy_factory(
            table, server, SharingMode.PRACTICAL, now=lambda: env.sim.now
        )

    return run_onoff_scenario(
        uniform_slots(build),
        config=preset.config,
        workload=preset.workload,
        duration_s=duration_s if duration_s is not None else preset.duration_s,
        seed=seed,
    )


def make_table_evaluator(
    mode: SharingMode,
    preset: ScenarioPreset = TABLE3_REMY,
    *,
    duration_s: float = 30.0,
    seeds: tuple = (0, 1),
) -> callable:
    """Training objective: median log(P) over a few seeded runs.

    Classic Remy trains with ``SharingMode.NONE``; Remy-Phi trains with
    ``SharingMode.IDEAL`` (up-to-the-minute utilization), per the paper.
    """

    def evaluate(table: WhiskerTable) -> float:
        scores = []
        for seed in seeds:
            result = run_remy_scenario(
                table, mode, preset, seed=seed, duration_s=duration_s
            )
            scores.append(result.metrics.log_power)
        return median(scores)

    return evaluate


@dataclass
class Table3Row:
    """One row of Table 3."""

    algorithm: str
    median_throughput_mbps: float
    median_queueing_delay_ms: float
    median_objective: float

    def format(self) -> str:
        """Paper-shaped row: throughput (Mbps), delay (ms), objective."""
        return (
            f"{self.algorithm:<22s} {self.median_throughput_mbps:>10.2f} "
            f"{self.median_queueing_delay_ms:>12.1f} {self.median_objective:>10.2f}"
        )


@dataclass
class Table3Result:
    """The full table plus the trained artifacts."""

    rows: List[Table3Row]
    remy_training: Optional[TrainingResult] = None
    phi_training: Optional[TrainingResult] = None

    def row(self, algorithm: str) -> Table3Row:
        """Row lookup by algorithm name."""
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(algorithm)

    def format(self) -> str:
        """Render the whole table, ordered as in the paper."""
        header = (
            f"{'Algorithm':<22s} {'thr(Mbps)':>10s} {'delay(ms)':>12s} "
            f"{'objective':>10s}"
        )
        return "\n".join([header] + [row.format() for row in self.rows])


def train_tables(
    *,
    budget: int = 40,
    max_splits: int = 0,
    duration_s: float = 20.0,
    preset: ScenarioPreset = TABLE3_REMY,
) -> tuple:
    """Train the classic and Phi whisker tables (deterministic).

    Returns ``(remy_result, phi_result)``.  The Phi table partitions on
    the extra ``util`` dimension and trains against ideal sharing.
    """
    remy_trainer = RemyTrainer(
        make_table_evaluator(SharingMode.NONE, preset, duration_s=duration_s),
        WhiskerTable.CLASSIC_DIMENSIONS,
        max_evaluations=budget,
        max_splits=max_splits,
    )
    remy_result = remy_trainer.train()

    phi_trainer = RemyTrainer(
        make_table_evaluator(SharingMode.IDEAL, preset, duration_s=duration_s),
        WhiskerTable.PHI_DIMENSIONS,
        max_evaluations=budget,
        max_splits=max_splits,
        # Start from the classic winner's geometry-free equivalent: a fresh
        # phi-dimensional table whose root action is the classic root's.
        initial_table=_seed_phi_table(remy_result.table),
    )
    phi_result = phi_trainer.train()
    return remy_result, phi_result


def _seed_phi_table(classic: WhiskerTable) -> WhiskerTable:
    """A util-partitioned table seeded with the classic root action.

    Pre-splitting along ``util`` gives the trainer distinct whiskers per
    shared-utilization band — the mechanism by which Remy-Phi conditions
    its response on the network weather — at a fraction of the budget a
    full 2^d whisker split would cost.
    """
    return WhiskerTable.partitioned(
        WhiskerTable.PHI_DIMENSIONS,
        "util",
        n_parts=2,
        action=classic.whiskers[0].action,
    )


def run_table3(
    remy_table: WhiskerTable,
    phi_table: WhiskerTable,
    *,
    preset: ScenarioPreset = TABLE3_REMY,
    n_runs: int = 4,
    duration_s: Optional[float] = None,
    cubic_params: Optional[CubicParams] = None,
) -> Table3Result:
    """Evaluate all four Table-3 algorithms over ``n_runs`` seeds."""
    arms = [
        ("Remy-Phi-practical", lambda seed: run_remy_scenario(
            phi_table, SharingMode.PRACTICAL, preset, seed, duration_s
        )),
        ("Remy-Phi-ideal", lambda seed: run_remy_scenario(
            phi_table, SharingMode.IDEAL, preset, seed, duration_s
        )),
        ("Remy", lambda seed: run_remy_scenario(
            remy_table, SharingMode.NONE, preset, seed, duration_s
        )),
        ("Cubic", lambda seed: _run_cubic(preset, seed, duration_s, cubic_params)),
    ]
    rows = []
    for name, runner in arms:
        metrics: List[RunMetrics] = [runner(seed).metrics for seed in range(n_runs)]
        rows.append(
            Table3Row(
                algorithm=name,
                median_throughput_mbps=median(m.throughput_mbps for m in metrics),
                median_queueing_delay_ms=median(m.queueing_delay_ms for m in metrics),
                median_objective=median(m.log_power for m in metrics),
            )
        )
    return Table3Result(rows=rows)


def _run_cubic(preset, seed, duration_s, params):
    slots = uniform_slots(
        lambda env: plain_cubic_factory(params or CubicParams.default())
    )
    return run_onoff_scenario(
        slots,
        config=preset.config,
        workload=preset.workload,
        duration_s=duration_s if duration_s is not None else preset.duration_s,
        seed=seed,
    )

"""Byzantine-context experiments: Phi when the control plane *lies*.

PR 2/4 degraded the control plane's *availability*; this experiment
degrades its *truthfulness* — the X6 sweep.  Two orthogonal axes:

- **severity**: the probability each context lookup is corrupted
  (:mod:`repro.phi.corruption` modes — bit flips, unit errors, frozen
  and replayed snapshots, adversarial deflation);
- **byzantine fraction**: the probability each end-of-connection report
  is poisoned by a lying sender.

Each (severity, fraction) point runs the full resilient stack.  In the
**guarded** configuration the stack fights back on three layers — a
server-side :class:`~repro.phi.server.RobustAggregationConfig`, a
client-side :class:`~repro.phi.guard.ContextGuard`, and outcome-driven
:class:`~repro.phi.trust.TrustTracker` distrust — and the claim under
test is the *safety envelope*: mean power and mean throughput never
drop materially below the uncoordinated Cubic baseline, because every
defeated lie lands the sender on stock defaults.  The **unguarded**
configuration strips all three layers and demonstrates why they exist.

A calibration note on where the harm shows up.  Stock Cubic's default
``ssthresh`` (65536) floods the bottleneck queue, so in *power* terms
(throughput over queueing delay) stock is the worst configuration in
the policy table's neighbourhood — no context lie can steer tuned
Cubic below the stock power baseline.  The damage surfaces on the
**throughput** axis instead: self-consistent *inflation* lies ("the
network is jammed, back way off") sail past every static guard check,
put the whole population on SEVERE parameters, and collapse throughput
on a lightly loaded network to ~0.6x baseline.  Only the outcome-driven
trust layer catches that lie — predicted SEVERE against observed LOW
— which is exactly the layering argument this experiment exists to
make.

Corruption randomness comes from per-point seeded streams
(``context-corruption`` / ``byzantine-reports``), so a point's poison
trace is a pure function of its seed and serial and parallel sweeps
are bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry as _telemetry
from ..metrics.summary import RunMetrics, summarize_runs
from ..phi.channel import ChannelConfig, ControlChannel
from ..phi.corruption import (
    DEFAULT_MODES,
    ByzantineReporter,
    CorruptionLayer,
    make_context_corruptor,
)
from ..phi.fallback import ResilientContextClient, resilient_phi_cubic_factory
from ..phi.guard import ContextGuard, GuardConfig
from ..phi.policy import PolicyTable
from ..phi.server import ContextServer, RobustAggregationConfig
from ..phi.trust import TrustTracker
from ..runner.core import _pool_context
from ..runner.resilience import ExecutionReport, ResilienceConfig, SweepSupervisor
from ..telemetry.registry import merge_snapshots
from .dumbbell import (
    ExperimentEnv,
    ScenarioResult,
    run_long_running_scenario,
    run_onoff_scenario,
    uniform_slots,
)
from .scenarios import ScenarioPreset, run_cubic_fixed
from ..transport.cubic import CubicParams


@dataclass
class PoisonRunResult:
    """One poisoned run plus every defence layer's own accounting."""

    result: ScenarioResult
    severity: float
    byzantine_fraction: float
    guarded: bool
    decision_counts: Dict[str, int]
    guard_rejections: Dict[str, int]
    reports_rejected: int
    contexts_corrupted: int
    reports_poisoned: int
    trust_score: float
    distrust_entries: int
    trust_restorations: int

    @property
    def metrics(self) -> RunMetrics:
        """The run's aggregate transport metrics."""
        return self.result.metrics


def run_poisoned_phi_cubic(
    policy: PolicyTable,
    preset: ScenarioPreset,
    *,
    severity: float,
    byzantine_fraction: float = 0.0,
    seed: int = 0,
    modes: Sequence[str] = DEFAULT_MODES,
    guarded: bool = True,
    duration_s: Optional[float] = None,
    staleness_ttl_s: float = 10.0,
    channel_config: Optional[ChannelConfig] = None,
    robust: Optional[RobustAggregationConfig] = None,
    guard_config: Optional[GuardConfig] = None,
    trust: Optional[TrustTracker] = None,
    fallback_params: Optional[CubicParams] = None,
) -> PoisonRunResult:
    """Phi-coordinated Cubic behind a lying control plane.

    ``severity`` is the per-lookup corruption probability,
    ``byzantine_fraction`` the per-report poisoning probability.  With
    ``guarded=True`` (the default) the full defence stack is armed:
    robust server aggregation, a capacity-aware :class:`ContextGuard`,
    and a :class:`TrustTracker` gating the DISTRUSTED decision.  With
    ``guarded=False`` the stack trusts everything it hears — the
    ablation showing why the defences exist.  ``robust``,
    ``guard_config``, and ``trust`` override individual layers of the
    guarded stack.
    """
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1]: {severity}")
    if not 0.0 <= byzantine_fraction <= 1.0:
        raise ValueError(
            f"byzantine_fraction must be in [0, 1]: {byzantine_fraction}"
        )
    duration = duration_s if duration_s is not None else preset.duration_s
    holders: dict = {}

    def build(env: ExperimentEnv):
        server = ContextServer(
            env.sim,
            env.bottleneck_capacity_bps,
            robust=(robust or RobustAggregationConfig()) if guarded else robust,
        )
        corruptor = (
            make_context_corruptor(
                modes, env.rngs.stream("context-corruption"), severity
            )
            if severity > 0
            else None
        )
        reporter = (
            ByzantineReporter(
                env.rngs.stream("byzantine-reports"), byzantine_fraction
            )
            if byzantine_fraction > 0
            else None
        )
        layer = CorruptionLayer(
            context_corruptor=corruptor, report_corruptor=reporter
        )
        channel = ControlChannel(
            env.sim,
            server,
            config=channel_config or ChannelConfig(),
            corruption=layer,
        )
        guard = trust_tracker = None
        if guarded:
            guard = ContextGuard(
                guard_config
                or GuardConfig(capacity_mbps=env.bottleneck_capacity_bps / 1e6),
                now=lambda: env.sim.now,
            )
            trust_tracker = trust or TrustTracker()
        client = ResilientContextClient(
            channel,
            now=lambda: env.sim.now,
            staleness_ttl_s=staleness_ttl_s,
            guard=guard,
            trust=trust_tracker,
        )
        holders.update(
            server=server, layer=layer, client=client,
            guard=guard, trust=trust_tracker,
        )
        return resilient_phi_cubic_factory(
            client, policy, now=lambda: env.sim.now,
            fallback_params=fallback_params,
        )

    if preset.workload is None:
        result = run_long_running_scenario(
            uniform_slots(build),
            config=preset.config,
            duration_s=duration,
            seed=seed,
        )
    else:
        result = run_onoff_scenario(
            uniform_slots(build),
            config=preset.config,
            workload=preset.workload,
            duration_s=duration,
            seed=seed,
        )
    client: ResilientContextClient = holders["client"]
    server: ContextServer = holders["server"]
    layer: CorruptionLayer = holders["layer"]
    guard: Optional[ContextGuard] = holders["guard"]
    tracker: Optional[TrustTracker] = holders["trust"]
    return PoisonRunResult(
        result=result,
        severity=severity,
        byzantine_fraction=byzantine_fraction,
        guarded=guarded,
        decision_counts=client.decision_counts(),
        guard_rejections=guard.rejection_counts() if guard else {},
        reports_rejected=server.reports_rejected,
        contexts_corrupted=layer.contexts_corrupted,
        reports_poisoned=layer.reports_poisoned,
        trust_score=tracker.score if tracker else 1.0,
        distrust_entries=tracker.distrust_entries if tracker else 0,
        trust_restorations=tracker.restorations if tracker else 0,
    )


# ----------------------------------------------------------------------
# The X6 sweep: severity x byzantine fraction, supervised and resumable
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoisonPoint:
    """One (severity, byzantine fraction, seed) evaluation."""

    severity: float
    byzantine_fraction: float
    seed: int


@dataclass(frozen=True)
class PoisonSpec:
    """Everything a worker needs to evaluate a :class:`PoisonPoint`.

    Must stay picklable (crosses the process boundary).
    """

    preset: ScenarioPreset
    policy: PolicyTable
    modes: Tuple[str, ...] = DEFAULT_MODES
    guarded: bool = True
    duration_s: Optional[float] = None
    staleness_ttl_s: float = 10.0
    collect_telemetry: bool = False


@dataclass
class PoisonPointResult:
    """One poisoned point's outcome, by-value across the pool boundary."""

    severity: float
    byzantine_fraction: float
    seed: int
    guarded: bool
    metrics: RunMetrics
    decision_counts: Dict[str, int]
    guard_rejections: Dict[str, int]
    reports_rejected: int
    contexts_corrupted: int
    reports_poisoned: int
    trust_score: float
    distrust_entries: int
    events_processed: int
    wall_seconds: float
    #: Observability sidecar (see PointResult.telemetry): excluded from
    #: determinism comparisons.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def identical_to(self, other: "PoisonPointResult") -> bool:
        """Bit-identical simulation outcome (wall time excluded)."""
        return (
            self.severity == other.severity
            and self.byzantine_fraction == other.byzantine_fraction
            and self.seed == other.seed
            and self.guarded == other.guarded
            and self.metrics == other.metrics
            and self.decision_counts == other.decision_counts
            and self.guard_rejections == other.guard_rejections
            and self.reports_rejected == other.reports_rejected
            and self.contexts_corrupted == other.contexts_corrupted
            and self.reports_poisoned == other.reports_poisoned
            and self.trust_score == other.trust_score
            and self.distrust_entries == other.distrust_entries
            and self.events_processed == other.events_processed
        )


def evaluate_poison_point(spec: PoisonSpec, point: PoisonPoint) -> PoisonPointResult:
    """Worker entry point; a pure function of ``(spec, point)``.

    Module-level so pool workers can unpickle it; all randomness comes
    from the run's seeded streams.
    """
    started = time.perf_counter()
    snapshot: Optional[Dict[str, Any]] = None
    kwargs = dict(
        severity=point.severity,
        byzantine_fraction=point.byzantine_fraction,
        seed=point.seed,
        modes=spec.modes,
        guarded=spec.guarded,
        duration_s=spec.duration_s,
        staleness_ttl_s=spec.staleness_ttl_s,
    )
    if spec.collect_telemetry:
        with _telemetry.use() as tele:
            run = run_poisoned_phi_cubic(spec.policy, spec.preset, **kwargs)
            snapshot = tele.registry.snapshot()
    else:
        run = run_poisoned_phi_cubic(spec.policy, spec.preset, **kwargs)
    wall = time.perf_counter() - started
    return PoisonPointResult(
        severity=point.severity,
        byzantine_fraction=point.byzantine_fraction,
        seed=point.seed,
        guarded=spec.guarded,
        metrics=run.metrics,
        decision_counts=run.decision_counts,
        guard_rejections=run.guard_rejections,
        reports_rejected=run.reports_rejected,
        contexts_corrupted=run.contexts_corrupted,
        reports_poisoned=run.reports_poisoned,
        trust_score=run.trust_score,
        distrust_entries=run.distrust_entries,
        events_processed=run.result.events_processed,
        wall_seconds=wall,
        telemetry=snapshot,
    )


@dataclass
class PoisonSweepRow:
    """One (severity, byzantine fraction) cell aggregated across seeds."""

    severity: float
    byzantine_fraction: float
    mean_power_l: float
    mean_throughput_mbps: float
    mean_delay_ms: float
    baseline_power_l: float
    baseline_throughput_mbps: float
    decision_counts: Dict[str, int]
    guard_rejections: Dict[str, int]
    reports_rejected: int
    mean_trust_score: float
    distrust_entries: int

    @property
    def power_vs_baseline(self) -> float:
        """Mean power relative to uncoordinated Cubic (1.0 = parity)."""
        return _ratio(self.mean_power_l, self.baseline_power_l)

    @property
    def throughput_vs_baseline(self) -> float:
        """Mean throughput relative to uncoordinated Cubic."""
        return _ratio(self.mean_throughput_mbps, self.baseline_throughput_mbps)


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0:
        return float("inf") if value > 0 else 1.0
    return value / baseline


@dataclass
class PoisonSweepOutcome:
    """Everything one X6 sweep produced."""

    spec: PoisonSpec
    rows: List[PoisonSweepRow]
    results: List[PoisonPointResult]
    baseline_by_seed: Dict[int, RunMetrics]
    report: ExecutionReport
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def baseline_power_by_seed(self) -> Dict[int, float]:
        return {s: m.power_l for s, m in self.baseline_by_seed.items()}


def run_poison_sweep(
    policy: PolicyTable,
    preset: ScenarioPreset,
    severities: Sequence[float],
    byzantine_fractions: Sequence[float] = (0.0,),
    *,
    seeds: Sequence[int] = (0, 1),
    modes: Sequence[str] = DEFAULT_MODES,
    guarded: bool = True,
    duration_s: Optional[float] = None,
    staleness_ttl_s: float = 10.0,
    n_workers: int = 1,
    parallel: bool = True,
    resilience: Optional[ResilienceConfig] = None,
    collect_telemetry: Optional[bool] = None,
) -> PoisonSweepOutcome:
    """Sweep corruption severity x Byzantine fraction across seeds.

    Baseline runs (stock Cubic, same preset and seeds) anchor every
    row's ``power_vs_baseline``.  Points are evaluated through the
    :class:`SweepSupervisor` — in a worker pool when ``parallel`` and
    ``n_workers > 1``, else serially — and merged by index, so the two
    paths produce bit-identical outcomes (`identical_to`).
    """
    tele = _telemetry.session()
    collect = tele.enabled if collect_telemetry is None else collect_telemetry
    spec = PoisonSpec(
        preset=preset,
        policy=policy,
        modes=tuple(modes),
        guarded=guarded,
        duration_s=duration_s,
        staleness_ttl_s=staleness_ttl_s,
        collect_telemetry=collect,
    )
    points = [
        PoisonPoint(severity, fraction, seed)
        for severity in severities
        for fraction in byzantine_fractions
        for seed in seeds
    ]
    results: List[Optional[PoisonPointResult]] = [None] * len(points)

    def deliver(index: int, result: PoisonPointResult) -> None:
        results[index] = result

    supervisor = SweepSupervisor(
        spec,
        evaluate_poison_point,
        config=resilience or ResilienceConfig(),
        n_workers=max(1, n_workers),
        mp_context=_pool_context(),
    )
    pending = list(enumerate(points))
    if parallel and n_workers > 1:
        report = supervisor.execute_pool(pending, deliver)
    else:
        report = supervisor.execute_serial(pending, deliver)
    completed = [result for result in results if result is not None]

    # Uncoordinated Cubic baseline, one run per seed (same preset,
    # workload, and duration as every poisoned point).
    baseline_by_seed = {
        seed: run_cubic_fixed(
            CubicParams.default(), preset, seed=seed, duration_s=duration_s
        ).metrics
        for seed in seeds
    }
    n_base = max(1, len(baseline_by_seed))
    baseline_power = sum(m.power_l for m in baseline_by_seed.values()) / n_base
    baseline_tput = (
        sum(m.throughput_mbps for m in baseline_by_seed.values()) / n_base
    )

    rows: List[PoisonSweepRow] = []
    for severity in severities:
        for fraction in byzantine_fractions:
            cell = [
                r for r in completed
                if r.severity == severity and r.byzantine_fraction == fraction
            ]
            if not cell:
                continue
            decisions: Dict[str, int] = {}
            rejections: Dict[str, int] = {}
            for run in cell:
                for key, count in run.decision_counts.items():
                    decisions[key] = decisions.get(key, 0) + count
                for key, count in run.guard_rejections.items():
                    rejections[key] = rejections.get(key, 0) + count
            aggregate = summarize_runs([run.metrics for run in cell])
            rows.append(
                PoisonSweepRow(
                    severity=severity,
                    byzantine_fraction=fraction,
                    mean_power_l=aggregate.mean_power_l,
                    mean_throughput_mbps=aggregate.mean_throughput_mbps,
                    mean_delay_ms=aggregate.mean_queueing_delay_ms,
                    baseline_power_l=baseline_power,
                    baseline_throughput_mbps=baseline_tput,
                    decision_counts=decisions,
                    guard_rejections=rejections,
                    reports_rejected=sum(r.reports_rejected for r in cell),
                    mean_trust_score=sum(r.trust_score for r in cell) / len(cell),
                    distrust_entries=sum(r.distrust_entries for r in cell),
                )
            )

    merged_telemetry: Optional[Dict[str, Any]] = None
    if collect:
        merged_telemetry = merge_snapshots(
            result.telemetry for result in completed
            if result.telemetry is not None
        )
    return PoisonSweepOutcome(
        spec=spec,
        rows=rows,
        results=completed,
        baseline_by_seed=baseline_by_seed,
        report=report,
        telemetry=merged_telemetry,
    )


def check_safety_envelope(
    outcome: PoisonSweepOutcome, *, rel_tol: float = 0.05
) -> List[str]:
    """Violations of "never materially worse than uncoordinated Cubic".

    Every row must stay within ``rel_tol`` of the baseline floor on
    *both* axes a lie can attack: ``mean_power_l >= (1 - rel_tol) *
    baseline_power`` (deflation lies overload the queue) and
    ``mean_throughput_mbps >= (1 - rel_tol) * baseline_throughput``
    (inflation lies starve the senders).  Returns a human-readable
    violation per failing row (empty means the envelope holds).  Only
    meaningful for guarded sweeps — an unguarded sweep is *expected* to
    violate it (see :func:`check_harm_demonstrated`).
    """
    violations: List[str] = []
    for row in outcome.rows:
        cell = f"severity={row.severity:g} byzantine={row.byzantine_fraction:g}"
        power_floor = (1.0 - rel_tol) * row.baseline_power_l
        if row.mean_power_l < power_floor:
            violations.append(
                f"{cell}: power {row.mean_power_l:.4f} < floor "
                f"{power_floor:.4f} (baseline {row.baseline_power_l:.4f})"
            )
        tput_floor = (1.0 - rel_tol) * row.baseline_throughput_mbps
        if row.mean_throughput_mbps < tput_floor:
            violations.append(
                f"{cell}: throughput {row.mean_throughput_mbps:.3f} Mbps < "
                f"floor {tput_floor:.3f} "
                f"(baseline {row.baseline_throughput_mbps:.3f})"
            )
    return violations


def check_harm_demonstrated(
    outcome: PoisonSweepOutcome, *, rel_tol: float = 0.05
) -> bool:
    """Whether any row fell materially below a baseline floor.

    The complement of :func:`check_safety_envelope`: an unguarded sweep
    proves the defences are load-bearing only if corruption actually
    hurts somewhere — in practice on the throughput axis (see the
    module docstring for why power alone cannot show it).
    """
    return bool(check_safety_envelope(outcome, rel_tol=rel_tol))

"""Degraded-control-plane experiments: Phi under context-server chaos.

The robustness analogue of the Figure 4 staleness ablation: instead of
asking "how much does coordination help?", these runners ask "how much
of the help survives when the coordination channel itself is slow,
lossy, or partitioned?".  Senders go through the full resilient stack —
:class:`~repro.phi.channel.ControlChannel` (latency/loss/outages,
timeouts, retries, circuit breaker) wrapped by a
:class:`~repro.phi.fallback.ResilientContextClient` (staleness TTL,
default-parameter fallback, report recovery queue) — so a sweep over
server unavailability traces the graceful-degradation curve between
Phi-practical (0% down) and the uncoordinated baseline (100% down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.summary import RunMetrics, summarize_runs
from ..phi.channel import (
    ChannelConfig,
    ChannelStats,
    CircuitBreaker,
    ControlChannel,
)
from ..phi.fallback import ResilientContextClient, resilient_phi_cubic_factory
from ..phi.policy import PolicyTable
from ..phi.server import ContextServer
from ..transport.cubic import CubicParams
from .dumbbell import (
    ExperimentEnv,
    ScenarioResult,
    run_long_running_scenario,
    run_onoff_scenario,
    uniform_slots,
)
from .scenarios import ScenarioPreset


def schedule_unavailability(
    channel: ControlChannel,
    *,
    fraction: float,
    duration_s: float,
    period_s: float = 5.0,
) -> None:
    """Spread outage windows covering ``fraction`` of ``[0, duration_s]``.

    The run is cut into ``period_s`` periods; the server is down for the
    first ``fraction`` of each, so unavailability is evenly distributed
    rather than one lump (senders see repeated partitions, exercising
    cache staleness and recovery every period).  ``fraction == 1`` is one
    outage covering the whole run.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    if period_s <= 0:
        raise ValueError(f"period_s must be positive: {period_s}")
    if fraction == 0.0:
        return
    if fraction >= 1.0:
        channel.add_outage(0.0, duration_s)
        return
    start = 0.0
    while start < duration_s:
        window = min(period_s, duration_s - start)
        down = fraction * window
        if down > 0:
            channel.add_outage(start, down)
        start += period_s


@dataclass
class DegradedRunResult:
    """One degraded run plus the control plane's own accounting."""

    result: ScenarioResult
    unavailability: float
    decision_counts: Dict[str, int]
    channel_stats: ChannelStats
    pending_reports: int
    leases_expired: int

    @property
    def metrics(self) -> RunMetrics:
        """The run's aggregate transport metrics."""
        return self.result.metrics


def run_degraded_phi_cubic(
    policy: PolicyTable,
    preset: ScenarioPreset,
    *,
    unavailability: float,
    seed: int = 0,
    duration_s: Optional[float] = None,
    staleness_ttl_s: float = 10.0,
    channel_config: Optional[ChannelConfig] = None,
    outage_period_s: float = 5.0,
    lease_ttl_s: Optional[float] = 60.0,
    fallback_params: Optional[CubicParams] = None,
    breaker_failure_threshold: int = 5,
    breaker_reset_s: float = 1.0,
) -> DegradedRunResult:
    """Phi-coordinated Cubic behind a failing control plane.

    All senders share one :class:`ContextServer` reached through one
    :class:`ControlChannel` with ``unavailability`` of the run's duration
    spent in scheduled outages, and degrade via a
    :class:`ResilientContextClient`.  With ``unavailability=0`` and a
    loss-free channel this is exactly ``run_phi_cubic`` (practical
    mode); with ``unavailability=1`` every connection falls back to
    ``fallback_params`` (stock Cubic by default), i.e. the uncoordinated
    baseline.
    """
    duration = duration_s if duration_s is not None else preset.duration_s
    holders: dict = {}

    def build(env: ExperimentEnv):
        server = ContextServer(
            env.sim, env.bottleneck_capacity_bps, lease_ttl_s=lease_ttl_s
        )
        cfg = channel_config or ChannelConfig()
        needs_rng = (
            cfg.loss_probability > 0 or cfg.jitter_s > 0 or cfg.backoff_jitter > 0
        )
        channel = ControlChannel(
            env.sim,
            server,
            config=cfg,
            rng=env.rngs.stream("control-channel") if needs_rng else None,
            # A breaker whose cool-down dwarfs the outage cadence would
            # stay open through entire recovery windows; keep the reset
            # short relative to the injected outage period.
            breaker=CircuitBreaker(
                lambda: env.sim.now,
                failure_threshold=breaker_failure_threshold,
                reset_timeout_s=breaker_reset_s,
            ),
        )
        schedule_unavailability(
            channel,
            fraction=unavailability,
            duration_s=duration,
            period_s=outage_period_s,
        )
        client = ResilientContextClient(
            channel, now=lambda: env.sim.now, staleness_ttl_s=staleness_ttl_s
        )
        holders.update(server=server, channel=channel, client=client)
        return resilient_phi_cubic_factory(
            client, policy, now=lambda: env.sim.now, fallback_params=fallback_params
        )

    if preset.workload is None:
        result = run_long_running_scenario(
            uniform_slots(build),
            config=preset.config,
            duration_s=duration,
            seed=seed,
        )
    else:
        result = run_onoff_scenario(
            uniform_slots(build),
            config=preset.config,
            workload=preset.workload,
            duration_s=duration,
            seed=seed,
        )
    client: ResilientContextClient = holders["client"]
    channel: ControlChannel = holders["channel"]
    server: ContextServer = holders["server"]
    return DegradedRunResult(
        result=result,
        unavailability=unavailability,
        decision_counts=client.decision_counts(),
        channel_stats=channel.stats,
        pending_reports=client.pending_reports,
        leases_expired=server.leases_expired,
    )


@dataclass
class DegradedSweepRow:
    """Aggregated outcome of one unavailability fraction across seeds."""

    unavailability: float
    mean_power_l: float
    mean_throughput_mbps: float
    mean_delay_ms: float
    decision_counts: Dict[str, int]


def sweep_unavailability(
    policy: PolicyTable,
    preset: ScenarioPreset,
    fractions: Sequence[float],
    *,
    seeds: Sequence[int] = (0, 1),
    duration_s: Optional[float] = None,
    **kwargs,
) -> List[DegradedSweepRow]:
    """The graceful-degradation curve: power vs. server unavailability.

    Extra keyword arguments pass through to :func:`run_degraded_phi_cubic`.
    """
    rows: List[DegradedSweepRow] = []
    for fraction in fractions:
        runs = [
            run_degraded_phi_cubic(
                policy,
                preset,
                unavailability=fraction,
                seed=seed,
                duration_s=duration_s,
                **kwargs,
            )
            for seed in seeds
        ]
        decisions: Dict[str, int] = {}
        for run in runs:
            for key, count in run.decision_counts.items():
                decisions[key] = decisions.get(key, 0) + count
        aggregate = summarize_runs([run.metrics for run in runs])
        rows.append(
            DegradedSweepRow(
                unavailability=fraction,
                mean_power_l=aggregate.mean_power_l,
                mean_throughput_mbps=aggregate.mean_throughput_mbps,
                mean_delay_ms=aggregate.mean_queueing_delay_ms,
                decision_counts=decisions,
            )
        )
    return rows

"""Partitioned-control-plane experiments: Phi on a replicated plane.

PR 1 asked "what if the one context server fails?" (X4) and PR 7 asked
"what if it lies?" (X6).  This module asks the remaining question — the
X7 sweep: **what if the control plane is replicated and the network
partitions it?**  Senders run the full stack:

    sender → ResilientContextClient → FailoverChannel
           → per-replica ControlChannel → ReplicaHandle → ContextServer

with a :class:`~repro.simnet.faults.Partition` fault severing, for a
window, both the sender↔replica channels of a *cut* replica subset and
the replica↔replica anti-entropy edges across the cut.  The cut always
contains the clients' initially-sticky replica (replica 0), so minority
partitions genuinely exercise failover rather than hitting replicas
nobody talks to.

The claim under test mirrors X6's safety envelope, on both axes:

- with ≥ 2 replicas, any single-replica crash or **minority** partition
  keeps mean power and throughput at or above the single-server-outage
  degraded baseline (the PR 1 stack losing its only server for the same
  window) — replication turns an outage into a non-event;
- **no** partition severity, up to losing every replica, drops a run
  below the uncoordinated stock-Cubic floor — the same "coordination is
  pure upside" anchor X4 established.

The degraded baseline is produced by this very machinery at
``n_replicas=1, severity=1`` (one replica, fully cut for the same
window): structurally the PR 1 single-server outage, through an
identical code path, so the comparison isolates exactly the value of
replication.  The replication oracle
(:mod:`repro.simcheck.oracles`) separately pins that the N=1 stack is
bit-identical to the plain single-server stack.

A calibration caveat on the degraded floor: it is only a meaningful
bar when ``partition_start_s`` is past the context warm-up (at least
the staleness TTL into the run).  Freeze the cache *earlier* and the
degraded baseline coasts on an optimistic warm-up snapshot — low
estimated utilization, aggressive parameters — and can transiently
beat even the healthy plane, which says something about stale context,
not about replication.  The defaults (start 10 s, TTL 10 s) respect
this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry as _telemetry
from ..metrics.summary import RunMetrics, summarize_runs
from ..phi.channel import ChannelConfig, CircuitBreaker, ControlChannel
from ..phi.deployment import DeploymentMode
from ..phi.failover import FailoverChannel, FailoverConfig
from ..phi.fallback import ResilientContextClient, resilient_phi_cubic_factory
from ..phi.policy import PolicyTable
from ..phi.replication import (
    ReadPolicy,
    ReplicatedContextService,
    ReplicationConfig,
)
from ..runner.core import _pool_context
from ..runner.resilience import ExecutionReport, ResilienceConfig, SweepSupervisor
from ..simnet.faults import FaultInjector
from ..telemetry.registry import merge_snapshots
from ..transport.cubic import CubicParams
from .dumbbell import (
    ExperimentEnv,
    ScenarioResult,
    run_long_running_scenario,
    run_onoff_scenario,
    uniform_slots,
)
from .scenarios import ScenarioPreset, run_cubic_fixed


def partition_indices(n_replicas: int, severity: float) -> Tuple[List[int], List[int]]:
    """Split replica indices into (cut, kept) for a severity in [0, 1].

    ``round(severity * n_replicas)`` replicas are cut, *lowest indices
    first* — replica 0 is every client's initial sticky choice, so any
    nonzero cut dislodges the replica actually serving traffic.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1: {n_replicas}")
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1]: {severity}")
    n_cut = min(n_replicas, round(severity * n_replicas))
    return list(range(n_cut)), list(range(n_cut, n_replicas))


@dataclass
class PartitionRunResult:
    """One partitioned run plus the replication stack's own accounting."""

    result: ScenarioResult
    mode: DeploymentMode
    n_replicas: int
    severity: float
    heal_s: float
    n_cut: int
    decision_counts: Dict[str, int]
    failovers: int
    fast_failures: int
    replica_calls: Dict[int, Dict[str, int]]
    anti_entropy_merges: int
    reports_replicated: int
    quorum_rejections: int
    final_divergence: float
    max_divergence: float
    pending_reports: int

    @property
    def metrics(self) -> RunMetrics:
        """The run's aggregate transport metrics."""
        return self.result.metrics


def run_partitioned_phi_cubic(
    policy: PolicyTable,
    preset: ScenarioPreset,
    *,
    n_replicas: int = 3,
    severity: float = 0.0,
    heal_s: float = 10.0,
    partition_start_s: float = 10.0,
    seed: int = 0,
    read_policy: ReadPolicy = ReadPolicy.ANY,
    duration_s: Optional[float] = None,
    staleness_ttl_s: float = 10.0,
    anti_entropy_period_s: float = 1.0,
    quorum_staleness_s: float = 5.0,
    channel_config: Optional[ChannelConfig] = None,
    failover_config: Optional[FailoverConfig] = None,
    lease_ttl_s: Optional[float] = 60.0,
    fallback_params: Optional[CubicParams] = None,
    breaker_failure_threshold: int = 5,
    breaker_reset_s: float = 1.0,
) -> PartitionRunResult:
    """Phi-coordinated Cubic on a replicated, partitionable control plane.

    A :class:`~repro.simnet.faults.Partition` severs the first
    ``round(severity * n_replicas)`` replicas — their sender↔replica
    channels are marked down and their anti-entropy edges to the kept
    replicas are cut — during ``[partition_start_s, partition_start_s +
    heal_s)``.  ``severity=0`` (or ``heal_s=0``) is the no-fault
    replicated deployment; ``severity=1`` cuts every replica, leaving
    clients on the stale-then-fallback path exactly as a total
    control-plane outage would.

    Defaults arm the reproducibility-preserving jitters (channel retry
    backoff and failover suspension) from per-run seeded streams; both
    draw only on failure paths, so a no-fault run's trajectory is
    unchanged by them.
    """
    cut, _kept = partition_indices(n_replicas, severity)
    if partition_start_s < 0 or heal_s < 0:
        raise ValueError(
            f"partition window must be non-negative: "
            f"start={partition_start_s} heal={heal_s}"
        )
    duration = duration_s if duration_s is not None else preset.duration_s
    holders: dict = {}

    def build(env: ExperimentEnv):
        service = ReplicatedContextService(
            env.sim,
            env.bottleneck_capacity_bps,
            config=ReplicationConfig(
                n_replicas=n_replicas,
                anti_entropy_period_s=anti_entropy_period_s,
                read_policy=read_policy,
                quorum_staleness_s=quorum_staleness_s,
            ),
            lease_ttl_s=lease_ttl_s,
        )
        cfg = channel_config or ChannelConfig(backoff_jitter=0.25)
        needs_rng = (
            cfg.loss_probability > 0 or cfg.jitter_s > 0 or cfg.backoff_jitter > 0
        )
        channels = [
            ControlChannel(
                env.sim,
                service.handle(index),
                config=cfg,
                rng=(
                    env.rngs.stream(f"control-channel-{index}")
                    if needs_rng
                    else None
                ),
                breaker=CircuitBreaker(
                    lambda: env.sim.now,
                    failure_threshold=breaker_failure_threshold,
                    reset_timeout_s=breaker_reset_s,
                ),
            )
            for index in range(n_replicas)
        ]
        fo_cfg = failover_config or FailoverConfig()
        failover = FailoverChannel(
            env.sim,
            channels,
            rng=(
                env.rngs.stream("failover-suspend")
                if fo_cfg.suspend_jitter > 0
                else None
            ),
            config=fo_cfg,
        )
        injector = FaultInjector(env.sim)
        if cut and heal_s > 0:
            kept = [i for i in range(n_replicas) if i not in cut]
            edges = [(i, j) for i in cut for j in kept]
            injector.partition(
                partition_start_s,
                heal_s,
                targets=[channels[i] for i in cut],
                mesh=service if edges else None,
                edges=edges,
            )
        client = ResilientContextClient(
            failover, now=lambda: env.sim.now, staleness_ttl_s=staleness_ttl_s
        )
        holders.update(
            service=service, channels=channels, failover=failover,
            client=client, injector=injector,
        )
        return resilient_phi_cubic_factory(
            client, policy, now=lambda: env.sim.now, fallback_params=fallback_params
        )

    if preset.workload is None:
        result = run_long_running_scenario(
            uniform_slots(build),
            config=preset.config,
            duration_s=duration,
            seed=seed,
        )
    else:
        result = run_onoff_scenario(
            uniform_slots(build),
            config=preset.config,
            workload=preset.workload,
            duration_s=duration,
            seed=seed,
        )
    service: ReplicatedContextService = holders["service"]
    failover: FailoverChannel = holders["failover"]
    client: ResilientContextClient = holders["client"]
    history = service.divergence_history
    return PartitionRunResult(
        result=result,
        mode=DeploymentMode.REPLICATED,
        n_replicas=n_replicas,
        severity=severity,
        heal_s=heal_s,
        n_cut=len(cut),
        decision_counts=client.decision_counts(),
        failovers=failover.stats.failovers,
        fast_failures=failover.stats.fast_failures,
        replica_calls=failover.stats.by_replica,
        anti_entropy_merges=service.anti_entropy_merges,
        reports_replicated=service.reports_replicated,
        quorum_rejections=service.quorum_rejections,
        final_divergence=service.replica_divergence(),
        max_divergence=max((d for _, d in history), default=0.0),
        pending_reports=client.pending_reports,
    )


# ----------------------------------------------------------------------
# The X7 sweep: replica count x severity x heal time, supervised
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionPoint:
    """One (replica count, severity, heal time, seed) evaluation."""

    n_replicas: int
    severity: float
    heal_s: float
    seed: int


@dataclass(frozen=True)
class PartitionSpec:
    """Everything a worker needs to evaluate a :class:`PartitionPoint`.

    Must stay picklable (crosses the process boundary).
    """

    preset: ScenarioPreset
    policy: PolicyTable
    read_policy: ReadPolicy = ReadPolicy.ANY
    partition_start_s: float = 10.0
    duration_s: Optional[float] = None
    staleness_ttl_s: float = 10.0
    anti_entropy_period_s: float = 1.0
    collect_telemetry: bool = False


@dataclass
class PartitionPointResult:
    """One partition point's outcome, by-value across the pool boundary."""

    n_replicas: int
    severity: float
    heal_s: float
    seed: int
    n_cut: int
    metrics: RunMetrics
    decision_counts: Dict[str, int]
    failovers: int
    fast_failures: int
    anti_entropy_merges: int
    reports_replicated: int
    quorum_rejections: int
    final_divergence: float
    max_divergence: float
    pending_reports: int
    events_processed: int
    wall_seconds: float
    #: Observability sidecar (see PointResult.telemetry): excluded from
    #: determinism comparisons.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def identical_to(self, other: "PartitionPointResult") -> bool:
        """Bit-identical simulation outcome (wall time excluded)."""
        return (
            self.n_replicas == other.n_replicas
            and self.severity == other.severity
            and self.heal_s == other.heal_s
            and self.seed == other.seed
            and self.n_cut == other.n_cut
            and self.metrics == other.metrics
            and self.decision_counts == other.decision_counts
            and self.failovers == other.failovers
            and self.fast_failures == other.fast_failures
            and self.anti_entropy_merges == other.anti_entropy_merges
            and self.reports_replicated == other.reports_replicated
            and self.quorum_rejections == other.quorum_rejections
            and self.final_divergence == other.final_divergence
            and self.max_divergence == other.max_divergence
            and self.pending_reports == other.pending_reports
            and self.events_processed == other.events_processed
        )


def evaluate_partition_point(
    spec: PartitionSpec, point: PartitionPoint
) -> PartitionPointResult:
    """Worker entry point; a pure function of ``(spec, point)``.

    Module-level so pool workers can unpickle it; all randomness comes
    from the run's seeded streams.
    """
    started = time.perf_counter()
    snapshot: Optional[Dict[str, Any]] = None
    kwargs = dict(
        n_replicas=point.n_replicas,
        severity=point.severity,
        heal_s=point.heal_s,
        partition_start_s=spec.partition_start_s,
        seed=point.seed,
        read_policy=spec.read_policy,
        duration_s=spec.duration_s,
        staleness_ttl_s=spec.staleness_ttl_s,
        anti_entropy_period_s=spec.anti_entropy_period_s,
    )
    if spec.collect_telemetry:
        with _telemetry.use() as tele:
            run = run_partitioned_phi_cubic(spec.policy, spec.preset, **kwargs)
            snapshot = tele.registry.snapshot()
    else:
        run = run_partitioned_phi_cubic(spec.policy, spec.preset, **kwargs)
    wall = time.perf_counter() - started
    return PartitionPointResult(
        n_replicas=point.n_replicas,
        severity=point.severity,
        heal_s=point.heal_s,
        seed=point.seed,
        n_cut=run.n_cut,
        metrics=run.metrics,
        decision_counts=run.decision_counts,
        failovers=run.failovers,
        fast_failures=run.fast_failures,
        anti_entropy_merges=run.anti_entropy_merges,
        reports_replicated=run.reports_replicated,
        quorum_rejections=run.quorum_rejections,
        final_divergence=run.final_divergence,
        max_divergence=run.max_divergence,
        pending_reports=run.pending_reports,
        events_processed=run.result.events_processed,
        wall_seconds=wall,
        telemetry=snapshot,
    )


@dataclass
class PartitionSweepRow:
    """One (replica count, severity, heal) cell aggregated across seeds."""

    n_replicas: int
    severity: float
    heal_s: float
    n_cut: int
    minority: bool
    mean_power_l: float
    mean_throughput_mbps: float
    mean_delay_ms: float
    stock_power_l: float
    stock_throughput_mbps: float
    degraded_power_l: float
    degraded_throughput_mbps: float
    decision_counts: Dict[str, int]
    failovers: int
    anti_entropy_merges: int
    quorum_rejections: int
    max_divergence: float

    @property
    def power_vs_stock(self) -> float:
        """Mean power relative to uncoordinated Cubic (1.0 = parity)."""
        return _ratio(self.mean_power_l, self.stock_power_l)

    @property
    def power_vs_degraded(self) -> float:
        """Mean power relative to the single-server-outage baseline."""
        return _ratio(self.mean_power_l, self.degraded_power_l)

    @property
    def throughput_vs_stock(self) -> float:
        """Mean throughput relative to uncoordinated Cubic."""
        return _ratio(self.mean_throughput_mbps, self.stock_throughput_mbps)

    @property
    def throughput_vs_degraded(self) -> float:
        """Mean throughput relative to the single-server-outage baseline."""
        return _ratio(self.mean_throughput_mbps, self.degraded_throughput_mbps)


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0:
        return float("inf") if value > 0 else 1.0
    return value / baseline


@dataclass
class PartitionSweepOutcome:
    """Everything one X7 sweep produced."""

    spec: PartitionSpec
    rows: List[PartitionSweepRow]
    results: List[PartitionPointResult]
    stock_by_seed: Dict[int, RunMetrics]
    degraded_by_heal_seed: Dict[Tuple[float, int], RunMetrics]
    report: ExecutionReport
    telemetry: Optional[Dict[str, Any]] = None


def run_partition_sweep(
    policy: PolicyTable,
    preset: ScenarioPreset,
    replica_counts: Sequence[int],
    severities: Sequence[float],
    heal_times: Sequence[float] = (10.0,),
    *,
    seeds: Sequence[int] = (0, 1),
    read_policy: ReadPolicy = ReadPolicy.ANY,
    partition_start_s: float = 10.0,
    duration_s: Optional[float] = None,
    staleness_ttl_s: float = 10.0,
    anti_entropy_period_s: float = 1.0,
    n_workers: int = 1,
    parallel: bool = True,
    resilience: Optional[ResilienceConfig] = None,
    collect_telemetry: Optional[bool] = None,
) -> PartitionSweepOutcome:
    """Sweep replica count x partition severity x heal time across seeds.

    Two baselines anchor every row, each run with the row's own seeds:

    - **stock**: uncoordinated default Cubic (the X4/X6 floor);
    - **degraded**: the same replicated machinery at ``n_replicas=1,
      severity=1`` with the row's heal window — structurally the PR 1
      single-server outage, so "replication beats one server" is an
      apples-to-apples claim.

    Points run through the :class:`SweepSupervisor` — pooled when
    ``parallel`` and ``n_workers > 1``, else serially — and merge by
    index, so both paths produce bit-identical outcomes
    (``identical_to``).
    """
    tele = _telemetry.session()
    collect = tele.enabled if collect_telemetry is None else collect_telemetry
    spec = PartitionSpec(
        preset=preset,
        policy=policy,
        read_policy=read_policy,
        partition_start_s=partition_start_s,
        duration_s=duration_s,
        staleness_ttl_s=staleness_ttl_s,
        anti_entropy_period_s=anti_entropy_period_s,
        collect_telemetry=collect,
    )
    points = [
        PartitionPoint(n, severity, heal, seed)
        for n in replica_counts
        for severity in severities
        for heal in heal_times
        for seed in seeds
    ]
    results: List[Optional[PartitionPointResult]] = [None] * len(points)

    def deliver(index: int, result: PartitionPointResult) -> None:
        results[index] = result

    supervisor = SweepSupervisor(
        spec,
        evaluate_partition_point,
        config=resilience or ResilienceConfig(),
        n_workers=max(1, n_workers),
        mp_context=_pool_context(),
    )
    pending = list(enumerate(points))
    if parallel and n_workers > 1:
        report = supervisor.execute_pool(pending, deliver)
    else:
        report = supervisor.execute_serial(pending, deliver)
    completed = [result for result in results if result is not None]

    # Baseline 1: uncoordinated stock Cubic, one run per seed.
    stock_by_seed = {
        seed: run_cubic_fixed(
            CubicParams.default(), preset, seed=seed, duration_s=duration_s
        ).metrics
        for seed in seeds
    }
    # Baseline 2: the PR 1-shaped single-server outage — one replica,
    # fully cut for the same window — per (heal, seed).  Telemetry off:
    # baselines anchor the envelope, they are not part of the sweep.
    baseline_spec = PartitionSpec(
        preset=preset,
        policy=policy,
        read_policy=ReadPolicy.ANY,
        partition_start_s=partition_start_s,
        duration_s=duration_s,
        staleness_ttl_s=staleness_ttl_s,
        anti_entropy_period_s=anti_entropy_period_s,
        collect_telemetry=False,
    )
    degraded_by_heal_seed = {
        (heal, seed): evaluate_partition_point(
            baseline_spec, PartitionPoint(1, 1.0, heal, seed)
        ).metrics
        for heal in heal_times
        for seed in seeds
    }

    def _mean(values: Sequence[float]) -> float:
        return sum(values) / max(1, len(values))

    stock_power = _mean([m.power_l for m in stock_by_seed.values()])
    stock_tput = _mean([m.throughput_mbps for m in stock_by_seed.values()])

    rows: List[PartitionSweepRow] = []
    for n in replica_counts:
        for severity in severities:
            for heal in heal_times:
                cell = [
                    r for r in completed
                    if r.n_replicas == n
                    and r.severity == severity
                    and r.heal_s == heal
                ]
                if not cell:
                    continue
                decisions: Dict[str, int] = {}
                for run in cell:
                    for key, count in run.decision_counts.items():
                        decisions[key] = decisions.get(key, 0) + count
                aggregate = summarize_runs([run.metrics for run in cell])
                degraded = [
                    degraded_by_heal_seed[(heal, seed)] for seed in seeds
                ]
                n_cut = cell[0].n_cut
                rows.append(
                    PartitionSweepRow(
                        n_replicas=n,
                        severity=severity,
                        heal_s=heal,
                        n_cut=n_cut,
                        minority=0 < n_cut and 2 * n_cut < n,
                        mean_power_l=aggregate.mean_power_l,
                        mean_throughput_mbps=aggregate.mean_throughput_mbps,
                        mean_delay_ms=aggregate.mean_queueing_delay_ms,
                        stock_power_l=stock_power,
                        stock_throughput_mbps=stock_tput,
                        degraded_power_l=_mean([m.power_l for m in degraded]),
                        degraded_throughput_mbps=_mean(
                            [m.throughput_mbps for m in degraded]
                        ),
                        decision_counts=decisions,
                        failovers=sum(r.failovers for r in cell),
                        anti_entropy_merges=sum(
                            r.anti_entropy_merges for r in cell
                        ),
                        quorum_rejections=sum(
                            r.quorum_rejections for r in cell
                        ),
                        max_divergence=max(r.max_divergence for r in cell),
                    )
                )

    merged_telemetry: Optional[Dict[str, Any]] = None
    if collect:
        merged_telemetry = merge_snapshots(
            result.telemetry for result in completed
            if result.telemetry is not None
        )
    return PartitionSweepOutcome(
        spec=spec,
        rows=rows,
        results=completed,
        stock_by_seed=stock_by_seed,
        degraded_by_heal_seed=degraded_by_heal_seed,
        report=report,
        telemetry=merged_telemetry,
    )


def check_partition_envelope(
    outcome: PartitionSweepOutcome, *, rel_tol: float = 0.05
) -> List[str]:
    """Violations of the X7 safety envelope (empty means it holds).

    Two floors, both on power *and* throughput (a partition can hurt on
    either axis, exactly as X6 found for lies):

    - every row must stay within ``rel_tol`` of the **stock** Cubic
      floor — losing the whole control plane degrades to uncoordinated,
      never below it;
    - every **minority-cut** row with ≥ 2 replicas must additionally
      stay within ``rel_tol`` of the **degraded** single-server-outage
      baseline — with a quorum of replicas standing, the partition must
      cost no more than PR 1's best effort with one server, and in
      practice costs nothing (failover keeps every sender FRESH).
    """
    violations: List[str] = []
    for row in outcome.rows:
        cell = (
            f"replicas={row.n_replicas} severity={row.severity:g} "
            f"heal={row.heal_s:g}s"
        )
        stock_power_floor = (1.0 - rel_tol) * row.stock_power_l
        if row.mean_power_l < stock_power_floor:
            violations.append(
                f"{cell}: power {row.mean_power_l:.4f} < stock floor "
                f"{stock_power_floor:.4f} (stock {row.stock_power_l:.4f})"
            )
        stock_tput_floor = (1.0 - rel_tol) * row.stock_throughput_mbps
        if row.mean_throughput_mbps < stock_tput_floor:
            violations.append(
                f"{cell}: throughput {row.mean_throughput_mbps:.3f} Mbps < "
                f"stock floor {stock_tput_floor:.3f} "
                f"(stock {row.stock_throughput_mbps:.3f})"
            )
        if row.n_replicas >= 2 and row.minority:
            degraded_power_floor = (1.0 - rel_tol) * row.degraded_power_l
            if row.mean_power_l < degraded_power_floor:
                violations.append(
                    f"{cell}: power {row.mean_power_l:.4f} < degraded floor "
                    f"{degraded_power_floor:.4f} "
                    f"(degraded {row.degraded_power_l:.4f})"
                )
            degraded_tput_floor = (
                (1.0 - rel_tol) * row.degraded_throughput_mbps
            )
            if row.mean_throughput_mbps < degraded_tput_floor:
                violations.append(
                    f"{cell}: throughput {row.mean_throughput_mbps:.3f} Mbps "
                    f"< degraded floor {degraded_tput_floor:.3f} "
                    f"(degraded {row.degraded_throughput_mbps:.3f})"
                )
    return violations

"""The Figure-1 scenario runner.

Everything in the evaluation happens on the dumbbell of Figure 1; this
module builds the environment (topology + instrumentation), drives a
workload over it with pluggable per-sender factories, and summarizes the
outcome.  Benches, tests, and examples all go through these entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .. import simcheck
from ..metrics.summary import RunMetrics, summarize_connections
from ..simcheck import CheckedSimulator, ViolationReport, checked_factory
from ..simnet.engine import Simulator, SimWatchdog, WatchdogConfig
from ..simnet.monitor import ActiveFlowTracker, LinkMonitor
from ..simnet.packet import FlowIdAllocator
from ..simnet.random import RngStreams
from ..simnet.topology import DumbbellConfig, DumbbellTopology
from ..transport.base import ConnectionStats
from ..workload.longrunning import LongRunningFlow, launch_long_running_flows
from ..workload.onoff import OnOffConfig, OnOffSource, SenderFactory


@dataclass
class ExperimentEnv:
    """A fully-instrumented dumbbell ready to carry a workload."""

    sim: Simulator
    topology: DumbbellTopology
    monitor: LinkMonitor
    flow_tracker: ActiveFlowTracker
    flow_ids: FlowIdAllocator
    rngs: RngStreams
    #: Whether this environment runs with the simcheck invariant layer.
    checked: bool = False
    #: Collects violations instead of raising when set (``repro check``).
    check_report: Optional[ViolationReport] = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        config: Optional[DumbbellConfig] = None,
        seed: int = 0,
        monitor_period_s: float = 0.1,
        watchdog: Optional[WatchdogConfig] = None,
        checked: Optional[bool] = None,
        check_report: Optional[ViolationReport] = None,
        profile: bool = False,
    ) -> "ExperimentEnv":
        """Build the topology and start the bottleneck monitor.

        ``watchdog`` installs a :class:`SimWatchdog` on the fresh
        simulator so a runaway run raises
        :class:`~repro.simnet.engine.SimulationStalled` instead of
        spinning forever; it never alters the trajectory of a run that
        finishes within its budgets.

        ``checked`` builds the environment on a
        :class:`~repro.simcheck.CheckedSimulator` with invariant audits;
        ``None`` (the default) defers to :func:`repro.simcheck.enabled`,
        so ``REPRO_SIMCHECK=1`` flips every scenario in the process into
        checked mode without touching call sites.
        """
        if checked is None:
            checked = simcheck.enabled()
        sim: Simulator
        if checked:
            sim = CheckedSimulator(report=check_report)
        else:
            sim = Simulator()
        if watchdog is not None:
            sim.install_watchdog(SimWatchdog(watchdog))
        if profile:
            # Per-callback timing for ``--profile`` runs; observes wall
            # time only, never the simulated trajectory.
            sim.enable_profiling(callbacks=True)
        topology = DumbbellTopology(sim, config or DumbbellConfig())
        monitor = LinkMonitor(sim, topology.bottleneck, period_s=monitor_period_s)
        monitor.start()
        return cls(
            sim=sim,
            topology=topology,
            monitor=monitor,
            flow_tracker=ActiveFlowTracker(),
            flow_ids=FlowIdAllocator(),
            rngs=RngStreams(seed),
            checked=checked,
            check_report=check_report,
        )

    def wrap_factory(self, factory: SenderFactory) -> SenderFactory:
        """``factory`` with TCP invariant checks when this env is checked."""
        if not self.checked:
            return factory
        return checked_factory(factory, self.check_report)

    def audit(self, faults: Iterable[object] = ()) -> None:
        """Run the conservation audit over the whole topology now.

        Called automatically at the end of checked scenario runs; pass
        the run's fault objects so fault-absorbed packets are credited
        in the wire law.
        """
        simcheck.audit_topology(
            self.topology, self.sim.now, faults, self.check_report
        )

    @property
    def bottleneck_capacity_bps(self) -> float:
        """Capacity of the shared bottleneck."""
        return self.topology.config.bottleneck_bandwidth_bps


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    metrics: RunMetrics
    per_sender_stats: List[List[ConnectionStats]]
    bottleneck_drop_rate: float
    mean_utilization: float
    duration_s: float
    connections: int
    events_processed: int = 0
    #: Run-loop profile (``SimProfile.as_dict()``) when profiling was on.
    profile: Optional[Dict[str, Any]] = None

    def sender_metrics(self, indices: Sequence[int]) -> RunMetrics:
        """Metrics restricted to a subset of sender slots (Figure 4)."""
        stats: List[ConnectionStats] = []
        for index in indices:
            stats.extend(self.per_sender_stats[index])
        return summarize_connections(
            stats,
            bottleneck_loss_rate=self.bottleneck_drop_rate,
            mean_utilization=self.mean_utilization,
        )


FactoryForSlot = Callable[[int, ExperimentEnv], SenderFactory]


def run_onoff_scenario(
    factory_for_slot: FactoryForSlot,
    *,
    config: Optional[DumbbellConfig] = None,
    workload: Optional[OnOffConfig] = None,
    duration_s: float = 60.0,
    seed: int = 0,
    include_unfinished: bool = False,
    watchdog: Optional[WatchdogConfig] = None,
    checked: Optional[bool] = None,
    check_report: Optional[ViolationReport] = None,
    slot_order: Optional[Sequence[int]] = None,
    monitor_period_s: float = 0.1,
    profile: bool = False,
    fault_hook: Optional[Callable[["ExperimentEnv"], Iterable[object]]] = None,
) -> ScenarioResult:
    """Run the paper's on/off workload over a fresh dumbbell.

    ``factory_for_slot(index, env)`` supplies each sender slot's transport
    factory, which is how Phi coordination, partial deployment, and plain
    baselines are all expressed.

    ``slot_order`` constructs the per-slot sources in a different order
    (results stay keyed by slot).  Each slot's RNG stream is derived from
    its index, so a permutation changes only event insertion order — the
    flow-permutation metamorphic oracle uses this to demand identical
    results.

    ``fault_hook(env)`` runs after the environment is built and before
    the clock starts; it may schedule data-plane faults on the fresh
    topology and must return the fault objects it created so checked
    runs credit absorbed packets in the conservation audit.
    """
    env = ExperimentEnv.create(
        config,
        seed,
        monitor_period_s=monitor_period_s,
        watchdog=watchdog,
        checked=checked,
        check_report=check_report,
        profile=profile,
    )
    faults: List[object] = list(fault_hook(env)) if fault_hook is not None else []
    workload = workload or OnOffConfig()
    n_senders = env.topology.config.n_senders
    order = list(range(n_senders)) if slot_order is None else list(slot_order)
    if sorted(order) != list(range(n_senders)):
        raise ValueError(f"slot_order must permute 0..{n_senders - 1}: {order}")
    sources_by_slot: dict = {}
    for index in order:
        factory = env.wrap_factory(factory_for_slot(index, env))
        source = OnOffSource(
            env.sim,
            env.topology.senders[index],
            env.topology.receivers[index],
            factory,
            env.flow_ids,
            env.rngs.stream(f"onoff-{index}"),
            workload,
            flow_tracker=env.flow_tracker,
        )
        source.start()
        sources_by_slot[index] = source
    sources = [sources_by_slot[index] for index in range(n_senders)]

    env.sim.run(until=duration_s)
    for source in sources:
        source.stop()
    if env.checked:
        env.audit(faults)

    per_sender = [src.all_stats(include_active=include_unfinished) for src in sources]
    return _summarize(env, per_sender, duration_s)


def run_long_running_scenario(
    factory_for_slot: FactoryForSlot,
    *,
    config: Optional[DumbbellConfig] = None,
    duration_s: float = 60.0,
    seed: int = 0,
    warmup_s: float = 5.0,
    watchdog: Optional[WatchdogConfig] = None,
    checked: Optional[bool] = None,
    check_report: Optional[ViolationReport] = None,
    profile: bool = False,
    fault_hook: Optional[Callable[["ExperimentEnv"], Iterable[object]]] = None,
) -> ScenarioResult:
    """Run persistent bulk flows (the Figure 2c setting).

    Flows start within the first second; statistics cover the whole run
    but utilization is reported post-warmup so slow-start transients do
    not dilute the steady-state picture.  ``fault_hook`` behaves as in
    :func:`run_onoff_scenario`.
    """
    env = ExperimentEnv.create(
        config,
        seed,
        watchdog=watchdog,
        checked=checked,
        check_report=check_report,
        profile=profile,
    )
    faults: List[object] = list(fault_hook(env)) if fault_hook is not None else []
    n = env.topology.config.n_senders
    flows: List[LongRunningFlow] = []
    for index in range(n):
        factory = env.wrap_factory(factory_for_slot(index, env))
        flows.extend(
            launch_long_running_flows(
                env.sim,
                [(env.topology.senders[index], env.topology.receivers[index])],
                factory,
                env.flow_ids,
                env.rngs.stream(f"lr-{index}"),
                flow_tracker=env.flow_tracker,
            )
        )
    env.sim.run(until=duration_s)
    if env.checked:
        env.audit(faults)
    per_sender = [[flow.finish()] for flow in flows]
    result = _summarize(env, per_sender, duration_s)
    # Recompute utilization excluding warm-up.
    post_warmup = env.monitor.mean_utilization(since=warmup_s)
    result.mean_utilization = post_warmup
    result.metrics = RunMetrics(
        throughput_mbps=result.metrics.throughput_mbps,
        queueing_delay_ms=result.metrics.queueing_delay_ms,
        loss_rate=result.metrics.loss_rate,
        connections=result.metrics.connections,
        total_bytes=result.metrics.total_bytes,
        mean_rtt_ms=result.metrics.mean_rtt_ms,
        mean_utilization=post_warmup,
    )
    return result


def _summarize(
    env: ExperimentEnv,
    per_sender: List[List[ConnectionStats]],
    duration_s: float,
) -> ScenarioResult:
    all_stats = [s for sender in per_sender for s in sender]
    drop_rate = env.topology.bottleneck_queue.stats.drop_rate()
    utilization = env.monitor.mean_utilization()
    metrics = summarize_connections(
        all_stats,
        bottleneck_loss_rate=drop_rate,
        mean_utilization=utilization,
    )
    return ScenarioResult(
        metrics=metrics,
        per_sender_stats=per_sender,
        bottleneck_drop_rate=drop_rate,
        mean_utilization=utilization,
        duration_s=duration_s,
        connections=len(all_stats),
        events_processed=env.sim.events_processed,
        profile=env.sim.profile.as_dict() if env.sim.profile is not None else None,
    )


def uniform_slots(factory_builder: Callable[[ExperimentEnv], SenderFactory]) -> FactoryForSlot:
    """All sender slots share one factory built once per environment.

    The builder is invoked once per run (memoized on the env) so wrappers
    that carry state — e.g. a Phi context server — are shared by all
    senders of the run, as they should be.
    """
    cache: dict = {}

    def for_slot(index: int, env: ExperimentEnv) -> SenderFactory:
        key = id(env)
        if key not in cache:
            cache.clear()  # only ever one live env per runner call
            cache[key] = factory_builder(env)
        return cache[key]

    return for_slot

"""Table-2 sweep drivers on top of :mod:`repro.runner`.

This is the ported version of the old serial ``cubic_evaluator`` +
``repro.phi.optimizer.sweep`` pipeline: the same (preset, grid, seeds)
inputs and the same :class:`~repro.phi.optimizer.SweepResult` outputs,
but evaluated by the multiprocess :class:`~repro.runner.SweepRunner`
with per-point caching.  ``run_parameter_sweep(..., parallel=False)``
is the drop-in serial baseline used for determinism checks and speedup
measurements.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..phi.optimizer import SweepResult
from ..runner.cache import DiskCache
from ..runner.core import SweepOutcome, SweepRunner
from ..runner.progress import ProgressReporter
from ..runner.resilience import ResilienceConfig
from ..simnet.engine import WatchdogConfig
from ..transport.cubic import CubicParams, cubic_sweep_grid
from .scenarios import TABLE3_REMY, ScenarioPreset


def run_parameter_sweep(
    preset: ScenarioPreset = TABLE3_REMY,
    grid: Optional[Iterable[CubicParams]] = None,
    *,
    n_runs: int = 8,
    base_seed: int = 0,
    duration_s: Optional[float] = None,
    n_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressReporter] = None,
    parallel: bool = True,
    resilience: Optional[ResilienceConfig] = None,
    watchdog: Optional[WatchdogConfig] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    flightrec_dir: Optional[str] = None,
    profile: bool = False,
) -> SweepOutcome:
    """Sweep a Cubic parameter grid over ``preset`` via the runner.

    Defaults reproduce the paper's setup: the full 576-point Table-2
    grid, 8 runs per point, seeds ``base_seed + run_index`` shared across
    grid points so leave-one-out comparisons see identical workloads.

    ``checkpoint_dir``/``resume`` journal completed points so an
    interrupted sweep can pick up where it died; ``resilience`` and
    ``watchdog`` tune crash/hang supervision (see
    :mod:`repro.runner.resilience` and
    :class:`~repro.simnet.engine.SimWatchdog`).

    ``flightrec_dir`` arms the per-point flight recorder (dumps land
    there on anomalies; defaults to ``checkpoint_dir``); ``profile``
    collects per-callback run-loop timings on every point.
    """
    points = list(grid) if grid is not None else list(cubic_sweep_grid())
    cache = DiskCache(cache_dir) if cache_dir is not None else None
    runner = SweepRunner(
        preset,
        duration_s=duration_s,
        n_workers=n_workers,
        cache=cache,
        progress=progress,
        resilience=resilience,
        watchdog=watchdog,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        flightrec_dir=flightrec_dir,
        profile=profile,
    )
    return runner.run(points, n_runs=n_runs, base_seed=base_seed, parallel=parallel)


def run_table2_sweep(
    preset: ScenarioPreset = TABLE3_REMY,
    grid: Optional[Iterable[CubicParams]] = None,
    **kwargs,
) -> Tuple[List[SweepResult], SweepOutcome]:
    """The optimizer-facing entry point: sweep, then reshape.

    Returns the classic ``List[SweepResult]`` (grid order, runs in
    run-index order) ready for :func:`~repro.phi.optimizer.select_optimal`
    and :func:`~repro.phi.optimizer.leave_one_out`, plus the raw outcome
    with per-point flow records and timings.
    """
    outcome = run_parameter_sweep(preset, grid, **kwargs)
    return outcome.to_sweep_results(), outcome

"""Unified telemetry: metrics registry, sim-time tracing, run manifests.

The paper's operator runs the network by *observing* it (§2.1 IPFIX
aggregation, Fig. 5 diagnosis); this package gives the reproduction the
same property about itself.  One process-wide :class:`TelemetrySession`
holds the active :class:`~repro.telemetry.registry.MetricsRegistry` and
:class:`~repro.telemetry.trace.Tracer`; instrumentation sites throughout
the engine, Phi control plane, and sweep runner fetch it via
:func:`session` and check ``.enabled``.

Telemetry is **off by default**.  Disabled, the session holds a
:class:`~repro.telemetry.registry.NullRegistry` and
:class:`~repro.telemetry.trace.NullTracer` whose operations are empty
method calls on shared singletons — the hot path pays essentially
nothing (see ``benchmarks/test_bench_telemetry.py``).  Enable it
process-wide with :func:`enable` (the CLI does this when given
``--metrics-out``/``--trace-out``) or scoped with :func:`use`::

    from repro import telemetry

    with telemetry.use() as tele:
        run_cubic_experiment(...)
        snapshot = tele.registry.snapshot()

Sweep workers each build their own session (processes don't share
memory); the runner merges their snapshots at its deterministic
by-index merge point via
:func:`~repro.telemetry.registry.merge_snapshots`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..flightrec.recorder import NULL_RECORDER, FlightRecorder
from .registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_S,
    UTILIZATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    flat_key,
    histogram_percentile,
    mean,
    merge_snapshots,
)
from .trace import NullTracer, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "TelemetrySession",
    "Tracer",
    "UTILIZATION_BUCKETS",
    "disable",
    "enable",
    "flat_key",
    "histogram_percentile",
    "mean",
    "merge_snapshots",
    "session",
    "use",
]


class TelemetrySession:
    """The collectors instrumentation writes to.

    ``flightrec`` is the session-scoped flight recorder (PR 10); it
    stays the shared disabled :data:`~repro.flightrec.recorder.NULL_RECORDER`
    unless a recording scope (:func:`repro.flightrec.use`) installs a
    live one, so plain metrics/trace sessions pay nothing for it.
    """

    __slots__ = ("registry", "tracer", "flightrec")

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Tracer,
        flightrec: Optional[FlightRecorder] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.flightrec = NULL_RECORDER if flightrec is None else flightrec

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def clear(self) -> None:
        self.registry.clear()
        self.tracer.clear()
        self.flightrec.clear()


#: The shared disabled session — module-level so `session()` never allocates.
_DISABLED = TelemetrySession(NullRegistry(), NullTracer())
_active: TelemetrySession = _DISABLED


def session() -> TelemetrySession:
    """The currently active session (disabled no-op by default)."""
    return _active


def enable(
    *,
    trace_capacity: int = 65536,
    fresh: Optional[TelemetrySession] = None,
) -> TelemetrySession:
    """Switch the process to a live session and return it.

    Idempotent in spirit: enabling while already enabled keeps the
    existing live session (so accumulated metrics survive) unless a
    ``fresh`` session is passed explicitly.
    """
    global _active
    if fresh is not None:
        _active = fresh
    elif not _active.enabled:
        _active = TelemetrySession(
            MetricsRegistry(), Tracer(trace_capacity), _active.flightrec
        )
    return _active


def disable() -> None:
    """Return the process to the shared no-op session."""
    global _active
    _active = _DISABLED


@contextmanager
def use(
    session_to_use: Optional[TelemetrySession] = None,
    *,
    trace_capacity: int = 65536,
) -> Iterator[TelemetrySession]:
    """Scoped telemetry: activate a (new or given) session, restore after.

    This is what sweep workers use around a single point evaluation so
    each point's metrics land in an isolated registry.  A fresh session
    inherits the ambient flight recorder: scoping metrics must not
    silently stop an active recording.
    """
    global _active
    previous = _active
    chosen = session_to_use or TelemetrySession(
        MetricsRegistry(), Tracer(trace_capacity), previous.flightrec
    )
    _active = chosen
    try:
        yield chosen
    finally:
        _active = previous

"""Run manifests: one JSON document that explains a run after the fact.

A sweep (or single experiment) that ran with telemetry enabled emits a
``manifest.json`` recording everything needed to answer "what exactly
ran, and why did point #37 behave like that" *without re-running*:

- **identity** — engine signature, ``git describe``, a content hash of
  the configuration, the seed convention;
- **metrics** — the merged registry snapshot (engine, link, phi
  channel, runner), with histogram percentiles recoverable via
  :func:`repro.telemetry.registry.histogram_percentile`;
- **per-point rollups** — for every sweep point: key, params, seed,
  provenance (computed / cached / resumed), wall time, events, retry
  count, and the full failure history the supervisor recorded;
- **quarantine provenance** — points given up on, with their histories.

The schema is versioned (:data:`MANIFEST_SCHEMA`) and checked by
:func:`validate_manifest` (also exposed as a standalone script,
``scripts/validate_manifest.py``, for CI).
"""

from __future__ import annotations

import json
import os
import subprocess
import time as _time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .registry import histogram_percentile

MANIFEST_SCHEMA = "repro-telemetry-manifest/1"

__all__ = [
    "MANIFEST_SCHEMA",
    "git_describe",
    "load_manifest",
    "partition_manifest",
    "poison_manifest",
    "run_manifest",
    "summarize_manifest",
    "sweep_manifest",
    "validate_manifest",
    "write_manifest",
]


def _engine_signature() -> str:
    # Imported lazily: repro.runner imports repro.telemetry at package
    # import time, so a top-level import here would be circular.
    from ..runner.hashing import ENGINE_SIGNATURE

    return ENGINE_SIGNATURE


def _content_hash(payload: Any) -> str:
    from ..runner.hashing import content_hash

    return content_hash(payload)


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty``, or None outside a checkout.

    Defaults to the directory holding this source tree — the manifest
    should describe the *code* that ran, regardless of the process CWD.
    """
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def _base_manifest(
    command: str,
    config: Dict[str, Any],
    seeds: Dict[str, Any],
    metrics: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    return {
        "schema": MANIFEST_SCHEMA,
        "created_unix": _time.time(),
        "command": command,
        "engine_signature": _engine_signature(),
        "git_describe": git_describe(),
        "config": config,
        "config_hash": _content_hash(config),
        "seeds": seeds,
        "metrics": metrics
        if metrics is not None
        else {"counters": {}, "gauges": {}, "histograms": {}},
        "points": [],
        "quarantined": [],
        "totals": {},
    }


def _failure_dicts(failures: Sequence[Any]) -> List[Dict[str, Any]]:
    return [
        {"kind": f.kind, "message": f.message, "attempt": f.attempt}
        for f in failures
    ]


def sweep_manifest(
    outcome,
    *,
    metrics: Optional[Dict[str, Any]] = None,
    command: str = "sweep",
    extra_config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a manifest from a :class:`~repro.runner.core.SweepOutcome`.

    ``metrics`` is the merged registry snapshot to embed (defaults to
    the outcome's own merged worker telemetry).  Per-point provenance,
    retry counts, and failure histories come from the fields the runner
    and supervisor recorded on the outcome.
    """
    spec = outcome.spec
    config = {
        "preset": spec.preset.name,
        "topology": _plain_config(spec.preset.config),
        "workload": _plain_config(spec.preset.workload),
        "duration_s": float(spec.effective_duration_s),
        "n_points": len(outcome.points) + len(outcome.quarantined),
        "n_runs": outcome.n_runs,
    }
    if extra_config:
        config.update(extra_config)
    manifest = _base_manifest(
        command,
        config,
        {"base_seed": outcome.base_seed, "n_runs": outcome.n_runs},
        metrics if metrics is not None else outcome.telemetry,
    )
    failure_history = getattr(outcome, "failure_history", {}) or {}
    provenance = getattr(outcome, "provenance", {}) or {}
    for point in outcome.points:
        failures = failure_history.get(point.key, ())
        manifest["points"].append(
            {
                "key": point.key,
                "params": point.params.as_dict(),
                "seed": point.seed,
                "run_index": point.run_index,
                "status": provenance.get(point.key, "computed"),
                "wall_seconds": point.wall_seconds,
                "events_processed": point.events_processed,
                "retries": len(failures),
                "failures": _failure_dicts(failures),
                "metrics": {
                    "throughput_mbps": point.metrics.throughput_mbps,
                    "queueing_delay_ms": point.metrics.queueing_delay_ms,
                    "loss_rate": point.metrics.loss_rate,
                    "mean_utilization": point.mean_utilization,
                },
            }
        )
    for quarantined in outcome.quarantined:
        manifest["quarantined"].append(
            {
                "index": quarantined.index,
                "params": quarantined.point.params.as_dict(),
                "seed": quarantined.point.seed,
                "run_index": quarantined.point.run_index,
                "attempts": quarantined.attempts,
                "failures": _failure_dicts(quarantined.failures),
            }
        )
    manifest["totals"] = {
        "points": len(outcome.points),
        "cache_hits": outcome.cache_hits,
        "checkpoint_reused": outcome.checkpoint_reused,
        "recomputed": sum(
            1 for p in manifest["points"] if p["status"] == "computed"
        ),
        "retries": outcome.retries,
        "quarantined": len(outcome.quarantined),
        "pool_rebuilds": outcome.pool_rebuilds,
        "serial_fallback": outcome.serial_fallback,
        "workers": outcome.workers,
        "wall_seconds": outcome.wall_seconds,
        "total_events": outcome.total_events,
        "events_per_second": outcome.events_per_second,
    }
    return manifest


def run_manifest(
    *,
    command: str,
    preset_name: str,
    seed: int,
    duration_s: float,
    metrics: Dict[str, Any],
    result=None,
    extra_config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a manifest for a single (non-sweep) experiment run."""
    config: Dict[str, Any] = {
        "preset": preset_name,
        "duration_s": float(duration_s),
    }
    if extra_config:
        config.update(extra_config)
    manifest = _base_manifest(command, config, {"seed": seed}, metrics)
    totals: Dict[str, Any] = {"points": 1}
    if result is not None:
        manifest["points"].append(
            {
                "key": _content_hash(config),
                "params": config.get("params"),
                "seed": seed,
                "run_index": 0,
                "status": "computed",
                "wall_seconds": None,
                "events_processed": result.events_processed,
                "retries": 0,
                "failures": [],
                "metrics": {
                    "throughput_mbps": result.metrics.throughput_mbps,
                    "queueing_delay_ms": result.metrics.queueing_delay_ms,
                    "loss_rate": result.metrics.loss_rate,
                    "mean_utilization": result.mean_utilization,
                },
            }
        )
        totals["total_events"] = result.events_processed
        totals["connections"] = result.connections
    manifest["totals"] = totals
    return manifest


def poison_manifest(
    outcome,
    *,
    metrics: Optional[Dict[str, Any]] = None,
    command: str = "poison",
    extra_config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a manifest from a poisoned-context sweep outcome.

    Besides the usual per-point transport metrics, every point carries
    the defence stack's own accounting — guard rejections by reason,
    decision counts (including ``distrusted``), the final trust score —
    so the manifest alone answers "which lies were caught, and by which
    layer".
    """
    spec = outcome.spec
    config = {
        "preset": spec.preset.name,
        "topology": _plain_config(spec.preset.config),
        "workload": _plain_config(spec.preset.workload),
        "duration_s": float(
            spec.duration_s
            if spec.duration_s is not None
            else spec.preset.duration_s
        ),
        "modes": list(spec.modes),
        "guarded": spec.guarded,
        "staleness_ttl_s": spec.staleness_ttl_s,
        "n_points": len(outcome.results),
    }
    if extra_config:
        config.update(extra_config)
    manifest = _base_manifest(
        command,
        config,
        {"seeds": sorted({r.seed for r in outcome.results})},
        metrics if metrics is not None else outcome.telemetry,
    )
    for point in outcome.results:
        manifest["points"].append(
            {
                "key": _content_hash(
                    (point.severity, point.byzantine_fraction, point.seed)
                ),
                "params": {
                    "severity": point.severity,
                    "byzantine_fraction": point.byzantine_fraction,
                },
                "seed": point.seed,
                "run_index": 0,
                "status": "computed",
                "wall_seconds": point.wall_seconds,
                "events_processed": point.events_processed,
                "retries": 0,
                "failures": [],
                "metrics": {
                    "throughput_mbps": point.metrics.throughput_mbps,
                    "queueing_delay_ms": point.metrics.queueing_delay_ms,
                    "loss_rate": point.metrics.loss_rate,
                    "power_l": point.metrics.power_l,
                },
                "defence": {
                    "decision_counts": dict(point.decision_counts),
                    "guard_rejections": dict(point.guard_rejections),
                    "reports_rejected": point.reports_rejected,
                    "contexts_corrupted": point.contexts_corrupted,
                    "reports_poisoned": point.reports_poisoned,
                    "trust_score": point.trust_score,
                    "distrust_entries": point.distrust_entries,
                },
            }
        )
    decisions: Dict[str, int] = {}
    rejections: Dict[str, int] = {}
    for point in outcome.results:
        for key, count in point.decision_counts.items():
            decisions[key] = decisions.get(key, 0) + count
        for key, count in point.guard_rejections.items():
            rejections[key] = rejections.get(key, 0) + count
    manifest["totals"] = {
        "points": len(outcome.results),
        "total_events": sum(p.events_processed for p in outcome.results),
        "decision_counts": decisions,
        "guard_rejections": rejections,
        "reports_rejected": sum(p.reports_rejected for p in outcome.results),
        "contexts_corrupted": sum(p.contexts_corrupted for p in outcome.results),
        "reports_poisoned": sum(p.reports_poisoned for p in outcome.results),
        "distrust_entries": sum(p.distrust_entries for p in outcome.results),
        "baseline_power_by_seed": {
            str(seed): metrics_.power_l
            for seed, metrics_ in sorted(outcome.baseline_by_seed.items())
        },
        "baseline_throughput_by_seed": {
            str(seed): metrics_.throughput_mbps
            for seed, metrics_ in sorted(outcome.baseline_by_seed.items())
        },
    }
    return manifest


def partition_manifest(
    outcome,
    *,
    metrics: Optional[Dict[str, Any]] = None,
    command: str = "partition",
    extra_config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a manifest from a partitioned-control-plane sweep outcome.

    Besides transport metrics, every point carries the replication
    stack's accounting — failover and anti-entropy counts, divergence
    extrema, decision counts — so the manifest alone answers "which
    partitions were survived, and at what replication cost".
    """
    spec = outcome.spec
    config = {
        "preset": spec.preset.name,
        "topology": _plain_config(spec.preset.config),
        "workload": _plain_config(spec.preset.workload),
        "duration_s": float(
            spec.duration_s
            if spec.duration_s is not None
            else spec.preset.duration_s
        ),
        "read_policy": spec.read_policy.value,
        "partition_start_s": spec.partition_start_s,
        "staleness_ttl_s": spec.staleness_ttl_s,
        "anti_entropy_period_s": spec.anti_entropy_period_s,
        "n_points": len(outcome.results),
    }
    if extra_config:
        config.update(extra_config)
    manifest = _base_manifest(
        command,
        config,
        {"seeds": sorted({r.seed for r in outcome.results})},
        metrics if metrics is not None else outcome.telemetry,
    )
    for point in outcome.results:
        manifest["points"].append(
            {
                "key": _content_hash(
                    (point.n_replicas, point.severity, point.heal_s, point.seed)
                ),
                "params": {
                    "n_replicas": point.n_replicas,
                    "severity": point.severity,
                    "heal_s": point.heal_s,
                    "n_cut": point.n_cut,
                },
                "seed": point.seed,
                "run_index": 0,
                "status": "computed",
                "wall_seconds": point.wall_seconds,
                "events_processed": point.events_processed,
                "retries": 0,
                "failures": [],
                "metrics": {
                    "throughput_mbps": point.metrics.throughput_mbps,
                    "queueing_delay_ms": point.metrics.queueing_delay_ms,
                    "loss_rate": point.metrics.loss_rate,
                    "power_l": point.metrics.power_l,
                },
                "replication": {
                    "decision_counts": dict(point.decision_counts),
                    "failovers": point.failovers,
                    "fast_failures": point.fast_failures,
                    "anti_entropy_merges": point.anti_entropy_merges,
                    "reports_replicated": point.reports_replicated,
                    "quorum_rejections": point.quorum_rejections,
                    "final_divergence": point.final_divergence,
                    "max_divergence": point.max_divergence,
                },
            }
        )
    decisions: Dict[str, int] = {}
    for point in outcome.results:
        for key, count in point.decision_counts.items():
            decisions[key] = decisions.get(key, 0) + count
    manifest["totals"] = {
        "points": len(outcome.results),
        "total_events": sum(p.events_processed for p in outcome.results),
        "decision_counts": decisions,
        "failovers": sum(p.failovers for p in outcome.results),
        "fast_failures": sum(p.fast_failures for p in outcome.results),
        "anti_entropy_merges": sum(
            p.anti_entropy_merges for p in outcome.results
        ),
        "reports_replicated": sum(
            p.reports_replicated for p in outcome.results
        ),
        "quorum_rejections": sum(p.quorum_rejections for p in outcome.results),
        "max_divergence": max(
            (p.max_divergence for p in outcome.results), default=0.0
        ),
        "stock_power_by_seed": {
            str(seed): metrics_.power_l
            for seed, metrics_ in sorted(outcome.stock_by_seed.items())
        },
        "degraded_power_by_heal_seed": {
            f"{heal:g}/{seed}": metrics_.power_l
            for (heal, seed), metrics_ in sorted(
                outcome.degraded_by_heal_seed.items()
            )
        },
    }
    return manifest


def _plain_config(config) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    from dataclasses import asdict, is_dataclass

    if is_dataclass(config) and not isinstance(config, type):
        return {k: v for k, v in sorted(asdict(config).items())}
    return dict(config)


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    """Atomically write ``manifest`` as pretty JSON."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    os.replace(tmp_path, path)


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest and check its schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    errors = validate_manifest(manifest)
    if errors:
        raise ValueError(
            f"{path} is not a valid telemetry manifest: " + "; ".join(errors)
        )
    return manifest


def validate_manifest(manifest: Any) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(
            f"schema is {manifest.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
        )
    for key, kind in (
        ("created_unix", (int, float)),
        ("command", str),
        ("engine_signature", str),
        ("config", dict),
        ("config_hash", str),
        ("seeds", dict),
        ("metrics", dict),
        ("points", list),
        ("quarantined", list),
        ("totals", dict),
    ):
        if key not in manifest:
            errors.append(f"missing key {key!r}")
        elif not isinstance(manifest[key], kind):
            errors.append(f"{key!r} has wrong type {type(manifest[key]).__name__}")
    metrics = manifest.get("metrics")
    if isinstance(metrics, dict):
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(section), dict):
                errors.append(f"metrics.{section} missing or not an object")
        for key, histogram in (metrics.get("histograms") or {}).items():
            if not isinstance(histogram, dict):
                errors.append(f"histogram {key!r} is not an object")
                continue
            bounds = histogram.get("bounds")
            counts = histogram.get("bucket_counts")
            if not isinstance(bounds, list) or not isinstance(counts, list):
                errors.append(f"histogram {key!r} lacks bounds/bucket_counts")
            elif len(counts) != len(bounds) + 1:
                errors.append(
                    f"histogram {key!r}: {len(counts)} buckets for "
                    f"{len(bounds)} bounds (want bounds+1)"
                )
    points = manifest.get("points")
    if isinstance(points, list):
        for index, point in enumerate(points):
            if not isinstance(point, dict):
                errors.append(f"points[{index}] is not an object")
                continue
            for key in ("key", "seed", "status", "retries", "failures"):
                if key not in point:
                    errors.append(f"points[{index}] missing {key!r}")
            if point.get("status") not in (
                "computed", "cached", "resumed", "quarantined", None
            ):
                errors.append(
                    f"points[{index}] has unknown status {point.get('status')!r}"
                )
    return errors


def _percentiles(histogram: Dict[str, Any]) -> Tuple[float, float, float]:
    return (
        histogram_percentile(histogram, 50),
        histogram_percentile(histogram, 90),
        histogram_percentile(histogram, 99),
    )


def summarize_manifest(manifest: Dict[str, Any], max_points: int = 24) -> str:
    """Render a human-readable table from a manifest."""
    lines: List[str] = []
    created = _time.strftime(
        "%Y-%m-%d %H:%M:%S", _time.gmtime(manifest.get("created_unix", 0))
    )
    lines.append(
        f"manifest: {manifest.get('command')} "
        f"(engine {manifest.get('engine_signature')}, "
        f"git {manifest.get('git_describe') or 'unknown'}, {created} UTC)"
    )
    config = manifest.get("config", {})
    lines.append(
        f"config:   preset={config.get('preset')} "
        f"duration={config.get('duration_s')}s "
        f"hash={manifest.get('config_hash', '')[:12]}"
    )
    totals = manifest.get("totals", {})
    if totals:
        parts = []
        for key in (
            "points", "cache_hits", "checkpoint_reused", "recomputed",
            "retries", "quarantined", "pool_rebuilds", "workers",
        ):
            if key in totals:
                parts.append(f"{key}={totals[key]}")
        if "wall_seconds" in totals:
            parts.append(f"wall={totals['wall_seconds']:.2f}s")
        if "events_per_second" in totals:
            parts.append(f"{totals['events_per_second']:,.0f} events/s")
        lines.append("totals:   " + " ".join(parts))

    counters = manifest.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for key, value in counters.items():
            rendered = f"{value:,.0f}" if float(value).is_integer() else f"{value:,.4f}"
            lines.append(f"  {key:<52s} {rendered:>14s}")

    histograms = manifest.get("metrics", {}).get("histograms", {})
    live = {k: h for k, h in histograms.items() if h.get("count")}
    if live:
        lines.append("")
        lines.append(
            f"{'histogram':<44s} {'count':>8s} {'mean':>10s} "
            f"{'p50':>10s} {'p90':>10s} {'p99':>10s} {'max':>10s}"
        )
        for key, histogram in live.items():
            p50, p90, p99 = _percentiles(histogram)
            mean_value = histogram["sum"] / histogram["count"]
            lines.append(
                f"{key:<44s} {histogram['count']:>8d} {mean_value:>10.4g} "
                f"{p50:>10.4g} {p90:>10.4g} {p99:>10.4g} "
                f"{histogram['max']:>10.4g}"
            )

    points = manifest.get("points", [])
    if points:
        lines.append("")
        lines.append(
            f"{'#':>4s} {'status':<9s} {'seed':>5s} {'retries':>7s} "
            f"{'wall_s':>8s} {'events':>10s} {'thr_mbps':>9s} {'loss':>7s}"
        )
        for index, point in enumerate(points[:max_points]):
            metrics = point.get("metrics") or {}
            wall = point.get("wall_seconds")
            events = point.get("events_processed")
            lines.append(
                f"{index:>4d} {point.get('status', '?'):<9s} "
                f"{point.get('seed', 0):>5d} {point.get('retries', 0):>7d} "
                f"{(f'{wall:.3f}' if wall is not None else '--'):>8s} "
                f"{(f'{events:,}' if events is not None else '--'):>10s} "
                f"{metrics.get('throughput_mbps', 0.0):>9.2f} "
                f"{metrics.get('loss_rate', 0.0):>7.4f}"
            )
        if len(points) > max_points:
            lines.append(f"  ... {len(points) - max_points} more point(s)")

    quarantined = manifest.get("quarantined", [])
    if quarantined:
        lines.append("")
        lines.append("quarantined:")
        for entry in quarantined:
            last = entry["failures"][-1] if entry.get("failures") else {}
            lines.append(
                f"  #{entry.get('index')} seed={entry.get('seed')} "
                f"attempts={entry.get('attempts')} "
                f"last={last.get('kind')}: {last.get('message')}"
            )
    return "\n".join(lines)

"""Sim-time-aware tracing: lightweight events and spans.

Unlike :mod:`repro.simnet.trace` (per-packet records inside one
simulation), this tracer captures *system* activity — sweep points
starting and finishing, RPC calls, watchdog trips, pool rebuilds — and
stamps every record with both clocks: ``sim_time`` (where the simulated
world was) and ``wall_time`` (where the real one was, seconds since the
tracer's epoch).  Correlating the two is what answers questions like
"why was point #37 slow": its span shows a wall-time stall at a frozen
sim clock.

Memory is bounded: the tracer keeps at most ``capacity`` records in a
ring (oldest evicted first) and counts evictions, so tracing a
week-long sweep cannot exhaust RAM.  :meth:`Tracer.dump_jsonl` writes
the retained window as JSON lines.
"""

from __future__ import annotations

import json
import time as _time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["NullTracer", "Tracer", "load_jsonl"]


class Tracer:
    """A bounded in-memory trace with a JSONL sink.

    Parameters
    ----------
    capacity:
        Maximum retained records; older records are evicted (and
        counted in :attr:`evicted`) once the ring is full.
    """

    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._records: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.emitted = 0
        self._epoch = _time.perf_counter()

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.emitted - len(self._records)

    def _wall(self) -> float:
        return _time.perf_counter() - self._epoch

    def event(
        self,
        name: str,
        sim_time: Optional[float] = None,
        **fields: Any,
    ) -> None:
        """Record an instantaneous event keyed by ``(sim_time, wall_time)``."""
        record: Dict[str, Any] = {
            "name": name,
            "kind": "event",
            "sim_time": sim_time,
            "wall_time": self._wall(),
        }
        if fields:
            record["fields"] = fields
        self._records.append(record)
        self.emitted += 1

    @contextmanager
    def span(
        self,
        name: str,
        sim_time: Optional[float] = None,
        **fields: Any,
    ) -> Iterator[Dict[str, Any]]:
        """Record a wall-time duration: ``with tracer.span("point"): ...``.

        The record is appended when the block exits (so the trace stays
        chronological by completion) and yielded to the block, which may
        add fields to it while running.
        """
        started = self._wall()
        record: Dict[str, Any] = {
            "name": name,
            "kind": "span",
            "sim_time": sim_time,
            "wall_time": started,
        }
        if fields:
            record["fields"] = dict(fields)
        try:
            yield record
        finally:
            record["duration_s"] = self._wall() - started
            self._records.append(record)
            self.emitted += 1

    def records(self) -> List[Dict[str, Any]]:
        """The retained window, oldest first."""
        return list(self._records)

    def dump_jsonl(self, path: str) -> int:
        """Write the retained records as JSON lines; returns the count.

        The first line is a header noting how many records were emitted
        and evicted, so a truncated trace is self-describing.  Strict
        JSON (``allow_nan=False``): a NaN or infinity in a record field
        raises here rather than producing a non-interoperable artifact.
        """
        retained = list(self._records)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "name": "trace.header",
                        "kind": "header",
                        "emitted": self.emitted,
                        "evicted": self.evicted,
                        "capacity": self.capacity,
                    },
                    allow_nan=False,
                )
                + "\n"
            )
            for record in retained:
                handle.write(json.dumps(record, allow_nan=False) + "\n")
        return len(retained)

    def clear(self) -> None:
        self._records.clear()
        self.emitted = 0


def load_jsonl(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a :meth:`Tracer.dump_jsonl` artifact back: ``(header, records)``.

    The inverse of the dump: the header (empty dict if absent) plus the
    retained records in emission order, so eviction accounting and
    round-trip tests can compare against the live tracer.
    """
    header: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("kind") == "header":
                header = payload
            else:
                records.append(payload)
    return header, records


class NullTracer(Tracer):
    """The disabled tracer: events vanish, spans cost one yield."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def event(
        self,
        name: str,
        sim_time: Optional[float] = None,
        **fields: Any,
    ) -> None:
        pass

    @contextmanager
    def span(
        self,
        name: str,
        sim_time: Optional[float] = None,
        **fields: Any,
    ) -> Iterator[Dict[str, Any]]:
        yield {}

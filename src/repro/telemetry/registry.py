"""The process-wide metrics registry.

Three metric kinds, modelled on the router-side counters the paper's
operator observes the network with (§2.1):

- :class:`Counter` — monotone accumulation (events executed, packets
  dropped, RPC retries);
- :class:`Gauge` — a last-written value (heap depth, simulation clock);
- :class:`Histogram` — fixed-bucket distributions (RPC latency, link
  utilization, per-point wall time) with recoverable percentiles.

Metrics are *labeled*: ``registry.counter("link.drops", link="bottleneck")``
names a distinct child per label set.  Everything is single-writer
within a process — the simulator and its instrumentation are
single-threaded, and sweep workers are separate processes — so no locks
are taken anywhere.  Cross-process aggregation happens by value instead:
:meth:`MetricsRegistry.snapshot` produces a plain JSON-able dict and
:func:`merge_snapshots` folds any number of worker snapshots together
(counters add, gauges take the max, histograms add bucket-wise), which
is how the sweep runner combines per-worker telemetry at its
deterministic by-index merge point.

When telemetry is disabled the active registry is a
:class:`NullRegistry` whose metric objects are shared no-op singletons:
an instrumentation site pays one attribute check (``registry.enabled``)
or one empty method call, nothing else.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "UTILIZATION_BUCKETS",
    "flat_key",
    "mean",
    "merge_snapshots",
]

#: General-purpose exponential buckets (covers ~1e-4 .. ~1e4).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(base * 10.0 ** exponent, 10)
    for exponent in range(-4, 5)
    for base in (1.0, 2.5, 5.0)
)

#: RPC / wall-time latency buckets in seconds (100 us .. 100 s).
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    round(base * 10.0 ** exponent, 7)
    for exponent in range(-4, 3)
    for base in (1.0, 2.0, 5.0)
)

#: Fractional buckets for utilization-like values in [0, 1].
UTILIZATION_BUCKETS: Tuple[float, ...] = tuple(
    round(0.05 * step, 2) for step in range(1, 21)
)


def mean(values: Sequence[float], default: float = 0.0) -> float:
    """Arithmetic mean, or ``default`` for an empty sequence."""
    if not values:
        return default
    return sum(values) / len(values)


def flat_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """The canonical string form of a labeled metric: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


def _label_items(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A last-written value (plus a high-water mark)."""

    __slots__ = ("value", "peak", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.peak:
            self.peak = self.value
        self.updates += 1


class Histogram:
    """A fixed-bucket distribution with recoverable percentiles.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in an implicit overflow bucket.  Fixed (rather than
    adaptive) bounds are what make two independently-collected
    histograms mergeable bucket-wise, which the cross-process sweep
    merge depends on.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if list(chosen) != sorted(chosen):
            raise ValueError(f"bucket bounds must be sorted: {chosen}")
        if len(set(chosen)) != len(chosen):
            raise ValueError(f"bucket bounds must be distinct: {chosen}")
        self.bounds = chosen
        self.bucket_counts = [0] * (len(chosen) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0..100) from the buckets.

        Within a bucket the estimate interpolates linearly between the
        bucket's edges, clamped to the observed min/max so an estimate
        never lies outside the data; the overflow bucket reports the
        observed max.  An empty histogram reports 0.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return self.max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else min(self.min, upper)
                fraction = (rank - previous) / bucket_count
                estimate = lower + (upper - lower) * min(1.0, max(0.0, fraction))
                return min(self.max, max(self.min, estimate))
        return self.max  # pragma: no cover - defensive; loop always returns


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class MetricsRegistry:
    """Creates-or-returns labeled metrics and snapshots them.

    A metric's identity is ``(name, sorted label items)``; asking for the
    same identity twice returns the same object, so instrumentation
    sites can call ``registry.counter(...)`` every time without
    allocating.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        elif buckets is not None and tuple(buckets) != metric.bounds:
            raise ValueError(
                f"histogram {flat_key(*key)!r} already exists with bounds "
                f"{metric.bounds}, refusing {tuple(buckets)}"
            )
        return metric

    def clear(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A deterministic, JSON-able dump of every metric.

        Keys within each section are sorted, so two registries holding
        the same values serialize identically regardless of the order
        metrics were first touched in.
        """
        counters = {
            flat_key(name, labels): metric.value
            for (name, labels), metric in self._counters.items()
        }
        gauges = {
            flat_key(name, labels): {
                "value": metric.value,
                "peak": metric.peak,
                "updates": metric.updates,
            }
            for (name, labels), metric in self._gauges.items()
        }
        histograms = {
            flat_key(name, labels): {
                "bounds": list(metric.bounds),
                "bucket_counts": list(metric.bucket_counts),
                "count": metric.count,
                "sum": metric.sum,
                "min": metric.min if metric.count else None,
                "max": metric.max if metric.count else None,
            }
            for (name, labels), metric in self._histograms.items()
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


class NullRegistry(MetricsRegistry):
    """The disabled registry: every metric is a shared no-op singleton."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NOOP_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        return _NOOP_HISTOGRAM


def _merge_histogram(into: Dict[str, Any], other: Dict[str, Any], key: str) -> None:
    if into["bounds"] != other["bounds"]:
        raise ValueError(
            f"cannot merge histogram {key!r}: bounds differ "
            f"({into['bounds']} vs {other['bounds']})"
        )
    into["bucket_counts"] = [
        a + b for a, b in zip(into["bucket_counts"], other["bucket_counts"])
    ]
    into["count"] += other["count"]
    into["sum"] += other["sum"]
    for field, pick in (("min", min), ("max", max)):
        ours, theirs = into[field], other[field]
        if ours is None:
            into[field] = theirs
        elif theirs is not None:
            into[field] = pick(ours, theirs)


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold metric snapshots together into one.

    Counters add, gauges keep the maximum value/peak and total updates,
    histograms (which must share bucket bounds) add bucket-wise.  The
    fold is associative and, for two snapshots, bit-commutative (IEEE
    float addition commutes); callers that need full bit-determinism
    over many snapshots — the sweep runner — pass them in a canonical
    order (point-index order).
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0.0) + value
        for key, gauge in snapshot.get("gauges", {}).items():
            ours = merged["gauges"].get(key)
            if ours is None:
                merged["gauges"][key] = dict(gauge)
            else:
                ours["value"] = max(ours["value"], gauge["value"])
                ours["peak"] = max(ours["peak"], gauge["peak"])
                ours["updates"] += gauge["updates"]
        for key, histogram in snapshot.get("histograms", {}).items():
            ours = merged["histograms"].get(key)
            if ours is None:
                merged["histograms"][key] = {
                    "bounds": list(histogram["bounds"]),
                    "bucket_counts": list(histogram["bucket_counts"]),
                    "count": histogram["count"],
                    "sum": histogram["sum"],
                    "min": histogram["min"],
                    "max": histogram["max"],
                }
            else:
                _merge_histogram(ours, histogram, key)
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


def histogram_percentile(snapshot_histogram: Dict[str, Any], p: float) -> float:
    """Percentile estimate straight from a snapshot/manifest histogram.

    This is what makes latency percentiles *recoverable from a manifest
    without re-running*: the manifest stores the bucket counts, and this
    helper reconstructs any percentile from them.
    """
    histogram = Histogram(snapshot_histogram["bounds"])
    histogram.bucket_counts = list(snapshot_histogram["bucket_counts"])
    histogram.count = snapshot_histogram["count"]
    histogram.sum = snapshot_histogram["sum"]
    histogram.min = (
        snapshot_histogram["min"] if snapshot_histogram["min"] is not None
        else float("inf")
    )
    histogram.max = (
        snapshot_histogram["max"] if snapshot_histogram["max"] is not None
        else float("-inf")
    )
    return histogram.percentile(p)


__all__.append("histogram_percentile")

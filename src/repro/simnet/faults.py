"""Composable fault injection for links and control-plane targets.

Used by robustness tests, the diagnosis pipeline's end-to-end scenarios,
and the degraded-control-plane experiments.  Link faults are *stacked*:
every fault on a link installs a wrapper on a shared per-link delivery
chain, so overlapping faults compose and can be removed in any order —
each removal restores exactly the chain without that fault, and removing
the last fault restores the link's pristine ``_deliver`` hook.

Available faults:

- :class:`LinkOutage` — black-holes a link for a window (the
  network-level cause behind Figure 5's unreachability event).
- :class:`RandomLoss` — drops packets independently with probability
  ``p`` (a dirty fiber or lossy wireless segment).
- :class:`LinkFlap` — alternates a link between up and down, modelling a
  bouncing interface or a route withdrawing and re-announcing.
- :class:`DelaySpike` — adds extra one-way delay for a window (a
  reroute through a longer path, or bufferbloat upstream).
- :class:`ServerOutage` — takes one or more ``mark_down()``/``mark_up()``
  targets (e.g. :class:`repro.phi.channel.ControlChannel` instances)
  offline for a window; the control-plane analogue of
  :class:`LinkOutage`.  A whole replica group can be failed as one fault.
- :class:`Partition` — severs an arbitrary *set* of paths for a window:
  link paths are black-holed, control-plane targets are marked down, and
  replica-mesh edges are severed on any duck-typed mesh exposing
  ``sever(i, j)`` / ``heal(i, j)`` (in practice a
  :class:`repro.phi.replication.ReplicatedContextService`).  This is the
  chaos primitive behind the X7 partition sweep.

A :class:`FaultInjector` registry builds and tracks faults for a run so
scenarios can declare a whole fault schedule in one place.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from ..telemetry import session as _telemetry_session
from .engine import Simulator
from .link import Link
from .packet import Packet


def _record_fault_event(
    kind: str,
    now: float,
    fault: object,
    *,
    packet: Optional[Packet] = None,
) -> None:
    """Flight-recorder funnel for fault lifecycle and absorption events.

    Emits the fault's window (``start_s``/``end_s`` when it has one) so
    a post-mortem can attribute a stall to the injected fault window
    even when the dump's ring no longer holds the schedule event.  Fault
    paths are rare, so the detail dict per event is fine.
    """
    rec = _telemetry_session().flightrec
    if not rec.enabled:
        return
    detail = {"fault": type(fault).__name__}
    start_s = getattr(fault, "start_s", None)
    end_s = getattr(fault, "end_s", None)
    if start_s is not None:
        detail["start_s"] = start_s
    if end_s is not None:
        detail["end_s"] = end_s
    link = getattr(fault, "link", None)
    component = link.name if link is not None else type(fault).__name__
    if packet is None:
        rec.fault(kind, now, component, detail=detail)
    else:
        rec.fault(
            kind, now, component, packet.flow_id, packet.packet_id,
            detail=detail,
        )


class _DeliveryChain:
    """The shared stack of fault wrappers installed on one link.

    The chain replaces ``link._deliver`` exactly once, no matter how many
    faults are active; each fault occupies one slot, in installation
    order (earliest installed sees packets first).  Removing a fault
    splices it out of the chain wherever it sits, so teardown order does
    not matter; when the last fault leaves, the link's original hook is
    restored verbatim.
    """

    def __init__(self, link: Link) -> None:
        self.link = link
        # If _deliver is the plain class method (the usual case), full
        # teardown deletes the instance attribute so the link ends up
        # byte-identical to its pristine state; if something else already
        # interposed an instance-level hook, that hook is what we restore.
        self._base_is_instance_attr = "_deliver" in link.__dict__
        self._base: Callable[[Packet], None] = link._deliver
        self._faults: List["LinkFault"] = []
        self._install_counter = itertools.count()
        link._deliver = self._dispatch

    @classmethod
    def acquire(cls, link: Link) -> "_DeliveryChain":
        """The link's chain, installing one if none is active."""
        chain = getattr(link, "_fault_chain", None)
        if chain is None:
            chain = cls(link)
            link._fault_chain = chain
        return chain

    def push(self, fault: "LinkFault") -> None:
        fault._chain_seq = next(self._install_counter)
        self._faults.append(fault)

    def remove(self, fault: "LinkFault") -> None:
        self._faults.remove(fault)
        if not self._faults:
            if self._base_is_instance_attr:
                self.link._deliver = self._base
            else:
                del self.link.__dict__["_deliver"]
            del self.link._fault_chain

    def _dispatch(self, packet: Packet) -> None:
        self.forward_after(None, packet)

    def forward_after(self, fault: Optional["LinkFault"], packet: Packet) -> None:
        """Run ``packet`` through the chain below ``fault``.

        Evaluated against the *live* chain so a packet parked by one
        fault (e.g. a delay spike) still meets faults that are active
        when it resumes.  Position is tracked by install order (which
        survives removal), so the packet continues below where its fault
        sat even if that fault has since been torn down.
        """
        seq = -1 if fault is None else fault._chain_seq
        for candidate in self._faults:
            if candidate._chain_seq > seq:
                candidate.apply(
                    packet, lambda p, f=candidate: self.forward_after(f, p)
                )
                return
        self._base(packet)


class LinkFault:
    """Base class for faults that interpose on a link's delivery hook.

    Subclasses override :meth:`apply`; install/remove bookkeeping routes
    through the link's shared :class:`_DeliveryChain` so any mix of
    faults can overlap and tear down in any order.
    """

    def __init__(self, link: Link) -> None:
        self.link = link
        self._installed = False
        self._chain_seq = -1

    @property
    def installed(self) -> bool:
        """Whether this fault currently sits on the delivery chain."""
        return self._installed

    def _install(self) -> None:
        if self._installed:
            return
        _DeliveryChain.acquire(self.link).push(self)
        self._installed = True

    def _uninstall(self) -> None:
        if not self._installed:
            return
        chain = getattr(self.link, "_fault_chain", None)
        if chain is not None:
            chain.remove(self)
        self._installed = False

    def apply(self, packet: Packet, forward: Callable[[Packet], None]) -> None:
        """Process one delivery; call ``forward`` to pass it on."""
        forward(packet)  # pragma: no cover - overridden by subclasses


class LinkOutage(LinkFault):
    """Black-holes everything a link would deliver during [start, end).

    Queued and in-flight packets during the window vanish exactly as they
    would on a dead segment; packets sent after recovery flow normally.
    """

    def __init__(self, sim: Simulator, link: Link, start_s: float, duration_s: float) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if start_s < sim.now:
            raise ValueError(f"outage start {start_s} is in the past")
        super().__init__(link)
        self.sim = sim
        self.start_s = start_s
        self.duration_s = duration_s
        self.packets_blackholed = 0
        self.active = False
        sim.schedule_at(start_s, self._begin)

    @property
    def end_s(self) -> float:
        """First instant the link works again."""
        return self.start_s + self.duration_s

    def _begin(self) -> None:
        self.active = True
        self._install()
        _record_fault_event("fault_begin", self.sim.now, self)
        self.sim.schedule(self.duration_s, self._end)

    def _end(self) -> None:
        self.active = False
        self._uninstall()
        _record_fault_event("fault_end", self.sim.now, self)

    def apply(self, packet: Packet, forward: Callable[[Packet], None]) -> None:
        self.packets_blackholed += 1
        _record_fault_event("fault_absorb", self.sim.now, self, packet=packet)


class RandomLoss(LinkFault):
    """Drops each delivered packet independently with probability ``p``.

    Models loss that is not congestion (a dirty fiber, a lossy wireless
    segment); useful for testing loss-rate estimation and the informed
    adaptation policies.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        loss_probability: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0 <= loss_probability < 1:
            raise ValueError(
                f"loss probability must be in [0, 1): {loss_probability}"
            )
        super().__init__(link)
        self.sim = sim
        self.loss_probability = loss_probability
        self.rng = rng
        self.packets_dropped = 0
        self.packets_passed = 0
        self._install()

    def apply(self, packet: Packet, forward: Callable[[Packet], None]) -> None:
        if self.rng.random() < self.loss_probability:
            self.packets_dropped += 1
            _record_fault_event(
                "fault_absorb", self.sim.now, self, packet=packet
            )
            return
        self.packets_passed += 1
        forward(packet)

    def remove(self) -> None:
        """Restore the link's normal delivery (other faults unaffected)."""
        self._uninstall()

    @property
    def observed_loss_rate(self) -> float:
        """Empirical drop fraction so far."""
        total = self.packets_dropped + self.packets_passed
        if total == 0:
            return 0.0
        return self.packets_dropped / total


class LinkFlap(LinkFault):
    """A link that bounces: ``cycles`` repetitions of down/up.

    Starting at ``start_s`` the link is dead for ``down_s``, then healthy
    for ``up_s``, repeated ``cycles`` times.  Models an interface
    renegotiating or a route flapping — the pathology that stresses
    retry/backoff logic harder than a single clean outage.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        start_s: float,
        down_s: float,
        up_s: float,
        cycles: int = 1,
    ) -> None:
        if down_s <= 0 or up_s < 0:
            raise ValueError(f"invalid flap timing: down={down_s} up={up_s}")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1: {cycles}")
        if start_s < sim.now:
            raise ValueError(f"flap start {start_s} is in the past")
        super().__init__(link)
        self.sim = sim
        self.start_s = start_s
        self.down_s = down_s
        self.up_s = up_s
        self.cycles = cycles
        self.down = False
        self.transitions = 0
        self.packets_blackholed = 0
        self._remaining = cycles
        sim.schedule_at(start_s, self._go_down)

    @property
    def end_s(self) -> float:
        """When the last cycle completes and the link stays up."""
        return self.start_s + self.cycles * (self.down_s + self.up_s)

    def _go_down(self) -> None:
        self.down = True
        self.transitions += 1
        self._install()
        _record_fault_event("fault_begin", self.sim.now, self)
        self.sim.schedule(self.down_s, self._go_up)

    def _go_up(self) -> None:
        self.down = False
        self.transitions += 1
        self._remaining -= 1
        self._uninstall()
        _record_fault_event("fault_end", self.sim.now, self)
        if self._remaining > 0:
            self.sim.schedule(self.up_s, self._go_down)

    def apply(self, packet: Packet, forward: Callable[[Packet], None]) -> None:
        self.packets_blackholed += 1
        _record_fault_event("fault_absorb", self.sim.now, self, packet=packet)


class DelaySpike(LinkFault):
    """Adds ``extra_delay_s`` to every delivery during [start, end).

    Models a transient reroute through a longer path or upstream
    bufferbloat: packets still arrive, late.  Parked packets are released
    through whatever faults are active below this one when they resume,
    so a spike composing with an outage behaves like the real world — a
    late packet arriving into a dead link is still lost.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        start_s: float,
        duration_s: float,
        extra_delay_s: float,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if extra_delay_s <= 0:
            raise ValueError(f"extra delay must be positive: {extra_delay_s}")
        if start_s < sim.now:
            raise ValueError(f"spike start {start_s} is in the past")
        super().__init__(link)
        self.sim = sim
        self.start_s = start_s
        self.duration_s = duration_s
        self.extra_delay_s = extra_delay_s
        self.packets_delayed = 0
        self.active = False
        sim.schedule_at(start_s, self._begin)

    @property
    def end_s(self) -> float:
        """First instant deliveries are prompt again."""
        return self.start_s + self.duration_s

    def _begin(self) -> None:
        self.active = True
        self._install()
        _record_fault_event("fault_begin", self.sim.now, self)
        self.sim.schedule(self.duration_s, self._end)

    def _end(self) -> None:
        self.active = False
        self._uninstall()
        _record_fault_event("fault_end", self.sim.now, self)

    def apply(self, packet: Packet, forward: Callable[[Packet], None]) -> None:
        self.packets_delayed += 1
        _record_fault_event("fault_delay", self.sim.now, self, packet=packet)
        self.sim.schedule(self.extra_delay_s, forward, packet)


class Outageable(Protocol):
    """Anything that can be taken down and brought back (duck-typed so
    :mod:`repro.simnet` never imports the control-plane layer)."""

    def mark_down(self) -> None:  # pragma: no cover - protocol
        ...

    def mark_up(self) -> None:  # pragma: no cover - protocol
        ...


class ServerOutage:
    """Takes control-plane targets offline during [start, end).

    ``target`` is anything exposing ``mark_down()`` / ``mark_up()`` —
    in practice a :class:`repro.phi.channel.ControlChannel` — or a
    sequence of such targets, so a whole replica group fails (and heals)
    as one fault.  Overlapping outages compose: the channel counts
    down-marks, so a target comes back only when every overlapping
    outage has ended.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Union[Outageable, Sequence[Outageable]],
        start_s: float,
        duration_s: float,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if start_s < sim.now:
            raise ValueError(f"outage start {start_s} is in the past")
        targets: Tuple[Outageable, ...]
        if isinstance(target, (list, tuple)):
            targets = tuple(target)
        else:
            targets = (target,)
        if not targets:
            raise ValueError("ServerOutage needs at least one target")
        self.sim = sim
        self.targets = targets
        #: First target, kept for the original single-target API.
        self.target = targets[0]
        self.start_s = start_s
        self.duration_s = duration_s
        self.active = False
        sim.schedule_at(start_s, self._begin)

    @property
    def end_s(self) -> float:
        """First instant this outage no longer holds the targets down."""
        return self.start_s + self.duration_s

    def _begin(self) -> None:
        self.active = True
        for target in self.targets:
            target.mark_down()
        _record_fault_event("fault_begin", self.sim.now, self)
        self.sim.schedule(self.duration_s, self._end)

    def _end(self) -> None:
        self.active = False
        for target in self.targets:
            target.mark_up()
        _record_fault_event("fault_end", self.sim.now, self)


class ReplicaMesh(Protocol):
    """Anything whose inter-replica edges can be severed and healed
    (duck-typed so :mod:`repro.simnet` never imports the control-plane
    layer; in practice a
    :class:`repro.phi.replication.ReplicatedContextService`)."""

    def sever(self, i: int, j: int) -> None:  # pragma: no cover - protocol
        ...

    def heal(self, i: int, j: int) -> None:  # pragma: no cover - protocol
        ...


class _PartitionLeg(LinkFault):
    """One link black-holed by a :class:`Partition` while it is active.

    Carries the owning partition's window so absorption events dumped
    from the flight recorder attribute to the partition's [start, end).
    """

    def __init__(
        self,
        link: Link,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> None:
        super().__init__(link)
        self.packets_blackholed = 0
        self.start_s = start_s
        self.end_s = end_s

    def apply(self, packet: Packet, forward: Callable[[Packet], None]) -> None:
        self.packets_blackholed += 1
        _record_fault_event(
            "fault_absorb", self.link.sim.now, self, packet=packet
        )


class Partition:
    """Severs a set of paths during [start, end), healing them together.

    A network partition is rarely one dead link: it cuts a *set* of
    paths at once — data-plane links, sender↔replica control channels,
    and replica↔replica gossip edges — and heals them together.  This
    fault models that as one schedulable unit:

    - every link in ``links`` is black-holed (stacking on the link's
      delivery chain, so it composes with :class:`LinkFlap`,
      :class:`DelaySpike`, ... exactly like :class:`LinkOutage`);
    - every control-plane target in ``targets`` is ``mark_down()``-ed
      (nesting with :class:`ServerOutage` via the down-mark counter);
    - every ``(i, j)`` pair in ``edges`` is severed on ``mesh`` so
      replicas stop anti-entropy merging across the cut.
    """

    def __init__(
        self,
        sim: Simulator,
        start_s: float,
        duration_s: float,
        *,
        links: Sequence[Link] = (),
        targets: Sequence[Outageable] = (),
        mesh: Optional[ReplicaMesh] = None,
        edges: Sequence[Tuple[int, int]] = (),
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if start_s < sim.now:
            raise ValueError(f"partition start {start_s} is in the past")
        if edges and mesh is None:
            raise ValueError("severing mesh edges requires a mesh")
        if not (links or targets or edges):
            raise ValueError("a partition must sever at least one path")
        self.sim = sim
        self.start_s = start_s
        self.duration_s = duration_s
        self.targets = tuple(targets)
        self.mesh = mesh
        self.edges = tuple(tuple(edge) for edge in edges)
        end_s = start_s + duration_s
        self._legs = [_PartitionLeg(link, start_s, end_s) for link in links]
        self.active = False
        self.heals = 0
        sim.schedule_at(start_s, self._begin)

    @property
    def end_s(self) -> float:
        """First instant every severed path works again."""
        return self.start_s + self.duration_s

    @property
    def packets_blackholed(self) -> int:
        """Data-plane packets lost into the severed links so far."""
        return sum(leg.packets_blackholed for leg in self._legs)

    def _begin(self) -> None:
        self.active = True
        for leg in self._legs:
            leg._install()
        for target in self.targets:
            target.mark_down()
        for i, j in self.edges:
            self.mesh.sever(i, j)
        _record_fault_event("fault_begin", self.sim.now, self)
        self.sim.schedule(self.duration_s, self._end)

    def _end(self) -> None:
        self.active = False
        self.heals += 1
        for leg in self._legs:
            leg._uninstall()
        for target in self.targets:
            target.mark_up()
        for i, j in self.edges:
            self.mesh.heal(i, j)
        _record_fault_event("fault_end", self.sim.now, self)


class FaultInjector:
    """A registry that builds and tracks a run's fault schedule.

    Scenario code declares every planned failure through one injector so
    the full chaos schedule is inspectable in one place (and so sweeps
    can report what they injected alongside what they measured).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.faults: List[object] = []

    def add(self, fault):
        """Track an externally-constructed fault; returns it."""
        self.faults.append(fault)
        _record_fault_event("fault_scheduled", self.sim.now, fault)
        return fault

    def link_outage(self, link: Link, start_s: float, duration_s: float) -> LinkOutage:
        return self.add(LinkOutage(self.sim, link, start_s, duration_s))

    def random_loss(
        self, link: Link, loss_probability: float, rng: np.random.Generator
    ) -> RandomLoss:
        return self.add(RandomLoss(self.sim, link, loss_probability, rng))

    def link_flap(
        self, link: Link, start_s: float, down_s: float, up_s: float, cycles: int = 1
    ) -> LinkFlap:
        return self.add(LinkFlap(self.sim, link, start_s, down_s, up_s, cycles))

    def delay_spike(
        self, link: Link, start_s: float, duration_s: float, extra_delay_s: float
    ) -> DelaySpike:
        return self.add(DelaySpike(self.sim, link, start_s, duration_s, extra_delay_s))

    def server_outage(
        self,
        target: Union[Outageable, Sequence[Outageable]],
        start_s: float,
        duration_s: float,
    ) -> ServerOutage:
        return self.add(ServerOutage(self.sim, target, start_s, duration_s))

    def partition(
        self,
        start_s: float,
        duration_s: float,
        *,
        links: Sequence[Link] = (),
        targets: Sequence[Outageable] = (),
        mesh: Optional[ReplicaMesh] = None,
        edges: Sequence[Tuple[int, int]] = (),
    ) -> Partition:
        return self.add(
            Partition(
                self.sim,
                start_s,
                duration_s,
                links=links,
                targets=targets,
                mesh=mesh,
                edges=edges,
            )
        )

    def active_faults(self) -> List[object]:
        """Faults currently interposing (installed link faults or active windows)."""
        out = []
        for fault in self.faults:
            if isinstance(fault, LinkFault):
                if fault.installed:
                    out.append(fault)
            elif getattr(fault, "active", False):
                out.append(fault)
        return out

"""Fault injection: link outages and random packet corruption.

Used by robustness tests and the diagnosis pipeline's end-to-end
scenarios: a :class:`LinkOutage` makes a link black-hole packets for a
window (the network-level cause behind Figure 5's unreachability event),
and :class:`RandomLoss` models a lossy segment independent of queueing.
"""

from __future__ import annotations


import numpy as np

from .engine import Simulator
from .link import Link
from .packet import Packet


class LinkOutage:
    """Black-holes everything a link would deliver during [start, end).

    Implemented by wrapping the link's delivery hook, so queued and
    in-flight packets during the window vanish exactly as they would on a
    dead segment; packets sent after recovery flow normally.
    """

    def __init__(self, sim: Simulator, link: Link, start_s: float, duration_s: float) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if start_s < sim.now:
            raise ValueError(f"outage start {start_s} is in the past")
        self.sim = sim
        self.link = link
        self.start_s = start_s
        self.duration_s = duration_s
        self.packets_blackholed = 0
        self.active = False
        self._original_deliver = link._deliver
        sim.schedule_at(start_s, self._begin)

    @property
    def end_s(self) -> float:
        """First instant the link works again."""
        return self.start_s + self.duration_s

    def _begin(self) -> None:
        self.active = True
        self.link._deliver = self._blackhole
        self.sim.schedule(self.duration_s, self._end)

    def _blackhole(self, packet: Packet) -> None:
        self.packets_blackholed += 1

    def _end(self) -> None:
        self.active = False
        self.link._deliver = self._original_deliver


class RandomLoss:
    """Drops each delivered packet independently with probability ``p``.

    Models loss that is not congestion (a dirty fiber, a lossy wireless
    segment); useful for testing loss-rate estimation and the informed
    adaptation policies.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        loss_probability: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0 <= loss_probability < 1:
            raise ValueError(
                f"loss probability must be in [0, 1): {loss_probability}"
            )
        self.sim = sim
        self.link = link
        self.loss_probability = loss_probability
        self.rng = rng
        self.packets_dropped = 0
        self.packets_passed = 0
        self._original_deliver = link._deliver
        link._deliver = self._maybe_drop

    def _maybe_drop(self, packet: Packet) -> None:
        if self.rng.random() < self.loss_probability:
            self.packets_dropped += 1
            return
        self.packets_passed += 1
        self._original_deliver(packet)

    def remove(self) -> None:
        """Restore the link's normal delivery."""
        self.link._deliver = self._original_deliver

    @property
    def observed_loss_rate(self) -> float:
        """Empirical drop fraction so far."""
        total = self.packets_dropped + self.packets_passed
        if total == 0:
            return 0.0
        return self.packets_dropped / total

"""Network nodes: hosts and routers.

A :class:`Host` terminates flows — transport agents register on it by
flow id and receive the packets addressed to them.  A :class:`Router`
forwards by longest-match-free exact destination lookup (sufficient for
the paper's dumbbell and parking-lot topologies, where every host has a
unique address).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from .link import Link
from .packet import Packet


class PacketHandler(Protocol):
    """Anything that can accept a delivered packet."""

    def handle_packet(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class Node:
    """Base class for anything attached to links."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.packets_received = 0

    def receive(self, packet: Packet, link: Link) -> None:
        """Handle a packet delivered by ``link``."""
        raise NotImplementedError


class Host(Node):
    """An end host: the source or sink of flows.

    Transport agents register per flow id.  Outbound traffic goes through
    the single uplink unless an explicit route is set for a destination.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._agents: Dict[int, PacketHandler] = {}
        self._uplink: Optional[Link] = None
        self._routes: Dict[str, Link] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        self.packets_discarded = 0

    def set_uplink(self, link: Link) -> None:
        """Set the default outbound link."""
        self._uplink = link

    def add_route(self, dst: str, link: Link) -> None:
        """Route traffic for ``dst`` via ``link`` (overrides the uplink)."""
        self._routes[dst] = link

    def register_agent(self, flow_id: int, agent: PacketHandler) -> None:
        """Deliver packets of ``flow_id`` to ``agent``."""
        if flow_id in self._agents:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._agents[flow_id] = agent

    def unregister_agent(self, flow_id: int) -> None:
        """Stop delivering packets of ``flow_id``."""
        self._agents.pop(flow_id, None)

    def set_default_handler(self, handler: Callable[[Packet], None]) -> None:
        """Catch packets whose flow has no registered agent."""
        self._default_handler = handler

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` toward its destination."""
        link = self._routes.get(packet.dst, self._uplink)
        if link is None:
            raise RuntimeError(f"host {self.name} has no route to {packet.dst}")
        link.send(packet)

    def receive(self, packet: Packet, link: Link) -> None:
        self.packets_received += 1
        agent = self._agents.get(packet.flow_id)
        if agent is not None:
            agent.handle_packet(packet)
        elif self._default_handler is not None:
            self._default_handler(packet)
        else:
            # Packets for unknown flows with no default handler are
            # discarded, matching what a real host does for closed ports;
            # counted so conservation audits can account for them.
            self.packets_discarded += 1


class Router(Node):
    """A store-and-forward router with an exact-destination routing table."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._table: Dict[str, Link] = {}
        self._default: Optional[Link] = None
        self.packets_forwarded = 0
        self.packets_unroutable = 0

    def add_route(self, dst: str, link: Link) -> None:
        """Forward packets destined to ``dst`` via ``link``."""
        self._table[dst] = link

    def set_default_route(self, link: Link) -> None:
        """Forward packets with no explicit route via ``link``."""
        self._default = link

    def route_for(self, dst: str) -> Optional[Link]:
        """The link used for ``dst``, or None if unroutable."""
        return self._table.get(dst, self._default)

    def receive(self, packet: Packet, link: Link) -> None:
        self.packets_received += 1
        out = self.route_for(packet.dst)
        if out is None:
            self.packets_unroutable += 1
            return
        self.packets_forwarded += 1
        out.send(packet)

"""Structured event tracing (legacy; superseded by :mod:`repro.flightrec`).

An ns-2-style trace facility: components emit typed records (packet
enqueued/dequeued/dropped/delivered, flow started/finished, cwnd
changes) to a :class:`Tracer`, which retains them in memory and can dump
them as JSON-lines.  Analysis helpers turn a trace into time series for
debugging and for the examples' plots.

Tracing is opt-in and zero-cost when no tracer is attached (the hooks
are plain ``None`` checks on the hot path).

.. deprecated::
    The per-event ring bookkeeping here is superseded by the
    session-scoped flight recorder (:mod:`repro.flightrec`), whose
    direct instrumentation in the link, queue, transport, and phi
    layers captures every kind this tracer knows about — with bounded
    per-layer rings and packet ids — without attaching anything.  This
    module stays for its query/plotting helpers and existing callers;
    construct a :class:`Tracer` with ``bridge=True`` to additionally
    forward its records onto the active flight recorder so legacy
    pipelines land in the same unified dump.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, TextIO

from ..telemetry import session as _telemetry_session

#: Legacy kinds that map onto the flight recorder's transport layer;
#: everything else bridges to the simnet layer.
_TRANSPORT_KINDS = frozenset({"flow_start", "flow_end", "cwnd"})


class TraceEventType(Enum):
    """What happened."""

    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"
    DROP = "drop"
    DELIVER = "deliver"
    FLOW_START = "flow_start"
    FLOW_END = "flow_end"
    CWND = "cwnd"
    CUSTOM = "custom"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    kind: TraceEventType
    component: str
    flow_id: int = 0
    value: float = 0.0
    detail: str = ""

    def to_json(self) -> str:
        """One JSON line."""
        payload = asdict(self)
        payload["kind"] = self.kind.value
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(line)
        payload["kind"] = TraceEventType(payload["kind"])
        return cls(**payload)


class Tracer:
    """Collects trace events, optionally bounded and filtered."""

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        max_events: Optional[int] = None,
        kinds: Optional[Iterable[TraceEventType]] = None,
        bridge: bool = False,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        self._clock = clock
        self.max_events = max_events
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.events: List[TraceEvent] = []
        self.dropped_records = 0
        #: Forward each record onto the session flight recorder (see the
        #: module deprecation note).  Off by default: runs using the
        #: direct flightrec instrumentation would double-record.
        self.bridge = bridge

    def emit(
        self,
        kind: TraceEventType,
        component: str,
        *,
        flow_id: int = 0,
        value: float = 0.0,
        detail: str = "",
    ) -> None:
        """Record one event (subject to the kind filter and size bound)."""
        if self._kinds is not None and kind not in self._kinds:
            return
        if self.bridge:
            rec = _telemetry_session().flightrec
            if rec.enabled:
                t = self._clock()
                if kind.value in _TRANSPORT_KINDS:
                    rec.transport(
                        kind.value, t, flow_id, value,
                        detail={"legacy": component} if detail == "" else
                        {"legacy": component, "note": detail},
                    )
                else:
                    rec.simnet(
                        kind.value, t, component, flow_id,
                        detail={"note": detail} if detail else None,
                    )
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_records += 1
            return
        self.events.append(
            TraceEvent(
                time=self._clock(),
                kind=kind,
                component=component,
                flow_id=flow_id,
                value=value,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: TraceEventType) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def for_flow(self, flow_id: int) -> List[TraceEvent]:
        """All events of one flow, in time order."""
        return [e for e in self.events if e.flow_id == flow_id]

    def series(
        self, kind: TraceEventType, component: Optional[str] = None
    ) -> List[tuple]:
        """(time, value) pairs for plotting, e.g. a cwnd trajectory."""
        return [
            (e.time, e.value)
            for e in self.events
            if e.kind is kind and (component is None or e.component == component)
        ]

    def counts_by_kind(self) -> Dict[TraceEventType, int]:
        """Event tallies."""
        counts: Dict[TraceEventType, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dump(self, stream: TextIO) -> int:
        """Write all events as JSON lines; returns the count written."""
        for event in self.events:
            stream.write(event.to_json())
            stream.write("\n")
        return len(self.events)

    @classmethod
    def load(cls, stream: TextIO, clock: Callable[[], float] = lambda: 0.0) -> "Tracer":
        """Read a dumped trace back."""
        tracer = cls(clock)
        for line in stream:
            line = line.strip()
            if line:
                tracer.events.append(TraceEvent.from_json(line))
        return tracer


class TracedSenderMixin:
    """Mixin for TcpSender subclasses that logs cwnd on every change.

    .. deprecated::
        The flight recorder's direct :class:`~repro.transport.base.TcpSender`
        instrumentation records cwnd/recovery/RTO edges for every sender
        without a mixin; prefer ``repro.flightrec.use()`` for new code.

    Usage::

        class TracedCubic(TracedSenderMixin, CubicSender):
            pass

        sender = TracedCubic(..., tracer=tracer)
    """

    def __init__(self, *args, tracer: Optional[Tracer] = None, **kwargs) -> None:
        self._tracer = tracer
        super().__init__(*args, **kwargs)
        self._trace_cwnd()

    def _trace_cwnd(self) -> None:
        if self._tracer is not None:
            self._tracer.emit(
                TraceEventType.CWND,
                f"flow-{self.spec.flow_id}",
                flow_id=self.spec.flow_id,
                value=self.cwnd,
            )

    def _grow_window(self, acked_segments: float) -> None:
        super()._grow_window(acked_segments)
        self._trace_cwnd()

    def _on_loss_event(self) -> None:
        super()._on_loss_event()
        self._trace_cwnd()

    def _on_timeout_event(self) -> None:
        super()._on_timeout_event()
        self._trace_cwnd()


def attach_queue_tracing(queue, tracer: Tracer, component: str):
    """Wrap a queue's enqueue/dequeue to emit trace events.

    Returns the queue (hooks installed in place).
    """
    original_enqueue = queue.enqueue
    original_dequeue = queue.dequeue

    def traced_enqueue(packet):
        accepted = original_enqueue(packet)
        kind = TraceEventType.ENQUEUE if accepted else TraceEventType.DROP
        tracer.emit(kind, component, flow_id=packet.flow_id,
                    value=float(queue.bytes_queued))
        return accepted

    def traced_dequeue():
        packet = original_dequeue()
        if packet is not None:
            tracer.emit(TraceEventType.DEQUEUE, component,
                        flow_id=packet.flow_id,
                        value=float(queue.bytes_queued))
        return packet

    queue.enqueue = traced_enqueue
    queue.dequeue = traced_dequeue
    return queue

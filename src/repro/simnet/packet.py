"""Packet and flow-identification primitives.

Packets are lightweight mutable objects; a simulation at 15 Mbps for a few
hundred simulated seconds creates hundreds of thousands of them, so the
class uses ``__slots__`` and avoids per-packet dict allocations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

#: Maximum segment size used throughout the reproduction, in bytes.  The
#: paper's ns-2 experiments use 1000-byte packets plus a 40-byte header;
#: we use the common 1500-byte MTU convention with a 1460-byte MSS.
MSS_BYTES = 1460

#: Bytes of TCP/IP header accounted per segment.
HEADER_BYTES = 40

#: Size of a pure ACK packet, in bytes.
ACK_BYTES = 40


class PacketKind(Enum):
    """What a packet carries."""

    DATA = "data"
    ACK = "ack"


FlowKey = Tuple[str, int, str, int]
"""The classic 4-tuple <src ip, src port, dst ip, dst port>."""


_packet_ids = itertools.count(1)


class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow_id:
        Integer id of the owning flow (dense, assigned by the flow factory).
    seq:
        For DATA: byte offset of the first payload byte.  For ACK: the
        cumulative acknowledgement (next expected byte).
    size_bytes:
        Wire size, including headers; used for serialization and queueing.
    sent_at:
        Time the packet left the sender (stamped by the transport agent).
    enqueued_at:
        Time the packet entered the bottleneck queue (stamped by queues for
        queueing-delay accounting).
    """

    __slots__ = (
        "packet_id",
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size_bytes",
        "payload_bytes",
        "sent_at",
        "enqueued_at",
        "echo_timestamp",
        "is_retransmit",
        "priority",
        "hops",
        "sack_blocks",
    )

    def __init__(
        self,
        kind: PacketKind,
        flow_id: int,
        src: str,
        dst: str,
        seq: int,
        payload_bytes: int,
        *,
        sent_at: float = 0.0,
        is_retransmit: bool = False,
        priority: int = 0,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.size_bytes = (
            payload_bytes + HEADER_BYTES if kind is PacketKind.DATA else ACK_BYTES
        )
        self.sent_at = sent_at
        self.enqueued_at = 0.0
        # None means "no timestamp echoed", which is distinct from a
        # legitimate echo of 0.0 (a packet sent at sim time zero) — see
        # TcpSender._process_ack, which must RTT-sample the latter.
        self.echo_timestamp: Optional[float] = None
        self.is_retransmit = is_retransmit
        self.priority = priority
        self.hops = 0
        # SACK blocks on ACKs: received byte ranges above the cumulative
        # ACK, as (start, end) tuples (RFC 2018, up to 4 blocks).
        self.sack_blocks: Tuple[Tuple[int, int], ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind.value} flow={self.flow_id} seq={self.seq} "
            f"{self.size_bytes}B {self.src}->{self.dst})"
        )


def make_data_packet(
    flow_id: int,
    src: str,
    dst: str,
    seq: int,
    payload_bytes: int = MSS_BYTES,
    *,
    sent_at: float = 0.0,
    is_retransmit: bool = False,
    priority: int = 0,
) -> Packet:
    """Construct a DATA packet."""
    return Packet(
        PacketKind.DATA,
        flow_id,
        src,
        dst,
        seq,
        payload_bytes,
        sent_at=sent_at,
        is_retransmit=is_retransmit,
        priority=priority,
    )


def make_ack_packet(
    flow_id: int,
    src: str,
    dst: str,
    cumulative_ack: int,
    *,
    echo_timestamp: Optional[float] = None,
) -> Packet:
    """Construct an ACK packet acknowledging all bytes below ``cumulative_ack``."""
    packet = Packet(PacketKind.ACK, flow_id, src, dst, cumulative_ack, 0)
    packet.echo_timestamp = echo_timestamp
    return packet


@dataclass(frozen=True)
class FlowSpec:
    """Static description of a flow: its 4-tuple and identity."""

    flow_id: int
    src: str
    src_port: int
    dst: str
    dst_port: int

    @property
    def key(self) -> FlowKey:
        """The <src ip, src port, dst ip, dst port> 4-tuple."""
        return (self.src, self.src_port, self.dst, self.dst_port)

    def reversed(self) -> "FlowSpec":
        """The flow spec of the reverse (ACK) direction."""
        return FlowSpec(
            flow_id=self.flow_id,
            src=self.dst,
            src_port=self.dst_port,
            dst=self.src,
            dst_port=self.src_port,
        )


class FlowIdAllocator:
    """Dense allocator for flow ids, one per simulation."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next_id(self) -> int:
        """Return a fresh flow id."""
        return next(self._counter)


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (used by tests for determinism)."""
    global _packet_ids
    _packet_ids = itertools.count(1)

"""Discrete-event network simulator substrate (the reproduction's "ns-2").

Public surface:

- :class:`Simulator` — the event loop.
- :class:`Packet`, :data:`MSS_BYTES` — wire units.
- :class:`DropTailQueue`, :class:`PriorityQueue` — queueing disciplines.
- :class:`Link` — serialization + propagation.
- :class:`Host`, :class:`Router` — nodes.
- :class:`DumbbellTopology`, :class:`DumbbellConfig` — the Figure-1 network.
- :class:`LinkMonitor`, :class:`ActiveFlowTracker` — instrumentation.
- :class:`RngStreams` — deterministic randomness.
"""

from .engine import EventHandle, SimulationError, Simulator
from .faults import (
    DelaySpike,
    FaultInjector,
    LinkFault,
    LinkFlap,
    LinkOutage,
    Partition,
    RandomLoss,
    ServerOutage,
)
from .link import Link, bdp_bytes
from .red import RedQueue
from .monitor import ActiveFlowTracker, LinkMonitor, LinkSample
from .node import Host, Node, Router
from .packet import (
    ACK_BYTES,
    HEADER_BYTES,
    MSS_BYTES,
    FlowIdAllocator,
    FlowSpec,
    Packet,
    PacketKind,
    make_ack_packet,
    make_data_packet,
)
from .queues import DropTailQueue, PriorityQueue, QueueStats
from .random import RngStreams, exponential
from .trace import (
    TraceEvent,
    TraceEventType,
    TracedSenderMixin,
    Tracer,
    attach_queue_tracing,
)
from .topology import (
    DEFAULT_ACCESS_BANDWIDTH_BPS,
    PAPER_BUFFER_BDP_MULTIPLE,
    DumbbellConfig,
    DumbbellTopology,
    ParkingLotTopology,
    SenderReceiverPair,
)

__all__ = [
    "ACK_BYTES",
    "DEFAULT_ACCESS_BANDWIDTH_BPS",
    "HEADER_BYTES",
    "MSS_BYTES",
    "PAPER_BUFFER_BDP_MULTIPLE",
    "ActiveFlowTracker",
    "DelaySpike",
    "DropTailQueue",
    "DumbbellConfig",
    "DumbbellTopology",
    "EventHandle",
    "FaultInjector",
    "FlowIdAllocator",
    "FlowSpec",
    "Host",
    "Link",
    "LinkFault",
    "LinkFlap",
    "LinkMonitor",
    "LinkOutage",
    "LinkSample",
    "RandomLoss",
    "RedQueue",
    "Node",
    "Partition",
    "ServerOutage",
    "Packet",
    "PacketKind",
    "ParkingLotTopology",
    "PriorityQueue",
    "QueueStats",
    "RngStreams",
    "Router",
    "SenderReceiverPair",
    "SimulationError",
    "Simulator",
    "TraceEvent",
    "TraceEventType",
    "TracedSenderMixin",
    "Tracer",
    "attach_queue_tracing",
    "bdp_bytes",
    "exponential",
    "make_ack_packet",
    "make_data_packet",
]

"""Topology builders.

:class:`DumbbellTopology` reproduces Figure 1 of the paper: N senders and
N receivers joined by two routers and a single bottleneck link whose
buffer is sized at 5x the bottleneck bandwidth-delay product.
A parking-lot builder is included for multi-bottleneck extension
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .engine import Simulator
from .link import Link, bdp_bytes
from .node import Host, Router
from .queues import DropTailQueue, PriorityQueue

#: Default access-link speed: fast enough never to be the bottleneck.
DEFAULT_ACCESS_BANDWIDTH_BPS = 1_000_000_000.0

#: The paper sizes the bottleneck buffer at 5x the bandwidth-delay product.
PAPER_BUFFER_BDP_MULTIPLE = 5.0


@dataclass
class DumbbellConfig:
    """Parameters of the Figure-1 dumbbell.

    The paper's Table 3 topology is the default: a 15 Mbps bottleneck and a
    150 ms round-trip time.  The RTT budget is split so the bottleneck link
    carries most of the one-way propagation delay and the access links a
    small remainder, as is conventional for dumbbell setups.
    """

    n_senders: int = 8
    bottleneck_bandwidth_bps: float = 15_000_000.0
    rtt_s: float = 0.150
    buffer_bdp_multiple: float = PAPER_BUFFER_BDP_MULTIPLE
    access_bandwidth_bps: float = DEFAULT_ACCESS_BANDWIDTH_BPS
    access_delay_fraction: float = 0.1
    priority_queue: bool = False

    def __post_init__(self) -> None:
        if self.n_senders <= 0:
            raise ValueError(f"n_senders must be positive, got {self.n_senders}")
        if self.rtt_s <= 0:
            raise ValueError(f"rtt_s must be positive, got {self.rtt_s}")
        if not 0 <= self.access_delay_fraction < 0.5:
            raise ValueError(
                "access_delay_fraction must be in [0, 0.5), got "
                f"{self.access_delay_fraction}"
            )

    @property
    def one_way_delay_s(self) -> float:
        """Total one-way propagation delay (half the RTT)."""
        return self.rtt_s / 2.0

    @property
    def bottleneck_delay_s(self) -> float:
        """One-way propagation delay of the bottleneck link."""
        return self.one_way_delay_s * (1.0 - 2.0 * self.access_delay_fraction)

    @property
    def access_delay_s(self) -> float:
        """One-way propagation delay of each access link."""
        return self.one_way_delay_s * self.access_delay_fraction

    @property
    def buffer_bytes(self) -> int:
        """Bottleneck buffer size: ``buffer_bdp_multiple`` x BDP."""
        return max(
            1,
            int(
                self.buffer_bdp_multiple
                * bdp_bytes(self.bottleneck_bandwidth_bps, self.rtt_s)
            ),
        )


class DumbbellTopology:
    """The Figure-1 network: senders -- R1 ==bottleneck== R2 -- receivers.

    The forward bottleneck (R1->R2) carries data; the reverse link
    (R2->R1) carries ACKs and is provisioned identically so that ACKs are
    never the constraint in these workloads.
    """

    def __init__(self, sim: Simulator, config: Optional[DumbbellConfig] = None) -> None:
        self.sim = sim
        self.config = config if config is not None else DumbbellConfig()
        cfg = self.config

        self.left_router = Router("R1")
        self.right_router = Router("R2")
        self.senders: List[Host] = []
        self.receivers: List[Host] = []

        queue_cls = PriorityQueue if cfg.priority_queue else DropTailQueue
        self.bottleneck_queue = queue_cls(cfg.buffer_bytes, lambda: sim.now)
        self.bottleneck = Link(
            sim,
            "bottleneck",
            cfg.bottleneck_bandwidth_bps,
            cfg.bottleneck_delay_s,
            self.bottleneck_queue,
        )
        self.bottleneck.attach(self.right_router)

        self.reverse_queue = DropTailQueue(cfg.buffer_bytes, lambda: sim.now)
        self.reverse = Link(
            sim,
            "bottleneck-reverse",
            cfg.bottleneck_bandwidth_bps,
            cfg.bottleneck_delay_s,
            self.reverse_queue,
        )
        self.reverse.attach(self.left_router)

        self._links: Dict[str, Link] = {
            self.bottleneck.name: self.bottleneck,
            self.reverse.name: self.reverse,
        }

        for index in range(cfg.n_senders):
            self._add_sender_pair(index)

    def _add_sender_pair(self, index: int) -> None:
        cfg = self.config
        sender = Host(f"s{index}")
        receiver = Host(f"r{index}")

        up = Link(
            self.sim,
            f"access-s{index}",
            cfg.access_bandwidth_bps,
            cfg.access_delay_s,
        )
        up.attach(self.left_router)
        sender.set_uplink(up)

        down = Link(
            self.sim,
            f"access-r{index}-down",
            cfg.access_bandwidth_bps,
            cfg.access_delay_s,
        )
        down.attach(receiver)
        self.right_router.add_route(receiver.name, down)

        # Reverse path for ACKs: receiver -> R2 -> (reverse bottleneck) -> R1 -> sender.
        back_up = Link(
            self.sim,
            f"access-r{index}-up",
            cfg.access_bandwidth_bps,
            cfg.access_delay_s,
        )
        back_up.attach(self.right_router)
        receiver.set_uplink(back_up)

        back_down = Link(
            self.sim,
            f"access-s{index}-down",
            cfg.access_bandwidth_bps,
            cfg.access_delay_s,
        )
        back_down.attach(sender)
        self.left_router.add_route(sender.name, back_down)

        self.left_router.set_default_route(self.bottleneck)
        self.right_router.set_default_route(self.reverse)
        self.right_router.add_route(receiver.name, down)
        self.left_router.add_route(sender.name, back_down)

        for link in (up, down, back_up, back_down):
            self._links[link.name] = link

        self.senders.append(sender)
        self.receivers.append(receiver)

    @property
    def links(self) -> Dict[str, Link]:
        """All links by name."""
        return dict(self._links)

    def pair(self, index: int) -> "SenderReceiverPair":
        """The (sender, receiver) host pair for slot ``index``."""
        return SenderReceiverPair(self.senders[index], self.receivers[index])


@dataclass(frozen=True)
class SenderReceiverPair:
    """A matched sender/receiver host pair on the dumbbell."""

    sender: Host
    receiver: Host


class ParkingLotTopology:
    """A chain of routers with per-hop cross traffic entry points.

    Used by extension experiments to show that Phi's congestion-context
    abstraction is not specific to a single bottleneck.  Hosts ``s0..s{n}``
    send to ``r0..r{n}``; flow *i* enters at router *i* and exits at the
    last router, so later hops aggregate more flows.
    """

    def __init__(
        self,
        sim: Simulator,
        n_hops: int,
        hop_bandwidth_bps: float = 10_000_000.0,
        hop_delay_s: float = 0.01,
        buffer_bdp_multiple: float = PAPER_BUFFER_BDP_MULTIPLE,
    ) -> None:
        if n_hops < 1:
            raise ValueError(f"n_hops must be >= 1, got {n_hops}")
        self.sim = sim
        self.routers = [Router(f"P{i}") for i in range(n_hops + 1)]
        self.hop_links: List[Link] = []
        self.senders: List[Host] = []
        self.receivers: List[Host] = []

        rtt_estimate = 2.0 * hop_delay_s * n_hops
        buffer_bytes = max(
            1, int(buffer_bdp_multiple * bdp_bytes(hop_bandwidth_bps, rtt_estimate))
        )
        for i in range(n_hops):
            queue = DropTailQueue(buffer_bytes, lambda: sim.now)
            forward = Link(sim, f"hop{i}", hop_bandwidth_bps, hop_delay_s, queue)
            forward.attach(self.routers[i + 1])
            self.routers[i].set_default_route(forward)
            self.hop_links.append(forward)

        for i in range(n_hops):
            sender = Host(f"s{i}")
            receiver = Host(f"r{i}")
            up = Link(sim, f"pl-access-s{i}", DEFAULT_ACCESS_BANDWIDTH_BPS, 0.001)
            up.attach(self.routers[i])
            sender.set_uplink(up)

            down = Link(sim, f"pl-access-r{i}", DEFAULT_ACCESS_BANDWIDTH_BPS, 0.001)
            down.attach(receiver)
            self.routers[-1].add_route(receiver.name, down)

            # Reverse path: direct host-to-host link so ACKs skip the chain;
            # the experiments in this topology study forward congestion only.
            back = Link(sim, f"pl-back-r{i}", DEFAULT_ACCESS_BANDWIDTH_BPS, hop_delay_s)
            back.attach(sender)
            receiver.set_uplink(back)
            receiver.add_route(sender.name, back)

            self.senders.append(sender)
            self.receivers.append(receiver)

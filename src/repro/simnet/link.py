"""Point-to-point links.

A :class:`Link` is unidirectional: it serializes packets at a fixed
bandwidth, holds excess arrivals in an attached queue, and delivers each
packet to the destination node after a propagation delay.  Bidirectional
connectivity is modelled as two independent links (as in ns-2's duplex
links).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..telemetry import session as _telemetry_session
from .engine import Simulator
from .packet import Packet, PacketKind
from .queues import DropTailQueue

#: Module constant so the hot-path DATA check is one identity compare.
_DATA = PacketKind.DATA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .node import Node


class Link:
    """A unidirectional link with serialization, queueing, and propagation.

    Parameters
    ----------
    sim:
        The simulator the link schedules on.
    name:
        Human-readable identifier (e.g. ``"bottleneck"``).
    bandwidth_bps:
        Transmission rate in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    queue:
        The attached queue discipline.  If None, an unbounded
        :class:`DropTailQueue` is created.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        delay_s: float,
        queue: Optional[DropTailQueue] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_s}")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue(None, lambda: sim.now)
        self.dst_node: Optional["Node"] = None
        self._busy = False
        self.bytes_transmitted = 0
        self.packets_transmitted = 0
        # Conservation ledger (see repro.simcheck.conservation): every
        # packet offered to the link is eventually transmitted, queued,
        # dropped/flushed by the queue, or in serialization; every
        # transmitted packet is delivered unless a fault absorbs it or it
        # is still propagating.  Plain int increments, negligible cost.
        self.bytes_offered = 0
        self.packets_offered = 0
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self._busy_seconds = 0.0
        self._tx_started_at = 0.0
        self.created_at = sim.now
        # Hot-path bindings: serialization happens once per packet per
        # link, so precompute the per-byte wire time and skip the method
        # lookup for the scheduler.
        self._seconds_per_byte = 8.0 / bandwidth_bps
        self._schedule = sim.schedule

    def attach(self, dst_node: "Node") -> None:
        """Set the node that receives packets at the far end."""
        self.dst_node = dst_node

    def serialization_delay(self, packet: Packet) -> float:
        """Time to clock ``packet`` onto the wire at this link's bandwidth."""
        return packet.size_bytes * self._seconds_per_byte

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to the link.

        If the transmitter is idle the packet goes straight to the wire;
        otherwise it joins the queue (and may be dropped there).
        """
        self.packets_offered += 1
        self.bytes_offered += packet.size_bytes
        if self._busy:
            accepted = self.queue.enqueue(packet)
            if accepted:
                # Flight recorder: one session lookup + bool when off
                # (the drop branch is recorded by the queue itself).
                # Armed, it records the DATA lifecycle only (ACK feedback is
                # visible as transport cwnd events), and no occupancy
                # detail — a dict per enqueue costs real time on the hot
                # path; the drop funnel snapshots occupancy instead.
                rec = _telemetry_session().flightrec
                if rec.enabled and packet.kind is _DATA:
                    rec.simnet(
                        "enqueue", self.sim.now, self.name,
                        packet.flow_id, packet.packet_id,
                    )
            return
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        self._tx_started_at = self.sim.now
        tx_time = packet.size_bytes * self._seconds_per_byte
        self._schedule(tx_time, self._transmit_done, packet)

    def _transmit_done(self, packet: Packet) -> None:
        self.bytes_transmitted += packet.size_bytes
        self.packets_transmitted += 1
        self._busy_seconds += self.sim.now - self._tx_started_at
        self._schedule(self.delay_s, self._deliver, packet)
        next_packet = self.queue.dequeue()
        rec = _telemetry_session().flightrec
        if rec.enabled:
            now = self.sim.now
            if packet.kind is _DATA:
                rec.simnet(
                    "transmit", now, self.name, packet.flow_id, packet.packet_id
                )
            if next_packet is not None and next_packet.kind is _DATA:
                rec.simnet(
                    "dequeue", now, self.name,
                    next_packet.flow_id, next_packet.packet_id,
                )
        if next_packet is not None:
            self._transmit(next_packet)
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        if self.dst_node is None:
            raise RuntimeError(f"link {self.name} has no destination node attached")
        packet.hops += 1
        self.packets_delivered += 1
        self.bytes_delivered += packet.size_bytes
        # No flight-recorder emit here: delivery is implied by the
        # transmit record plus the link's fixed delay, and skipping it
        # keeps the armed recorder inside its 1.10x hot-path budget.
        self.dst_node.receive(packet, self)

    def utilization(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Fraction of ``[since, until]`` the transmitter was busy.

        Uses the bytes-transmitted counter, which is exact for completed
        transmissions; an in-flight transmission contributes its elapsed
        portion.
        """
        end = self.sim.now if until is None else until
        elapsed = end - since
        if elapsed <= 0:
            return 0.0
        busy = self._busy_seconds
        if self._busy:
            busy += self.sim.now - self._tx_started_at
        return min(1.0, busy / elapsed)

    @property
    def is_busy(self) -> bool:
        """Whether a packet is currently being serialized."""
        return self._busy


def bdp_bytes(bandwidth_bps: float, rtt_s: float) -> int:
    """Bandwidth-delay product in bytes, the paper's buffer-sizing unit."""
    return int(bandwidth_bps * rtt_s / 8.0)

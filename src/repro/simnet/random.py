"""Seeded random-number streams.

Every stochastic component (each workload source, the Remy trainer, the
IPFIX traffic model, ...) draws from its own named stream derived from a
single experiment seed, so runs are reproducible and adding a new
component never perturbs existing ones.  This mirrors ns-2's per-object
RNG substreams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A registry of independent, deterministically-derived RNG streams."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            derived = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            generator = np.random.default_rng((self.seed, derived))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """A child registry whose streams are independent of this one's."""
        derived = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
        return RngStreams(self.seed * 1_000_003 + derived)


def exponential(rng: np.random.Generator, mean: float) -> float:
    """One exponential draw with the given mean (mean <= 0 returns 0)."""
    if mean <= 0:
        return 0.0
    return float(rng.exponential(mean))

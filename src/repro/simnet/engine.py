"""Discrete-event simulation engine.

This is the core substrate that stands in for ns-2 in the paper's
evaluation: a single-threaded event loop with a binary-heap calendar.
Everything else in :mod:`repro.simnet` (links, queues, transport agents,
workload sources) schedules callbacks on a :class:`Simulator`.

Events fire in non-decreasing time order; ties are broken by insertion
order so the simulation is fully deterministic for a fixed seed.

The calendar stores plain ``(time, seq)`` tuples; callbacks and their
arguments live in a side table keyed by ``seq``.  Tuple comparison never
reaches past ``seq`` (sequence numbers are unique), so heap operations
avoid the dataclass ``__lt__`` dispatch entirely, cancellation is an
O(1) dictionary delete, and :attr:`Simulator.pending_events` is the live
size of the side table rather than an O(n) scan.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..telemetry import session as _telemetry_session


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class SimulationStalled(SimulationError):
    """A watchdog limit fired: the simulation is presumed runaway.

    Structured so a supervisor (see :mod:`repro.runner.resilience`) can
    decide whether to retry or quarantine the work item.  ``reason`` is
    ``"max_events"`` or ``"max_wall_s"``; the remaining fields snapshot
    the simulation at the moment the watchdog tripped.
    """

    def __init__(
        self,
        reason: str,
        limit: float,
        events_processed: int,
        wall_seconds: float,
        sim_now: float,
    ) -> None:
        super().__init__(
            f"simulation stalled ({reason} limit {limit} hit after "
            f"{events_processed} events, {wall_seconds:.3f}s wall, "
            f"sim time {sim_now:.6f}s)"
        )
        self.reason = reason
        self.limit = limit
        self.events_processed = events_processed
        self.wall_seconds = wall_seconds
        self.sim_now = sim_now

    def __reduce__(self):
        # Watchdog errors cross process boundaries (worker -> supervisor),
        # so pickling must rebuild via our five-argument constructor, not
        # the single-message Exception default.
        return (
            type(self),
            (
                self.reason,
                self.limit,
                self.events_processed,
                self.wall_seconds,
                self.sim_now,
            ),
        )


@dataclass(frozen=True)
class WatchdogConfig:
    """Limits for one simulation, enforced by :class:`SimWatchdog`.

    Attributes
    ----------
    max_events:
        Cumulative event budget for the simulation (``None`` = unlimited).
    max_wall_s:
        Wall-clock budget, measured from the first ``run()`` after the
        watchdog is installed (``None`` = unlimited).
    check_interval:
        Events between wall-clock reads; the event budget is checked on
        every event.  Keeps the per-event cost to integer compares.
    """

    max_events: Optional[int] = None
    max_wall_s: Optional[float] = None
    check_interval: int = 1024

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(f"max_events must be >= 1: {self.max_events}")
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise ValueError(f"max_wall_s must be positive: {self.max_wall_s}")
        if self.check_interval < 1:
            raise ValueError(f"check_interval must be >= 1: {self.check_interval}")


class SimWatchdog:
    """Opt-in runaway-simulation guard for :class:`Simulator`.

    Installed via :meth:`Simulator.install_watchdog`; the engine then
    calls :meth:`check` once per executed event and raises
    :class:`SimulationStalled` when either budget is exhausted.  When no
    watchdog is installed the engine pays a single ``is None`` test per
    event.
    """

    __slots__ = ("config", "_wall_started", "_wall_countdown")

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config or WatchdogConfig()
        self._wall_started: Optional[float] = None
        self._wall_countdown = self.config.check_interval

    def arm(self) -> None:
        """Start the wall clock (idempotent; first ``run()`` calls this)."""
        if self._wall_started is None:
            self._wall_started = _time.perf_counter()

    @property
    def wall_elapsed_s(self) -> float:
        """Wall seconds since the watchdog was armed (0 before arming)."""
        if self._wall_started is None:
            return 0.0
        return _time.perf_counter() - self._wall_started

    def check(self, sim: "Simulator") -> None:
        """Raise :class:`SimulationStalled` if a budget is exhausted."""
        cfg = self.config
        if cfg.max_events is not None and sim.events_processed >= cfg.max_events:
            self._record_trip("max_events", sim)
            raise SimulationStalled(
                "max_events",
                cfg.max_events,
                sim.events_processed,
                self.wall_elapsed_s,
                sim.now,
            )
        if cfg.max_wall_s is not None:
            self._wall_countdown -= 1
            if self._wall_countdown <= 0:
                self._wall_countdown = cfg.check_interval
                elapsed = self.wall_elapsed_s
                if elapsed > cfg.max_wall_s:
                    self._record_trip("max_wall_s", sim)
                    raise SimulationStalled(
                        "max_wall_s",
                        cfg.max_wall_s,
                        sim.events_processed,
                        elapsed,
                        sim.now,
                    )

    def _record_trip(self, reason: str, sim: "Simulator") -> None:
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.counter("sim.watchdog_trips", reason=reason).inc()
            tele.tracer.event(
                "sim.watchdog_trip",
                sim_time=sim.now,
                reason=reason,
                events_processed=sim.events_processed,
            )
        # A tripped watchdog is an anomaly: snapshot the flight-recorder
        # rings before SimulationStalled unwinds the stack.
        tele.flightrec.maybe_autodump(f"watchdog:{reason}", sim_time=sim.now)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_sim", "_time", "_seq", "_cancelled")

    def __init__(self, sim: "Simulator", time: float, seq: int) -> None:
        self._sim = sim
        self._time = time
        self._seq = seq
        self._cancelled = False

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op;
        the engine lazily discards the dead ``(time, seq)`` heap entries
        when they surface at the top of the calendar.
        """
        self._cancelled = True
        self._sim._entries.pop(self._seq, None)


class PhaseTimer:
    """Context manager that charges wall time to one named profile phase."""

    __slots__ = ("_profile", "_name", "_started")

    def __init__(self, profile: "SimProfile", name: str) -> None:
        self._profile = profile
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = _time.perf_counter() - self._started
        phases = self._profile.phase_seconds
        phases[self._name] = phases.get(self._name, 0.0) + elapsed


class SimProfile:
    """Opt-in lightweight metrics for the event loop.

    Tracks events executed and wall-clock seconds spent inside
    :meth:`Simulator.run` / :meth:`Simulator.step`, plus arbitrary named
    phases timed via :meth:`phase`.  Enabled through
    :meth:`Simulator.enable_profiling`; when disabled the engine pays
    nothing for it beyond a single ``is None`` check per ``run`` call.
    """

    __slots__ = (
        "events",
        "wall_seconds",
        "run_calls",
        "phase_seconds",
        "callbacks",
        "callback_stats",
    )

    def __init__(self, callbacks: bool = False) -> None:
        self.events = 0
        self.wall_seconds = 0.0
        self.run_calls = 0
        self.phase_seconds: Dict[str, float] = {}
        #: When True, the run loop times each event callback individually
        #: (slower; for ``--profile`` runs only).
        self.callbacks = callbacks
        #: ``qualname -> [count, total_seconds]``.  Event callbacks never
        #: dispatch nested events synchronously, so total time is self
        #: time at this granularity.
        self.callback_stats: Dict[str, List[float]] = {}

    def record_callback(self, name: str, elapsed: float) -> None:
        """Charge one dispatched event to ``name``."""
        stat = self.callback_stats.get(name)
        if stat is None:
            self.callback_stats[name] = [1, elapsed]
        else:
            stat[0] += 1
            stat[1] += elapsed

    def hottest(self, k: int = 10) -> List[Dict[str, Any]]:
        """Top-``k`` event callbacks by total wall time, hottest first."""
        ranked = sorted(
            self.callback_stats.items(), key=lambda item: -item[1][1]
        )
        return [
            {"callback": name, "count": int(stat[0]), "total_s": stat[1]}
            for name, stat in ranked[:k]
        ]

    @property
    def events_per_second(self) -> float:
        """Executed events per wall-clock second (0 before any run)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds

    def phase(self, name: str) -> PhaseTimer:
        """Time a named phase: ``with profile.phase("sweep"): ...``."""
        return PhaseTimer(self, name)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports (BENCH trajectory files)."""
        out = {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "run_calls": self.run_calls,
            "phase_seconds": dict(self.phase_seconds),
        }
        if self.callback_stats:
            out["callbacks"] = self.hottest(k=len(self.callback_stats))
        return out


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int]] = []
        self._entries: Dict[int, Tuple[Callable[..., None], Tuple[Any, ...]]] = {}
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._profile: Optional[SimProfile] = None
        self._watchdog: Optional[SimWatchdog] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued live (non-cancelled) events."""
        return len(self._entries)

    @property
    def profile(self) -> Optional[SimProfile]:
        """The active :class:`SimProfile`, or None when profiling is off."""
        return self._profile

    def enable_profiling(self, callbacks: bool = False) -> SimProfile:
        """Turn on run-loop metrics; returns the (idempotent) profile.

        ``callbacks=True`` additionally times each event callback by
        qualified name (``--profile`` in the CLI); upgrading an existing
        profile to callback mode is allowed, downgrading is not.
        """
        if self._profile is None:
            self._profile = SimProfile(callbacks=callbacks)
        elif callbacks:
            self._profile.callbacks = True
        return self._profile

    @property
    def watchdog(self) -> Optional[SimWatchdog]:
        """The installed :class:`SimWatchdog`, or None when unguarded."""
        return self._watchdog

    def install_watchdog(self, watchdog: SimWatchdog) -> SimWatchdog:
        """Guard subsequent ``run()`` calls with ``watchdog``."""
        self._watchdog = watchdog
        return watchdog

    def remove_watchdog(self) -> None:
        """Stop enforcing watchdog limits."""
        self._watchdog = None

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self._now}"
            )
        seq = next(self._seq)
        self._entries[seq] = (callback, args)
        heapq.heappush(self._heap, (time, seq))
        return EventHandle(self, time, seq)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the calendar is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def _discard_cancelled(self) -> None:
        heap = self._heap
        entries = self._entries
        while heap and heap[0][1] not in entries:
            heapq.heappop(heap)

    def step(self) -> bool:
        """Run the single next event. Returns False if nothing was pending."""
        heap = self._heap
        entries = self._entries
        pop = heapq.heappop
        while heap:
            time, seq = pop(heap)
            entry = entries.pop(seq, None)
            if entry is None:
                continue  # cancelled; discard lazily
            self._now = time
            self._events_processed += 1
            entry[0](*entry[1])
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the calendar drains, ``until`` passes, or
        ``max_events`` events have executed in this call.

        When the calendar is exhausted up to ``until``, the clock advances
        to ``until`` so a subsequent ``run`` resumes from there.  When the
        loop stops early on ``max_events`` with events still pending at or
        before ``until``, the clock stays at the last executed event so
        those events remain schedulable in the future.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        profile = self._profile
        started = _time.perf_counter() if profile is not None else 0.0
        profile_callbacks = profile is not None and profile.callbacks
        events_before = self._events_processed
        heap = self._heap
        entries = self._entries
        pop = heapq.heappop
        executed = 0
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.arm()
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                if watchdog is not None:
                    # Checked before the pop so a raised SimulationStalled
                    # never discards the event it interrupted.
                    watchdog.check(self)
                item = pop(heap)
                entry = entries.pop(item[1], None)
                if entry is None:
                    continue  # cancelled; discard lazily
                time = item[0]
                if until is not None and time > until:
                    # Not due yet: restore the event and stop.
                    entries[item[1]] = entry
                    heapq.heappush(heap, item)
                    break
                self._now = time
                self._events_processed += 1
                executed += 1
                if profile_callbacks:
                    callback = entry[0]
                    cb_started = _time.perf_counter()
                    callback(*entry[1])
                    profile.record_callback(
                        getattr(callback, "__qualname__", repr(callback)),
                        _time.perf_counter() - cb_started,
                    )
                else:
                    entry[0](*entry[1])
        finally:
            self._running = False
            if profile is not None:
                profile.run_calls += 1
                profile.wall_seconds += _time.perf_counter() - started
                profile.events += self._events_processed - events_before
            # Telemetry is charged once per run() call, not per event, so
            # the hot loop above stays untouched (the <=2% overhead budget).
            tele = _telemetry_session()
            if tele.enabled:
                registry = tele.registry
                registry.counter("sim.events").inc(
                    self._events_processed - events_before
                )
                registry.counter("sim.run_calls").inc()
                registry.gauge("sim.pending_events").set(len(entries))
                registry.gauge("sim.clock_s").set(self._now)
        if until is not None and self._now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self._now = until

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        self._heap.clear()
        self._entries.clear()

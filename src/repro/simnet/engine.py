"""Discrete-event simulation engine.

This is the core substrate that stands in for ns-2 in the paper's
evaluation: a single-threaded event loop with a binary-heap calendar.
Everything else in :mod:`repro.simnet` (links, queues, transport agents,
workload sources) schedules callbacks on a :class:`Simulator`.

Events fire in non-decreasing time order; ties are broken by insertion
order so the simulation is fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _Event:
    """A single calendar entry.

    Ordered by (time, seq); the callback itself never participates in
    comparisons.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op;
        the engine lazily discards cancelled entries when they surface.
        """
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self._now}"
            )
        event = _Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the calendar is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the single next event. Returns False if nothing was pending."""
        self._discard_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the calendar drains, ``until`` passes, or
        ``max_events`` events have executed in this call.

        When stopped by ``until``, the clock is advanced to ``until`` so a
        subsequent ``run`` resumes from there.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        self._heap.clear()

"""Instrumentation: link and queue monitors.

The Phi context server needs the "ground truth" congestion context —
bottleneck utilization ``u``, queue occupancy ``q``, and number of
competing senders ``n`` — for the ideal-sharing experiments, and the
benches need time series of utilization for reporting.  Monitors sample
on a fixed period and keep windowed histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional
from collections import deque

from ..telemetry import DEFAULT_BUCKETS, UTILIZATION_BUCKETS
from ..telemetry import mean as _mean
from ..telemetry import session as _telemetry_session
from .engine import Simulator
from .link import Link


@dataclass(frozen=True)
class LinkSample:
    """One periodic observation of a link."""

    time: float
    utilization: float
    queue_bytes: int
    queue_packets: int
    drop_rate: float


class LinkMonitor:
    """Periodically samples a link's utilization and queue occupancy.

    Utilization is measured per sampling interval (bytes clocked onto the
    wire during the interval over the interval's capacity), which matches
    how the paper characterizes "the utilization of the bottleneck link".
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        period_s: float = 0.1,
        history: int = 10_000,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        self.sim = sim
        self.link = link
        self.period_s = period_s
        self.samples: Deque[LinkSample] = deque(maxlen=history)
        self._last_bytes = link.bytes_transmitted
        self._last_drops = link.queue.stats.dropped_packets
        self._last_arrivals = (
            link.queue.stats.enqueued_packets + link.queue.stats.dropped_packets
        )
        self._started = False
        self._epoch = 0.0
        self._ticks = 0

    def start(self) -> None:
        """Begin periodic sampling (idempotent)."""
        if self._started:
            return
        self._started = True
        # Sample times are computed as epoch + k*period (one rounding per
        # tick) rather than by repeatedly adding the period, so a
        # week-long simulation does not accumulate float drift in its
        # sampling grid.
        self._epoch = self.sim.now
        self._ticks = 1
        self.sim.schedule_at(self._epoch + self.period_s, self._sample)

    def _sample(self) -> None:
        stats = self.link.queue.stats
        bytes_now = self.link.bytes_transmitted
        interval_bits = (bytes_now - self._last_bytes) * 8.0
        capacity_bits = self.link.bandwidth_bps * self.period_s
        utilization = min(1.0, interval_bits / capacity_bits)

        arrivals_now = stats.enqueued_packets + stats.dropped_packets
        drops_now = stats.dropped_packets
        interval_arrivals = arrivals_now - self._last_arrivals
        interval_drops = drops_now - self._last_drops
        drop_rate = interval_drops / interval_arrivals if interval_arrivals else 0.0

        self.samples.append(
            LinkSample(
                time=self.sim.now,
                utilization=utilization,
                queue_bytes=self.link.queue.bytes_queued,
                queue_packets=self.link.queue.packets_queued,
                drop_rate=drop_rate,
            )
        )
        self._last_bytes = bytes_now
        self._last_drops = drops_now
        self._last_arrivals = arrivals_now

        tele = _telemetry_session()
        if tele.enabled:
            registry = tele.registry
            link_name = self.link.name
            registry.histogram(
                "link.utilization", UTILIZATION_BUCKETS, link=link_name
            ).observe(utilization)
            registry.histogram(
                "link.queue_depth_pkts", DEFAULT_BUCKETS, link=link_name
            ).observe(self.link.queue.packets_queued)
            if interval_drops:
                registry.counter("link.drops", link=link_name).inc(interval_drops)

        self._ticks += 1
        self.sim.schedule_at(self._epoch + self._ticks * self.period_s, self._sample)

    def current_utilization(self, window: int = 10) -> float:
        """Mean utilization over the last ``window`` samples."""
        recent = list(self.samples)[-window:]
        return _mean([sample.utilization for sample in recent])

    def current_queue_bytes(self, window: int = 10) -> float:
        """Mean queue occupancy (bytes) over the last ``window`` samples."""
        recent = list(self.samples)[-window:]
        return _mean([sample.queue_bytes for sample in recent])

    def mean_utilization(self, since: float = 0.0) -> float:
        """Mean utilization across all samples taken at or after ``since``."""
        return _mean([s.utilization for s in self.samples if s.time >= since])

    def utilization_series(self) -> List[LinkSample]:
        """The full retained sample history, oldest first."""
        return list(self.samples)


class ActiveFlowTracker:
    """Counts concurrently active flows — the paper's ``n`` dimension.

    Transport agents call :meth:`flow_started` / :meth:`flow_finished`;
    the Phi context server reads :attr:`active_flows`.
    """

    def __init__(self) -> None:
        self.active_flows = 0
        self.total_flows = 0
        self.peak_active = 0
        self._events: List[tuple] = []

    def flow_started(self, flow_id: int, time: float) -> None:
        """Record that ``flow_id`` became active at ``time``."""
        self.active_flows += 1
        self.total_flows += 1
        self.peak_active = max(self.peak_active, self.active_flows)
        self._events.append((time, flow_id, +1))

    def flow_finished(self, flow_id: int, time: float) -> None:
        """Record that ``flow_id`` completed at ``time``."""
        if self.active_flows <= 0:
            raise RuntimeError("flow_finished without matching flow_started")
        self.active_flows -= 1
        self._events.append((time, flow_id, -1))

    def mean_active(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Time-weighted mean number of active flows in ``[since, until]``."""
        if not self._events:
            return 0.0
        end = until if until is not None else self._events[-1][0]
        if end <= since:
            return 0.0
        active = 0
        last_time = since
        weighted = 0.0
        for time, _flow_id, delta in self._events:
            if time > end:
                break
            if time > last_time:
                weighted += active * (time - max(last_time, since)) if time > since else 0.0
                last_time = max(time, since)
            active += delta
        if last_time < end:
            weighted += active * (end - last_time)
        return weighted / (end - since)

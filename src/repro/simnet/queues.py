"""Queueing disciplines.

The paper's experiments all use FIFO drop-tail queues ("the prevalence of
FIFO queueing makes the network not incentive compatible"), so
:class:`DropTailQueue` is the workhorse.  A priority variant is provided
for the Section 3.3 prioritization experiments.

All queues account occupancy both in packets and in bytes and keep a
time-weighted occupancy integral so monitors can report average queue
depth without sampling artifacts.  Every packet that enters a queue
leaves through exactly one of three doors — dequeue, drop, or flush —
so the conservation law

    ``enqueued == dequeued + flushed + still-queued``

holds at all times (see :meth:`DropTailQueue.assert_conservation`).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Callable, Deque, List, Optional, Tuple

from ..telemetry import session as _telemetry_session
from .packet import Packet


class QueueStats:
    """Counters shared by all queue disciplines."""

    __slots__ = (
        "enqueued_packets",
        "enqueued_bytes",
        "dequeued_packets",
        "dequeued_bytes",
        "dropped_packets",
        "dropped_bytes",
        "flushed_packets",
        "flushed_bytes",
        "occupancy_byte_seconds",
        "occupancy_packet_seconds",
        "last_change_time",
        "peak_packets",
        "peak_bytes",
    )

    def __init__(self, created_at: float = 0.0) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.flushed_packets = 0
        self.flushed_bytes = 0
        self.occupancy_byte_seconds = 0.0
        self.occupancy_packet_seconds = 0.0
        # A queue created mid-simulation must not integrate phantom
        # empty-queue occupancy back to t=0, so the integral starts at the
        # owning queue's creation time.
        self.last_change_time = created_at
        self.peak_packets = 0
        self.peak_bytes = 0

    def drop_rate(self) -> float:
        """Fraction of arriving packets that were dropped."""
        arrived = self.enqueued_packets + self.dropped_packets
        if arrived == 0:
            return 0.0
        return self.dropped_packets / arrived

    def mean_occupancy_bytes(self, elapsed: float) -> float:
        """Time-averaged queue occupancy in bytes over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.occupancy_byte_seconds / elapsed

    def mean_occupancy_packets(self, elapsed: float) -> float:
        """Time-averaged queue occupancy in packets over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.occupancy_packet_seconds / elapsed


class DropTailQueue:
    """A FIFO queue with a byte-capacity limit and drop-tail behaviour.

    Parameters
    ----------
    capacity_bytes:
        Maximum queued bytes.  An arriving packet that would exceed this is
        dropped (classic drop tail).  ``None`` means unbounded.
    clock:
        Zero-argument callable returning the current simulation time; used
        to stamp packets and integrate occupancy.  The occupancy integral
        starts at the clock's value at construction, so queues created
        mid-simulation (a flow joining at t=30) do not accrue phantom
        empty-queue time from t=0.
    on_drop:
        Optional callback invoked with each dropped packet (used by loss
        monitors and tests).
    """

    def __init__(
        self,
        capacity_bytes: Optional[int],
        clock: Callable[[], float],
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._clock = clock
        self._on_drop = on_drop
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.created_at = clock()
        self.stats = QueueStats(created_at=self.created_at)

    def __len__(self) -> int:
        return self._count()

    @property
    def bytes_queued(self) -> int:
        """Current occupancy in bytes."""
        return self._bytes

    @property
    def packets_queued(self) -> int:
        """Current occupancy in packets."""
        return self._count()

    def _integrate_occupancy(self) -> None:
        now = self._clock()
        elapsed = now - self.stats.last_change_time
        if elapsed > 0:
            self.stats.occupancy_byte_seconds += self._bytes * elapsed
            self.stats.occupancy_packet_seconds += self._count() * elapsed
        self.stats.last_change_time = now

    def _fits(self, packet: Packet) -> bool:
        if self.capacity_bytes is None:
            return True
        return self._bytes + packet.size_bytes <= self.capacity_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and drops it) when full."""
        self._integrate_occupancy()
        if not self._fits(packet):
            self._drop(packet)
            return False
        packet.enqueued_at = self._clock()
        self._append(packet)
        self._bytes += packet.size_bytes
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        self.stats.peak_packets = max(self.stats.peak_packets, self._count())
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._bytes)
        return True

    def _drop(self, packet: Packet) -> None:
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += packet.size_bytes
        # Flight recorder: the single drop funnel for every queue
        # discipline; the occupancy snapshot is what lets the post-mortem
        # attribute a stall to queue buildup rather than to a fault.
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.simnet(
                "drop", self._clock(), "queue",
                packet.flow_id, packet.packet_id,
                detail={
                    "queued_bytes": self._bytes,
                    "capacity_bytes": self.capacity_bytes,
                },
            )
        if self._on_drop is not None:
            self._on_drop(packet)

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or return None when empty."""
        self._integrate_occupancy()
        if not self._count():
            return None
        packet = self._popleft()
        self._bytes -= packet.size_bytes
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size_bytes
        return packet

    def flush(self) -> List[Packet]:
        """Remove and return all queued packets (used at teardown).

        Drained packets are credited to the ``flushed_*`` counters so the
        conservation law survives teardown.
        """
        self._integrate_occupancy()
        drained = self._drain()
        for packet in drained:
            self.stats.flushed_packets += 1
            self.stats.flushed_bytes += packet.size_bytes
        self._bytes = 0
        return drained

    def assert_conservation(self) -> None:
        """Raise AssertionError unless every packet is accounted for.

        Checks ``enqueued == dequeued + flushed + queued`` in both packets
        and bytes.  Cheap enough to call from tests and teardown paths.
        """
        stats = self.stats
        accounted_packets = (
            stats.dequeued_packets + stats.flushed_packets + self._count()
        )
        assert stats.enqueued_packets == accounted_packets, (
            f"packet conservation violated: enqueued={stats.enqueued_packets} "
            f"!= dequeued={stats.dequeued_packets} + "
            f"flushed={stats.flushed_packets} + queued={self._count()}"
        )
        accounted_bytes = stats.dequeued_bytes + stats.flushed_bytes + self._bytes
        assert stats.enqueued_bytes == accounted_bytes, (
            f"byte conservation violated: enqueued={stats.enqueued_bytes} "
            f"!= dequeued={stats.dequeued_bytes} + "
            f"flushed={stats.flushed_bytes} + queued={self._bytes}"
        )

    # -- storage hooks (overridden by PriorityQueue) -------------------
    def _count(self) -> int:
        return len(self._queue)

    def _append(self, packet: Packet) -> None:
        self._queue.append(packet)

    def _popleft(self) -> Packet:
        return self._queue.popleft()

    def _drain(self) -> List[Packet]:
        drained = list(self._queue)
        self._queue.clear()
        return drained


class PriorityQueue(DropTailQueue):
    """A strict-priority variant used for the Section 3.3 experiments.

    Packets with a *lower* ``priority`` value are dequeued first; within a
    priority class order is FIFO.  Capacity accounting and drop-tail
    behaviour are inherited unchanged.

    Storage is a binary heap keyed on ``(priority, arrival_seq)``, so
    both enqueue and dequeue are O(log n) — replacing the previous O(n)
    rotate-and-scan over the whole deque — while the arrival sequence
    number keeps same-priority packets in strict FIFO order.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int],
        clock: Callable[[], float],
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        super().__init__(capacity_bytes, clock, on_drop)
        self._pq: List[Tuple[int, int, Packet]] = []
        self._arrival = count()

    def _count(self) -> int:
        return len(self._pq)

    def _append(self, packet: Packet) -> None:
        heapq.heappush(self._pq, (packet.priority, next(self._arrival), packet))

    def _popleft(self) -> Packet:
        return heapq.heappop(self._pq)[2]

    def _drain(self) -> List[Packet]:
        # Drain in dequeue (priority, then FIFO) order.
        drained = [entry[2] for entry in sorted(self._pq)]
        self._pq.clear()
        return drained

"""Queueing disciplines.

The paper's experiments all use FIFO drop-tail queues ("the prevalence of
FIFO queueing makes the network not incentive compatible"), so
:class:`DropTailQueue` is the workhorse.  A priority variant is provided
for the Section 3.3 prioritization experiments.

All queues account occupancy both in packets and in bytes and keep a
time-weighted occupancy integral so monitors can report average queue
depth without sampling artifacts.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from .packet import Packet


class QueueStats:
    """Counters shared by all queue disciplines."""

    __slots__ = (
        "enqueued_packets",
        "enqueued_bytes",
        "dequeued_packets",
        "dequeued_bytes",
        "dropped_packets",
        "dropped_bytes",
        "occupancy_byte_seconds",
        "occupancy_packet_seconds",
        "last_change_time",
        "peak_packets",
        "peak_bytes",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.occupancy_byte_seconds = 0.0
        self.occupancy_packet_seconds = 0.0
        self.last_change_time = 0.0
        self.peak_packets = 0
        self.peak_bytes = 0

    def drop_rate(self) -> float:
        """Fraction of arriving packets that were dropped."""
        arrived = self.enqueued_packets + self.dropped_packets
        if arrived == 0:
            return 0.0
        return self.dropped_packets / arrived

    def mean_occupancy_bytes(self, elapsed: float) -> float:
        """Time-averaged queue occupancy in bytes over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.occupancy_byte_seconds / elapsed

    def mean_occupancy_packets(self, elapsed: float) -> float:
        """Time-averaged queue occupancy in packets over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.occupancy_packet_seconds / elapsed


class DropTailQueue:
    """A FIFO queue with a byte-capacity limit and drop-tail behaviour.

    Parameters
    ----------
    capacity_bytes:
        Maximum queued bytes.  An arriving packet that would exceed this is
        dropped (classic drop tail).  ``None`` means unbounded.
    clock:
        Zero-argument callable returning the current simulation time; used
        to stamp packets and integrate occupancy.
    on_drop:
        Optional callback invoked with each dropped packet (used by loss
        monitors and tests).
    """

    def __init__(
        self,
        capacity_bytes: Optional[int],
        clock: Callable[[], float],
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._clock = clock
        self._on_drop = on_drop
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        """Current occupancy in bytes."""
        return self._bytes

    @property
    def packets_queued(self) -> int:
        """Current occupancy in packets."""
        return len(self._queue)

    def _integrate_occupancy(self) -> None:
        now = self._clock()
        elapsed = now - self.stats.last_change_time
        if elapsed > 0:
            self.stats.occupancy_byte_seconds += self._bytes * elapsed
            self.stats.occupancy_packet_seconds += len(self._queue) * elapsed
        self.stats.last_change_time = now

    def _fits(self, packet: Packet) -> bool:
        if self.capacity_bytes is None:
            return True
        return self._bytes + packet.size_bytes <= self.capacity_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and drops it) when full."""
        self._integrate_occupancy()
        if not self._fits(packet):
            self._drop(packet)
            return False
        packet.enqueued_at = self._clock()
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        self.stats.peak_packets = max(self.stats.peak_packets, len(self._queue))
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._bytes)
        return True

    def _drop(self, packet: Packet) -> None:
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += packet.size_bytes
        if self._on_drop is not None:
            self._on_drop(packet)

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or return None when empty."""
        self._integrate_occupancy()
        if not self._queue:
            return None
        packet = self._popleft()
        self._bytes -= packet.size_bytes
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size_bytes
        return packet

    def _popleft(self) -> Packet:
        return self._queue.popleft()

    def flush(self) -> List[Packet]:
        """Remove and return all queued packets (used at teardown)."""
        self._integrate_occupancy()
        drained = list(self._queue)
        self._queue.clear()
        self._bytes = 0
        return drained


class PriorityQueue(DropTailQueue):
    """A strict-priority variant used for the Section 3.3 experiments.

    Packets with a *lower* ``priority`` value are dequeued first; within a
    priority class order is FIFO.  Capacity accounting and drop-tail
    behaviour are inherited unchanged.
    """

    def _popleft(self) -> Packet:
        best_index = 0
        best_priority = self._queue[0].priority
        for index, packet in enumerate(self._queue):
            if packet.priority < best_priority:
                best_priority = packet.priority
                best_index = index
        self._queue.rotate(-best_index)
        packet = self._queue.popleft()
        self._queue.rotate(best_index)
        return packet

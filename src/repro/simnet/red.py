"""RED (Random Early Detection) queue with optional ECN marking.

An extension beyond the paper's FIFO-only evaluation: the paper argues
FIFO's lack of incentive compatibility forces coordination; RED/ECN is
the classic in-network alternative.  The ablation bench compares Phi
coordination against RED to show they attack the same standing-queue
problem from opposite ends.

Implements the Floyd/Jacobson 1993 algorithm: EWMA of queue length,
linear drop/mark probability between ``min_thresh`` and ``max_thresh``,
forced drop above ``max_thresh``, with the count-based spacing of
drops.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .packet import Packet
from .queues import DropTailQueue


class RedQueue(DropTailQueue):
    """RED queue; marks (ECN) or drops early as the average queue grows."""

    def __init__(
        self,
        capacity_bytes: Optional[int],
        clock: Callable[[], float],
        rng: np.random.Generator,
        *,
        min_thresh_bytes: float,
        max_thresh_bytes: float,
        max_probability: float = 0.1,
        weight: float = 0.002,
        ecn: bool = False,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        super().__init__(capacity_bytes, clock, on_drop)
        if not 0 < min_thresh_bytes < max_thresh_bytes:
            raise ValueError(
                f"need 0 < min_thresh < max_thresh, got "
                f"{min_thresh_bytes} / {max_thresh_bytes}"
            )
        if not 0 < max_probability <= 1:
            raise ValueError(f"max_probability must be in (0, 1]: {max_probability}")
        if not 0 < weight <= 1:
            raise ValueError(f"weight must be in (0, 1]: {weight}")
        self.rng = rng
        self.min_thresh = min_thresh_bytes
        self.max_thresh = max_thresh_bytes
        self.max_probability = max_probability
        self.weight = weight
        self.ecn = ecn
        self.avg_queue_bytes = 0.0
        self.early_drops = 0
        self.ecn_marks = 0
        self._count_since_drop = -1

    def _update_average(self) -> None:
        self.avg_queue_bytes = (
            (1 - self.weight) * self.avg_queue_bytes
            + self.weight * self.bytes_queued
        )

    def _early_probability(self) -> float:
        if self.avg_queue_bytes < self.min_thresh:
            return 0.0
        if self.avg_queue_bytes >= self.max_thresh:
            return 1.0
        fraction = (self.avg_queue_bytes - self.min_thresh) / (
            self.max_thresh - self.min_thresh
        )
        return fraction * self.max_probability

    def enqueue(self, packet: Packet) -> bool:
        self._update_average()
        probability = self._early_probability()
        if probability >= 1.0:
            self._count_since_drop = 0
            self.early_drops += 1
            self._drop_with_stats(packet)
            return False
        if probability > 0.0:
            self._count_since_drop += 1
            # Spread drops out: effective p grows with packets since the
            # last drop, per the RED paper.
            denominator = max(1e-9, 1.0 - self._count_since_drop * probability)
            effective = min(1.0, probability / denominator)
            if self.rng.random() < effective:
                self._count_since_drop = 0
                if self.ecn:
                    self.ecn_marks += 1
                    packet.priority |= 0  # packets keep flowing when marked
                    # ECN marking is modelled as a drop-free congestion
                    # signal: the packet is enqueued, the mark counted.
                    return super().enqueue(packet)
                self.early_drops += 1
                self._drop_with_stats(packet)
                return False
        else:
            self._count_since_drop = -1
        return super().enqueue(packet)

    def _drop_with_stats(self, packet: Packet) -> None:
        # Route through the base class's drop accounting.
        self._integrate_occupancy()
        self._drop(packet)

"""Ensemble-level prioritization weights (Section 3.3).

"A single entity could have some of its flows be more (or less)
aggressive than others (say based on their 'importance'), while still
ensuring that the ensemble of flows remains TCP-friendly."

An :class:`EnsembleAllocator` turns per-flow importance scores into
aggressiveness *weights* that sum to the ensemble's flow count, so the
ensemble behaves in aggregate like the same number of standard
TCP-friendly flows while shifting capacity toward important flows —
the cross-host generalization of TCP Session / Congestion Manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence


@dataclass(frozen=True)
class FlowClass:
    """An importance class, e.g. HD video vs bulk backup."""

    name: str
    importance: float

    def __post_init__(self) -> None:
        if self.importance <= 0:
            raise ValueError(f"importance must be positive: {self.importance}")


@dataclass(frozen=True)
class WeightAssignment:
    """The aggressiveness weight assigned to one flow."""

    flow_id: int
    flow_class: str
    weight: float


class EnsembleAllocator:
    """Assigns TCP-friendliness-preserving weights across an ensemble."""

    def __init__(
        self,
        classes: Sequence[FlowClass],
        *,
        min_weight: float = 0.1,
        max_weight: float = 8.0,
    ) -> None:
        if not classes:
            raise ValueError("at least one flow class is required")
        if min_weight <= 0 or max_weight < min_weight:
            raise ValueError(
                f"invalid weight bounds: [{min_weight}, {max_weight}]"
            )
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        self._classes: Dict[str, FlowClass] = {c.name: c for c in classes}
        self.min_weight = min_weight
        self.max_weight = max_weight

    def class_names(self) -> List[str]:
        """Registered class names."""
        return list(self._classes)

    def allocate(self, flows: Mapping[int, str]) -> List[WeightAssignment]:
        """Weights for ``{flow_id: class_name}``, normalized to sum to n.

        The normalization is the TCP-friendliness invariant: n flows with
        weights summing to n consume, in aggregate, the fair share of n
        standard flows under AIMD-style sharing.
        """
        if not flows:
            return []
        unknown = {name for name in flows.values()} - set(self._classes)
        if unknown:
            raise ValueError(f"unknown flow classes: {sorted(unknown)}")

        raw = {
            flow_id: self._classes[name].importance
            for flow_id, name in flows.items()
        }
        n = len(raw)
        total = sum(raw.values())
        assignments = []
        for flow_id, name in flows.items():
            weight = raw[flow_id] / total * n
            weight = max(self.min_weight, min(self.max_weight, weight))
            assignments.append(
                WeightAssignment(flow_id=flow_id, flow_class=name, weight=weight)
            )
        # Clamping can disturb the sum; renormalize once within bounds.
        weight_sum = sum(a.weight for a in assignments)
        scale = n / weight_sum
        rescaled = []
        for assignment in assignments:
            weight = assignment.weight * scale
            weight = max(self.min_weight, min(self.max_weight, weight))
            rescaled.append(
                WeightAssignment(
                    flow_id=assignment.flow_id,
                    flow_class=assignment.flow_class,
                    weight=weight,
                )
            )
        return rescaled

    def ensemble_friendly(self, assignments: Sequence[WeightAssignment], tol: float = 0.05) -> bool:
        """Check the invariant: weights sum to ~n (within ``tol``)."""
        if not assignments:
            return True
        total = sum(a.weight for a in assignments)
        return abs(total - len(assignments)) <= tol * len(assignments)

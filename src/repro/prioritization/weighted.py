"""Weighted TCP senders (MulTCP-style).

A flow with weight ``w`` behaves like ``w`` standard AIMD flows: it adds
``w`` segments per RTT in congestion avoidance and gives back a
``1/(2w)`` fraction on loss.  An ensemble whose weights sum to ``n``
therefore competes like ``n`` standard flows — the mechanism behind
Section 3.3's "more (or less) aggressive than others ... while still
ensuring that the ensemble of flows remains TCP-friendly".
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simnet.engine import Simulator
from ..simnet.node import Host
from ..simnet.packet import MSS_BYTES, FlowSpec
from ..transport.base import TcpSender


class WeightedRenoSender(TcpSender):
    """AIMD sender scaled by a priority weight (MulTCP)."""

    flavour = "weighted-reno"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        *,
        weight: float = 1.0,
        window_init: float = 2.0,
        initial_ssthresh: float = 65536.0,
        mss: int = MSS_BYTES,
    ) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        super().__init__(
            sim,
            host,
            spec,
            flow_size_bytes,
            on_complete,
            window_init=window_init,
            initial_ssthresh=initial_ssthresh,
            mss=mss,
        )
        self.weight = weight

    def _on_ack_congestion_avoidance(self, acked_segments: float) -> None:
        # w segments per RTT: each ACKed segment adds w/cwnd.
        self.cwnd += self.weight * acked_segments / max(self.cwnd, 1.0)

    def _on_loss_event(self) -> None:
        # Give back a 1/(2w) fraction so w virtual flows shed one flow's
        # worth of the standard 1/2 decrease.
        decrease = 1.0 / (2.0 * self.weight)
        self.ssthresh = max(2.0, self.cwnd * (1.0 - decrease))
        self.cwnd = self.ssthresh

    def _on_timeout_event(self) -> None:
        decrease = 1.0 / (2.0 * self.weight)
        self.ssthresh = max(2.0, self.flight_segments * (1.0 - decrease))
        self.cwnd = 1.0


def weighted_factory(weight: float):
    """A SenderFactory producing :class:`WeightedRenoSender` with ``weight``."""

    def factory(
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:
        return WeightedRenoSender(
            sim, host, spec, flow_size_bytes, on_complete, weight=weight
        )

    return factory

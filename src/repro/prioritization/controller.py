"""Cross-host prioritization controller.

Bridges the :class:`~repro.prioritization.ensemble.EnsembleAllocator`
(which decides weights) and the simulator (which runs weighted senders
across *different hosts* of the same entity — "the prioritization
happens across hosts rather than within a single host").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..simnet.engine import Simulator
from ..simnet.packet import FlowIdAllocator, FlowSpec
from ..transport.base import ConnectionStats, TcpSender
from ..transport.sink import TcpSink
from .ensemble import EnsembleAllocator, WeightAssignment
from .weighted import WeightedRenoSender


@dataclass
class PrioritizedFlow:
    """One launched flow with its class and weight."""

    flow_id: int
    flow_class: str
    weight: float
    sender: TcpSender
    sink: TcpSink

    def finish(self) -> ConnectionStats:
        """Abort (if running) and collect stats."""
        if not self.sender.finished:
            self.sender.abort()
        self.sink.close()
        return self.sender.stats


class PriorityController:
    """Launches one entity's flows with ensemble-friendly weights."""

    def __init__(self, sim: Simulator, allocator: EnsembleAllocator) -> None:
        self.sim = sim
        self.allocator = allocator
        self.flows: List[PrioritizedFlow] = []

    def launch(
        self,
        pairs: Sequence[tuple],
        classes: Sequence[str],
        flow_ids: FlowIdAllocator,
        *,
        flow_size_bytes: int = 1_000_000_000,
    ) -> List[PrioritizedFlow]:
        """Start one persistent flow per (sender_host, receiver_host) pair.

        ``classes[i]`` names the importance class of flow ``i``.
        """
        if len(pairs) != len(classes):
            raise ValueError(
                f"{len(pairs)} host pairs but {len(classes)} class labels"
            )
        ids = [flow_ids.next_id() for _ in pairs]
        assignments = self.allocator.allocate(dict(zip(ids, classes)))
        weight_by_id: Dict[int, WeightAssignment] = {
            a.flow_id: a for a in assignments
        }
        launched = []
        for flow_id, (sender_host, receiver_host), flow_class in zip(
            ids, pairs, classes
        ):
            spec = FlowSpec(
                flow_id=flow_id,
                src=sender_host.name,
                src_port=30_000 + flow_id % 30_000,
                dst=receiver_host.name,
                dst_port=443,
            )
            sink = TcpSink(self.sim, receiver_host, spec)
            assignment = weight_by_id[flow_id]
            sender = WeightedRenoSender(
                self.sim,
                sender_host,
                spec,
                flow_size_bytes,
                weight=assignment.weight,
            )
            sender.start()
            flow = PrioritizedFlow(
                flow_id=flow_id,
                flow_class=flow_class,
                weight=assignment.weight,
                sender=sender,
                sink=sink,
            )
            self.flows.append(flow)
            launched.append(flow)
        return launched

    def finish_all(self) -> Dict[str, List[ConnectionStats]]:
        """Collect stats for every launched flow, grouped by class."""
        by_class: Dict[str, List[ConnectionStats]] = {}
        for flow in self.flows:
            by_class.setdefault(flow.flow_class, []).append(flow.finish())
        return by_class

    def throughput_by_class(self, duration_s: float) -> Dict[str, float]:
        """Aggregate Mbps per class over ``duration_s`` (call after run)."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        result: Dict[str, float] = {}
        for flow in self.flows:
            # bytes_goodput is finalized at completion/abort; for a still-
            # running flow, the cumulative ACK is the live equivalent.
            delivered = max(flow.sender.stats.bytes_goodput, flow.sender.snd_una)
            mbps = delivered * 8.0 / duration_s / 1e6
            result[flow.flow_class] = result.get(flow.flow_class, 0.0) + mbps
        return result

"""Cross-flow prioritization (Section 3.3): importance-weighted senders
whose ensemble stays TCP-friendly in aggregate."""

from .controller import PrioritizedFlow, PriorityController
from .ensemble import EnsembleAllocator, FlowClass, WeightAssignment
from .weighted import WeightedRenoSender, weighted_factory

__all__ = [
    "EnsembleAllocator",
    "FlowClass",
    "PrioritizedFlow",
    "PriorityController",
    "WeightAssignment",
    "WeightedRenoSender",
    "weighted_factory",
]

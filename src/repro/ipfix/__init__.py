"""IPFIX pipeline: synthetic egress traffic, 1-in-4096 sampling, /24+minute
aggregation, and the Section 2.1 sharing-opportunity analysis."""

from .analysis import (
    DEFAULT_THRESHOLDS,
    SharingStats,
    companion_counts,
    sharing_ccdf,
    sharing_stats,
)
from .collector import IpfixCollector, SlotSummary
from .records import EgressFlow, SampledHeader, dst_slash24, minute_slice
from .sampler import PAPER_SAMPLING_RATE, IpfixSampler
from .traffic import EgressTrafficModel, TrafficModelConfig

__all__ = [
    "DEFAULT_THRESHOLDS",
    "PAPER_SAMPLING_RATE",
    "EgressFlow",
    "EgressTrafficModel",
    "IpfixCollector",
    "IpfixSampler",
    "SampledHeader",
    "SharingStats",
    "SlotSummary",
    "TrafficModelConfig",
    "companion_counts",
    "dst_slash24",
    "minute_slice",
    "sharing_ccdf",
    "sharing_stats",
]

"""Sharing-opportunity analysis (the Section 2.1 numbers).

From the collector's per-slot flow sets, computes for every observed flow
how many *other* flows share its (/24, minute) slot — i.e. very likely
its WAN path — and summarizes the distribution.  The paper reports:
"50% of the flows share the WAN path with at least 5 other flows while
12% share it with at least 100 other flows".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .collector import IpfixCollector


@dataclass(frozen=True)
class SharingStats:
    """Distribution of per-flow co-sharing counts."""

    observations: int
    fraction_sharing_at_least: Dict[int, float]
    median_companions: float
    mean_companions: float

    def fraction_at_least(self, companions: int) -> float:
        """Fraction of flows sharing their slot with >= ``companions`` others."""
        if companions in self.fraction_sharing_at_least:
            return self.fraction_sharing_at_least[companions]
        raise KeyError(
            f"threshold {companions} not computed; available: "
            f"{sorted(self.fraction_sharing_at_least)}"
        )


#: The paper's two headline thresholds plus context points for the CDF.
DEFAULT_THRESHOLDS = (1, 5, 10, 50, 100, 500)


def companion_counts(collector: IpfixCollector) -> np.ndarray:
    """Per observed flow: the number of other flows in its slot."""
    pairs = collector.flows_with_slot_sizes()
    if not pairs:
        return np.zeros(0, dtype=np.int64)
    return np.array([size - 1 for _flow, size in pairs], dtype=np.int64)


def sharing_stats(
    collector: IpfixCollector,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
) -> SharingStats:
    """Summarize slot co-sharing over everything the collector saw."""
    counts = companion_counts(collector)
    if counts.size == 0:
        return SharingStats(
            observations=0,
            fraction_sharing_at_least={t: 0.0 for t in thresholds},
            median_companions=0.0,
            mean_companions=0.0,
        )
    fractions = {
        threshold: float(np.mean(counts >= threshold)) for threshold in thresholds
    }
    return SharingStats(
        observations=int(counts.size),
        fraction_sharing_at_least=fractions,
        median_companions=float(np.median(counts)),
        mean_companions=float(np.mean(counts)),
    )


def sharing_ccdf(collector: IpfixCollector) -> List[Tuple[int, float]]:
    """The full CCDF of companion counts: (k, P[companions >= k]).

    Returned at the distinct observed values, suitable for plotting the
    paper's in-text distribution as a curve.
    """
    counts = companion_counts(collector)
    if counts.size == 0:
        return []
    values = np.unique(counts)
    return [(int(v), float(np.mean(counts >= v))) for v in values]

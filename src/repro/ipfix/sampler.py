"""The IPFIX packet sampler.

Section 2.1: "The IPFIX sampling rate is set to 4096 at each router
meaning that one in 4096 packets traversing the router is sampled and the
headers of these sampled packets are reported to the centralized
collector service."

Sampling is modelled per flow: each of a flow's packets is independently
selected with probability ``1/rate`` (a Binomial draw), and the selected
packets' timestamps are placed uniformly over the flow's lifetime.  This
is statistically equivalent to enumerating every packet and orders of
magnitude cheaper — the bench samples tens of millions of packets per
simulated minute.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .records import EgressFlow, SampledHeader

#: The paper's sampling rate: one in 4096 packets.
PAPER_SAMPLING_RATE = 4096


class IpfixSampler:
    """1-in-N packet sampler feeding a collector."""

    def __init__(self, rng: np.random.Generator, rate: int = PAPER_SAMPLING_RATE) -> None:
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1: {rate}")
        self.rng = rng
        self.rate = rate
        self.packets_seen = 0
        self.packets_sampled = 0

    def sample_flow(self, flow: EgressFlow) -> List[SampledHeader]:
        """Headers of the flow's packets that the router sampled."""
        self.packets_seen += flow.packets
        n_sampled = int(self.rng.binomial(flow.packets, 1.0 / self.rate))
        self.packets_sampled += n_sampled
        if n_sampled == 0:
            return []
        if flow.duration_s > 0:
            offsets = self.rng.uniform(0.0, flow.duration_s, size=n_sampled)
        else:
            offsets = np.zeros(n_sampled)
        return [
            SampledHeader(
                four_tuple=flow.four_tuple,
                timestamp_s=flow.start_s + float(offset),
            )
            for offset in np.sort(offsets)
        ]

    def sample_flows(self, flows: Iterable[EgressFlow]) -> List[SampledHeader]:
        """Sample a batch of flows."""
        headers: List[SampledHeader] = []
        for flow in flows:
            headers.extend(self.sample_flow(flow))
        return headers

    @property
    def effective_rate(self) -> float:
        """Observed packets-per-sample (should approach ``rate``)."""
        if self.packets_sampled == 0:
            return float("inf")
        return self.packets_seen / self.packets_sampled

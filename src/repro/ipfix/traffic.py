"""Synthetic egress traffic model for a large cloud provider.

Substitutes the paper's proprietary IPFIX feed (documented in DESIGN.md).
The model captures the two properties Section 2.1's numbers rest on:

- **spatial skew**: destination /24 subnets have Zipf-like popularity (a
  handful of eyeball-ISP subnets receive a large share of flows — the
  "five computers" effect seen from the provider's egress), and
- **heavy-tailed flow sizes**: most flows are short, some are long video
  sessions, so per-flow packet counts follow a Pareto distribution.

Flow arrivals are Poisson within each minute, split across subnets by the
popularity weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from .records import EgressFlow


@dataclass(frozen=True)
class TrafficModelConfig:
    """Knobs of the synthetic egress model.

    Defaults are calibrated so the full pipeline (model -> 1-in-4096
    sampling -> /24+minute aggregation) lands near the paper's §2.1
    shape: ~50% of sampled flows sharing their slot with >= 5 others and
    ~10-15% with >= 100 others.
    """

    n_subnets: int = 8_000
    zipf_exponent: float = 1.05
    flows_per_minute: float = 25_000.0
    mean_duration_s: float = 8.0
    pareto_shape: float = 1.3
    min_packets: int = 8
    mean_packets: float = 400.0
    n_servers: int = 4_669  # the Netflix CDN server count from the paper

    def __post_init__(self) -> None:
        if self.n_subnets < 1:
            raise ValueError(f"n_subnets must be >= 1: {self.n_subnets}")
        if self.zipf_exponent <= 0:
            raise ValueError(f"zipf_exponent must be > 0: {self.zipf_exponent}")
        if self.flows_per_minute <= 0:
            raise ValueError(
                f"flows_per_minute must be > 0: {self.flows_per_minute}"
            )
        if self.pareto_shape <= 1.0:
            raise ValueError(
                f"pareto_shape must be > 1 for a finite mean: {self.pareto_shape}"
            )


class EgressTrafficModel:
    """Generates :class:`EgressFlow` streams minute by minute."""

    def __init__(self, config: TrafficModelConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        ranks = np.arange(1, config.n_subnets + 1, dtype=float)
        weights = ranks ** (-config.zipf_exponent)
        self._subnet_weights = weights / weights.sum()

    def subnet_ip(self, subnet_index: int, host: int) -> str:
        """A host address inside synthetic subnet ``subnet_index``."""
        if not 0 <= subnet_index < self.config.n_subnets:
            raise ValueError(f"subnet index out of range: {subnet_index}")
        high, low = divmod(subnet_index, 256)
        return f"100.{high}.{low}.{host}"

    def server_ip(self, server_index: int) -> str:
        """The provider-side (source) address of a server."""
        high, low = divmod(server_index % 65_536, 256)
        return f"203.{high}.{low}.1"

    def _draw_packets(self, count: int) -> np.ndarray:
        cfg = self.config
        # Pareto with mean ~= mean_packets: scale = mean * (a-1)/a.
        scale = cfg.mean_packets * (cfg.pareto_shape - 1.0) / cfg.pareto_shape
        draws = (self.rng.pareto(cfg.pareto_shape, count) + 1.0) * scale
        return np.maximum(cfg.min_packets, draws.astype(np.int64))

    def generate_minute(self, minute: int) -> List[EgressFlow]:
        """All flows *starting* within minute ``minute``."""
        cfg = self.config
        n_flows = int(self.rng.poisson(cfg.flows_per_minute))
        if n_flows == 0:
            return []
        subnet_indices = self.rng.choice(
            cfg.n_subnets, size=n_flows, p=self._subnet_weights
        )
        starts = minute * 60.0 + self.rng.uniform(0.0, 60.0, size=n_flows)
        durations = self.rng.exponential(cfg.mean_duration_s, size=n_flows)
        packets = self._draw_packets(n_flows)
        hosts = self.rng.integers(1, 255, size=n_flows)
        dst_ports = self.rng.integers(1024, 65_535, size=n_flows)
        servers = self.rng.integers(0, cfg.n_servers, size=n_flows)

        flows = []
        for i in range(n_flows):
            flows.append(
                EgressFlow(
                    src_ip=self.server_ip(int(servers[i])),
                    src_port=443,
                    dst_ip=self.subnet_ip(int(subnet_indices[i]), int(hosts[i])),
                    dst_port=int(dst_ports[i]),
                    start_s=float(starts[i]),
                    duration_s=float(durations[i]),
                    packets=int(packets[i]),
                )
            )
        return flows

    def generate(self, n_minutes: int) -> Iterator[List[EgressFlow]]:
        """Yield per-minute flow batches for ``n_minutes`` minutes."""
        if n_minutes < 1:
            raise ValueError(f"n_minutes must be >= 1: {n_minutes}")
        for minute in range(n_minutes):
            yield self.generate_minute(minute)

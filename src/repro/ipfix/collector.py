"""The centralized IPFIX collector.

Aggregates sampled headers into the paper's "compact spatio-temporal
granularity (/24 subnet and 1-minute time slice)" and counts the unique
4-tuples observed per slot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from .records import FourTuple, SampledHeader

SlotKey = Tuple[str, int]
"""(destination /24, minute index)."""


@dataclass(frozen=True)
class SlotSummary:
    """One (/24, minute) aggregation slot."""

    subnet: str
    minute: int
    unique_flows: int
    sampled_packets: int


class IpfixCollector:
    """Receives sampled headers and maintains per-slot flow sets."""

    def __init__(self) -> None:
        self._slots: Dict[SlotKey, Set[FourTuple]] = defaultdict(set)
        self._packets: Dict[SlotKey, int] = defaultdict(int)
        self.headers_received = 0

    def ingest(self, header: SampledHeader) -> None:
        """Fold one sampled header into the aggregation."""
        key = (header.dst_subnet, header.minute)
        self._slots[key].add(header.four_tuple)
        self._packets[key] += 1
        self.headers_received += 1

    def ingest_many(self, headers: Iterable[SampledHeader]) -> None:
        """Fold a batch of sampled headers in."""
        for header in headers:
            self.ingest(header)

    def slot_flow_counts(self) -> Dict[SlotKey, int]:
        """Unique 4-tuples per (/24, minute) slot."""
        return {key: len(flows) for key, flows in self._slots.items()}

    def slot_summaries(self) -> List[SlotSummary]:
        """All slots, as summary records."""
        return [
            SlotSummary(
                subnet=subnet,
                minute=minute,
                unique_flows=len(flows),
                sampled_packets=self._packets[(subnet, minute)],
            )
            for (subnet, minute), flows in self._slots.items()
        ]

    def flows_with_slot_sizes(self) -> List[Tuple[FourTuple, int]]:
        """Every observed (flow, slot-size) pair.

        A flow sampled in k slots yields k entries, matching the paper's
        per-flow-observation framing ("50% of the flows share the WAN path
        with at least 5 other flows").
        """
        result = []
        for flows in self._slots.values():
            size = len(flows)
            for flow in flows:
                result.append((flow, size))
        return result

    @property
    def slot_count(self) -> int:
        """Number of non-empty aggregation slots."""
        return len(self._slots)

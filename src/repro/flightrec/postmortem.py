"""Causal post-mortem over a flight-recorder dump.

Given a dump produced by an anomaly funnel (watchdog trip, invariant
violation, envelope failure, quarantined sweep point) or by
:meth:`~repro.flightrec.recorder.FlightRecorder.dump`, this module
reconstructs a per-flow timeline and attributes each *stall* — a gap in
a flow's activity longer than a threshold — to a cause, with sim-time
evidence spans backing every attribution.

Attribution taxonomy, in precedence order (a stall with evidence in
several categories is attributed to the highest):

1. ``injected-fault`` — the stall overlaps a fault window
   (``fault_begin``/``fault_end`` edges, or the ``start_s``/``end_s``
   carried on any fault event's detail).
2. ``breaker-failover`` — a circuit breaker opened, a failover ran, or
   every replica was suspended while the flow was silent.
3. ``queue-buildup`` — the flow's packets were drop-tailed at a queue
   whose occupancy was at capacity.
4. ``rto-backoff`` — the flow's own retransmission timer fired; the
   silence is Karn backoff.
5. ``context-degradation`` — the Phi context client was in a degraded
   mode (stale/fallback/distrusted) around the stall.
6. ``unknown`` — no recorded signal explains the gap (often evidence
   evicted from a ring; the dump header's eviction counts say so).

Pure analysis: everything here reads a dump, nothing touches the live
recorder, so it can run anywhere (CI, a laptop, long after the run).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .recorder import load_dump

#: Default inter-activity gap that counts as a stall, in sim seconds.
#: Chosen above MIN_RTO_S (0.2 s) so a single healthy RTO-scale quiet
#: period does not flag.
DEFAULT_STALL_THRESHOLD_S = 0.25

#: Phi context modes that count as degraded service.
DEGRADED_MODES = frozenset({"stale", "fallback", "distrusted"})

#: Attribution causes, highest precedence first.
CAUSES = (
    "injected-fault",
    "breaker-failover",
    "queue-buildup",
    "rto-backoff",
    "context-degradation",
    "unknown",
)


def _span(kind: str, start: float, end: float, description: str) -> Dict[str, Any]:
    return {"kind": kind, "start": start, "end": end, "description": description}


def fault_windows(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Every distinct injected-fault window visible in the dump.

    Windows come from two places: ``fault_begin``/``fault_end`` edge
    pairs (matched per component+fault), and the ``start_s``/``end_s``
    a fault event's detail carries — the latter survives even when the
    edges themselves were evicted from the ring.
    """
    windows: Dict[Tuple[str, str, float, float], Dict[str, Any]] = {}
    open_begins: Dict[Tuple[str, str], float] = {}
    for record in records:
        kind = record.get("kind", "")
        if not kind.startswith("fault"):
            continue
        detail = record.get("detail") or {}
        fault = str(detail.get("fault", "fault"))
        component = str(record.get("component", ""))
        start_s = detail.get("start_s")
        end_s = detail.get("end_s")
        if isinstance(start_s, (int, float)) and isinstance(end_s, (int, float)):
            key = (fault, component, float(start_s), float(end_s))
            windows.setdefault(
                key,
                {
                    "fault": fault,
                    "component": component,
                    "start": float(start_s),
                    "end": float(end_s),
                },
            )
            continue
        # Windowless fault (e.g. RandomLoss) or detail-less edge: pair
        # begin/end edges observationally.
        if kind == "fault_begin":
            open_begins[(fault, component)] = float(record["t"])
        elif kind == "fault_end":
            begun = open_begins.pop((fault, component), None)
            if begun is not None:
                key = (fault, component, begun, float(record["t"]))
                windows.setdefault(
                    key,
                    {
                        "fault": fault,
                        "component": component,
                        "start": begun,
                        "end": float(record["t"]),
                    },
                )
    return sorted(windows.values(), key=lambda w: (w["start"], w["end"]))


def _breaker_open_spans(
    phi_records: List[Dict[str, Any]], horizon: float
) -> List[Tuple[float, float]]:
    """Sim-time spans during which a circuit breaker sat open."""
    spans: List[Tuple[float, float]] = []
    opened: Optional[float] = None
    for record in phi_records:
        if record.get("kind") != "breaker":
            continue
        detail = record.get("detail") or {}
        t = float(record["t"])
        if detail.get("to") == "open":
            if opened is None:
                opened = t
        elif opened is not None:
            spans.append((opened, t))
            opened = None
    if opened is not None:
        spans.append((opened, horizon))
    return spans


def _mode_spans(
    phi_records: List[Dict[str, Any]], horizon: float
) -> List[Tuple[float, float, str]]:
    """(start, end, mode) spans of degraded Phi context modes."""
    spans: List[Tuple[float, float, str]] = []
    current: Optional[Tuple[float, str]] = None
    for record in phi_records:
        if record.get("kind") != "mode":
            continue
        detail = record.get("detail") or {}
        t = float(record["t"])
        mode = str(detail.get("to", ""))
        if current is not None:
            spans.append((current[0], t, current[1]))
            current = None
        if mode in DEGRADED_MODES:
            current = (t, mode)
    if current is not None:
        spans.append((current[0], horizon, current[1]))
    return spans


def _overlap(a0: float, a1: float, b0: float, b1: float) -> bool:
    return a0 < b1 and b0 < a1


class _Timeline:
    """One flow's reconstructed lifecycle."""

    __slots__ = ("flow_id", "times", "start", "end", "completed", "aborted", "events")

    def __init__(self, flow_id: int) -> None:
        self.flow_id = flow_id
        self.times: List[float] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.completed = False
        self.aborted = False
        self.events = 0


def _build_timelines(records: List[Dict[str, Any]]) -> Dict[int, _Timeline]:
    timelines: Dict[int, _Timeline] = {}
    for record in records:
        flow_id = record.get("flow_id", -1)
        if not isinstance(flow_id, int) or flow_id < 0:
            continue
        layer = record.get("layer")
        if layer not in ("simnet", "transport"):
            continue
        timeline = timelines.get(flow_id)
        if timeline is None:
            timeline = timelines[flow_id] = _Timeline(flow_id)
        t = float(record["t"])
        timeline.times.append(t)
        timeline.events += 1
        kind = record.get("kind")
        if kind == "flow_start":
            timeline.start = t
        elif kind == "flow_end":
            timeline.end = t
            timeline.completed = True
        elif kind == "flow_abort":
            timeline.end = t
            timeline.aborted = True
    for timeline in timelines.values():
        timeline.times.sort()
    return timelines


def _attribute_stall(
    flow_id: int,
    gap_start: float,
    gap_end: float,
    threshold: float,
    windows: List[Dict[str, Any]],
    breaker_spans: List[Tuple[float, float]],
    mode_spans: List[Tuple[float, float, str]],
    phi_instants: List[Dict[str, Any]],
    flow_drops: List[Dict[str, Any]],
    flow_rtos: List[Dict[str, Any]],
    flow_context: List[Dict[str, Any]],
) -> Tuple[str, List[Dict[str, Any]]]:
    """The cause of one stall plus every evidence span found for it.

    The evidence window opens one threshold *before* the gap starts:
    the event that silences a flow (a drop, a breaker trip) is recorded
    at or just before the last activity, not inside the silence.
    """
    ev_start = gap_start - threshold
    evidence: List[Dict[str, Any]] = []
    by_cause: Dict[str, bool] = {}

    for window in windows:
        if _overlap(ev_start, gap_end, window["start"], window["end"]):
            by_cause["injected-fault"] = True
            evidence.append(
                _span(
                    "injected-fault",
                    window["start"],
                    window["end"],
                    f"{window['fault']} on {window['component']} active "
                    f"[{window['start']:.3f}, {window['end']:.3f}]s",
                )
            )
    for span_start, span_end in breaker_spans:
        if _overlap(ev_start, gap_end, span_start, span_end):
            by_cause["breaker-failover"] = True
            evidence.append(
                _span(
                    "breaker-failover",
                    span_start,
                    span_end,
                    f"circuit breaker open [{span_start:.3f}, {span_end:.3f}]s",
                )
            )
    for record in phi_instants:
        t = float(record["t"])
        if ev_start <= t <= gap_end:
            by_cause["breaker-failover"] = True
            kind = record.get("kind")
            what = (
                "all replicas suspended"
                if kind == "all_suspended"
                else f"failover {record.get('detail') or {}}"
            )
            evidence.append(_span("breaker-failover", t, t, f"{what} at {t:.3f}s"))
    for record in flow_drops:
        t = float(record["t"])
        if ev_start <= t <= gap_end:
            by_cause["queue-buildup"] = True
            detail = record.get("detail") or {}
            evidence.append(
                _span(
                    "queue-buildup",
                    t,
                    t,
                    f"packet {record.get('packet_id')} drop-tailed at "
                    f"{detail.get('queued_bytes')}B queued "
                    f"(capacity {detail.get('capacity_bytes')}B) at {t:.3f}s",
                )
            )
    for record in flow_rtos:
        t = float(record["t"])
        if ev_start <= t <= gap_end:
            by_cause["rto-backoff"] = True
            detail = record.get("detail") or {}
            evidence.append(
                _span(
                    "rto-backoff",
                    t,
                    t,
                    f"RTO fired at {t:.3f}s (next timer {detail.get('rto_s')}s)",
                )
            )
    for span_start, span_end, mode in mode_spans:
        if _overlap(ev_start, gap_end, span_start, span_end):
            by_cause["context-degradation"] = True
            evidence.append(
                _span(
                    "context-degradation",
                    span_start,
                    span_end,
                    f"context mode {mode} [{span_start:.3f}, {span_end:.3f}]s",
                )
            )
    for record in flow_context:
        detail = record.get("detail") or {}
        if detail.get("decision") in DEGRADED_MODES:
            t = float(record["t"])
            by_cause["context-degradation"] = True
            evidence.append(
                _span(
                    "context-degradation",
                    t,
                    t,
                    f"flow started under {detail.get('decision')} context "
                    f"at {t:.3f}s",
                )
            )

    for cause in CAUSES:
        if by_cause.get(cause):
            return cause, evidence
    return "unknown", evidence


def analyze(
    header: Dict[str, Any],
    records: List[Dict[str, Any]],
    *,
    stall_threshold_s: float = DEFAULT_STALL_THRESHOLD_S,
    dump_path: str = "",
) -> Dict[str, Any]:
    """Reconstruct per-flow timelines and attribute every stall."""
    if stall_threshold_s <= 0:
        raise ValueError(f"stall threshold must be positive: {stall_threshold_s}")
    sim_time = header.get("sim_time")
    times = [float(r["t"]) for r in records] or [0.0]
    horizon = float(sim_time) if isinstance(sim_time, (int, float)) else max(times)

    phi_records = [r for r in records if r.get("layer") == "phi"]
    windows = fault_windows(records)
    breaker_spans = _breaker_open_spans(phi_records, horizon)
    mode_spans = _mode_spans(phi_records, horizon)
    phi_instants = [
        r for r in phi_records if r.get("kind") in ("failover", "all_suspended")
    ]
    context_events = [r for r in phi_records if r.get("kind") == "context"]

    timelines = _build_timelines(records)
    flows: List[Dict[str, Any]] = []
    cause_counts: Dict[str, int] = {}
    total_stalls = 0
    for flow_id in sorted(timelines):
        timeline = timelines[flow_id]
        first = timeline.times[0]
        start = timeline.start if timeline.start is not None else first
        # An unfinished flow extends to the dump horizon: the silence
        # from its last recorded activity to the anomaly is exactly the
        # stall a post-mortem is for.
        end = (
            timeline.end
            if timeline.end is not None
            else max(timeline.times[-1], horizon)
        )
        flow_drops = [
            r
            for r in records
            if r.get("layer") == "simnet"
            and r.get("kind") == "drop"
            and r.get("flow_id") == flow_id
        ]
        flow_rtos = [
            r
            for r in records
            if r.get("layer") == "transport"
            and r.get("kind") == "rto"
            and r.get("flow_id") == flow_id
        ]
        flow_context = [
            r
            for r in context_events
            if (r.get("detail") or {}).get("flow_id") == flow_id
        ]
        # Gaps between consecutive activity stamps, plus the final gap
        # to the flow's end (an unfinished flow silent at dump time is
        # exactly the stall a post-mortem is for).
        marks = [t for t in timeline.times if start <= t <= end]
        if not marks:
            marks = [start]
        checkpoints = marks + ([end] if end > marks[-1] else [])
        stalls: List[Dict[str, Any]] = []
        for previous, current in zip(checkpoints, checkpoints[1:]):
            gap = current - previous
            if gap <= stall_threshold_s:
                continue
            cause, evidence = _attribute_stall(
                flow_id,
                previous,
                current,
                stall_threshold_s,
                windows,
                breaker_spans,
                mode_spans,
                phi_instants,
                flow_drops,
                flow_rtos,
                flow_context,
            )
            stalls.append(
                {
                    "start": previous,
                    "end": current,
                    "duration_s": gap,
                    "cause": cause,
                    "evidence": evidence,
                }
            )
            cause_counts[cause] = cause_counts.get(cause, 0) + 1
            total_stalls += 1
        flows.append(
            {
                "flow_id": flow_id,
                "start": start,
                "end": end,
                "completed": timeline.completed,
                "aborted": timeline.aborted,
                "events": timeline.events,
                "stalls": stalls,
            }
        )

    return {
        "dump": dump_path,
        "anomaly": {
            "reason": header.get("reason"),
            "sim_time": sim_time,
            "layers": header.get("layers"),
        },
        "stall_threshold_s": stall_threshold_s,
        "fault_windows": windows,
        "flows": flows,
        "summary": {
            "flows": len(flows),
            "stalls": total_stalls,
            "causes": cause_counts,
        },
    }


def analyze_dump(
    path: str,
    *,
    stall_threshold_s: float = DEFAULT_STALL_THRESHOLD_S,
) -> Dict[str, Any]:
    """Load a dump from disk and run :func:`analyze` over it."""
    header, records = load_dump(path)
    return analyze(
        header, records, stall_threshold_s=stall_threshold_s, dump_path=path
    )


def render_text(analysis: Dict[str, Any], flow: Optional[int] = None) -> str:
    """The war-room rendering: one readable block per flow with stalls."""
    lines: List[str] = []
    anomaly = analysis.get("anomaly") or {}
    lines.append(f"post-mortem: {analysis.get('dump') or '<in-memory>'}")
    lines.append(
        f"  anomaly: {anomaly.get('reason') or 'manual dump'}"
        + (
            f" at sim t={anomaly['sim_time']:.3f}s"
            if isinstance(anomaly.get("sim_time"), (int, float))
            else ""
        )
    )
    windows = analysis.get("fault_windows") or []
    if windows:
        lines.append(f"  injected faults: {len(windows)}")
        for window in windows:
            lines.append(
                f"    - {window['fault']} on {window['component']} "
                f"[{window['start']:.3f}, {window['end']:.3f}]s"
            )
    summary = analysis.get("summary") or {}
    lines.append(
        f"  flows: {summary.get('flows', 0)}, stalls: {summary.get('stalls', 0)}"
    )
    causes = summary.get("causes") or {}
    if causes:
        mix = ", ".join(f"{cause}={count}" for cause, count in sorted(causes.items()))
        lines.append(f"  stall causes: {mix}")
    for entry in analysis.get("flows", []):
        if flow is not None and entry["flow_id"] != flow:
            continue
        if flow is None and not entry["stalls"]:
            continue
        status = (
            "completed"
            if entry["completed"]
            else ("aborted" if entry.get("aborted") else "unfinished")
        )
        lines.append(
            f"  flow {entry['flow_id']} [{entry['start']:.3f}, "
            f"{entry['end']:.3f}]s {status}, {entry['events']} events"
        )
        for stall in entry["stalls"]:
            lines.append(
                f"    stall [{stall['start']:.3f}, {stall['end']:.3f}]s "
                f"({stall['duration_s']:.3f}s) -> {stall['cause']}"
            )
            for span in stall["evidence"]:
                lines.append(f"      * {span['description']}")
    return "\n".join(lines)

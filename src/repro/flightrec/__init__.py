"""Flight recorder & causal post-mortem for the reproduction.

One session-scoped recorder (carried on the active
:class:`~repro.telemetry.TelemetrySession`) captures causally linked
lifecycle events across the simnet, transport, and phi layers; anomaly
funnels — simcheck invariant violations, watchdog trips, safety-envelope
failures, quarantined sweep points — snapshot its rings to a strict-JSON
dump; and :mod:`repro.flightrec.postmortem` reconstructs per-flow
timelines from a dump and attributes each stall to a cause.

Recording is **off by default** and costs one session lookup plus one
bool per instrumentation site when off (see
:mod:`repro.flightrec.recorder` for the contract).  Scope it like
telemetry::

    from repro import flightrec

    with flightrec.use(autodump_path="flightrec-run.jsonl") as rec:
        run_cubic_experiment(...)
        rec.dump("flightrec-run.jsonl", reason="manual")

The ``repro postmortem <dump>`` CLI renders the analysis; ``repro bench
gate`` guards the benchmark trajectories this PR's overhead contract is
recorded in.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .. import telemetry as _telemetry
from .recorder import (
    DEFAULT_FAULT_CAPACITY,
    DEFAULT_PHI_CAPACITY,
    DEFAULT_SIMNET_CAPACITY,
    DEFAULT_TRANSPORT_CAPACITY,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    iter_layer,
    load_dump,
)

__all__ = [
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "capture",
    "iter_layer",
    "load_dump",
    "session",
    "use",
]


def session() -> FlightRecorder:
    """The active recorder (the shared disabled one by default).

    This is the accessor every instrumentation site calls::

        rec = _flightrec_session()
        if rec.enabled:
            rec.simnet("drop", now, link.name, packet.flow_id, packet.packet_id)
    """
    return _telemetry.session().flightrec


@contextmanager
def use(
    recorder: Optional[FlightRecorder] = None,
    *,
    autodump_path: Optional[str] = None,
    simnet_capacity: int = DEFAULT_SIMNET_CAPACITY,
    transport_capacity: int = DEFAULT_TRANSPORT_CAPACITY,
    phi_capacity: int = DEFAULT_PHI_CAPACITY,
    fault_capacity: int = DEFAULT_FAULT_CAPACITY,
) -> Iterator[FlightRecorder]:
    """Scoped recording: activate a (new or given) recorder, restore after.

    The ambient metrics registry and tracer are preserved — recording
    composes with :func:`repro.telemetry.use` in either nesting order.
    """
    base = _telemetry.session()
    chosen = recorder or FlightRecorder(
        simnet_capacity=simnet_capacity,
        transport_capacity=transport_capacity,
        phi_capacity=phi_capacity,
        fault_capacity=fault_capacity,
        autodump_path=autodump_path,
    )
    combined = _telemetry.TelemetrySession(base.registry, base.tracer, chosen)
    with _telemetry.use(combined):
        yield chosen


@contextmanager
def capture(autodump_path: str, **capacities) -> Iterator[FlightRecorder]:
    """Record, and guarantee a dump at ``autodump_path`` on any failure.

    The anomaly funnels (watchdog, simcheck, envelope checks) dump at
    the moment they fire; this wrapper additionally dumps on any other
    exception unwinding the scope, so a crashing worker still leaves a
    post-mortem artifact behind.
    """
    with use(autodump_path=autodump_path, **capacities) as rec:
        try:
            yield rec
        except BaseException as exc:
            # An anomaly funnel (watchdog, invariant, envelope) that
            # already dumped recorded a more specific reason at the
            # moment it fired; don't overwrite it with the generic one.
            if rec.autodumps == 0:
                rec.maybe_autodump(f"{type(exc).__name__}: {exc}")
            raise

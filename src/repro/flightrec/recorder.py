"""The flight-recorder core: bounded per-layer rings of lifecycle events.

The recorder is the causal complement to the metrics registry: where a
counter says *how many* RTOs fired, the recorder says *which flow*, *at
what sim time*, and *what else was happening* — the enqueue that never
dequeued, the fault window that swallowed the retransmit, the breaker
that opened two RPCs earlier.  One bounded ring per layer:

- ``simnet``: enqueue/dequeue/transmit/drop and fault absorptions,
  carrying packet ids and the owning flow id;
- ``transport``: flow start/end, cwnd/ssthresh changes, RTO fires,
  recovery enter/exit, keyed by flow id;
- ``phi``: RPC outcomes, failovers, breaker transitions, and
  FRESH→STALE→FALLBACK/DISTRUSTED mode edges.

Cost contract (mirrors :mod:`repro.telemetry`): a disabled recorder is
the shared :data:`NULL_RECORDER` singleton, and every instrumentation
site pays one session lookup plus one ``enabled`` bool.  Enabled, each
event is a handful of scalar stores into a preallocated flat slot
buffer — no container allocation per event.  The flat rings are what
keep the armed recorder inside its 1.10x hot-path budget: appending a
tuple per event looks cheap but grows the garbage collector's tracked
set by tens of thousands of objects, and the resulting extra collection
passes over the whole simulation heap cost more than the appends
themselves (measured ~1.4x on the table-3 hot path; scalar stores into
preallocated slots allocate nothing the collector tracks).  No I/O, no
effect on the simulation trajectory — the budget is asserted in
``benchmarks/test_bench_flightrec.py``.

Serialization is strict JSON (``allow_nan=False``), one record per
line, with a header line carrying the per-layer eviction accounting and
the anomaly that triggered the dump.

Fault-injection events get a fourth, dedicated ring: they are rare but
attribution-critical (the post-mortem analyzer matches stalls against
fault windows), and a busy data plane would otherwise evict a fault
edge from the simnet ring long before the dump fires.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Default ring budgets, per layer.  The simnet ring is the largest
#: (several events per packet); phi the smallest (a handful of events
#: per connection).  At these sizes a fully warm recorder holds a few
#: MB and a dump is a few thousand lines.
DEFAULT_SIMNET_CAPACITY = 32768
DEFAULT_TRANSPORT_CAPACITY = 16384
DEFAULT_PHI_CAPACITY = 8192
DEFAULT_FAULT_CAPACITY = 4096

LAYERS = ("simnet", "transport", "phi", "fault")

#: Scalars per slot: simnet/transport/fault rings store six fields, phi
#: stores four (see the emitters for the positional schema).
_WIDE = 6
_PHI_WIDTH = 4

HEADER_NAME = "flightrec.header"


class FlightRecorder:
    """Bounded, layered ring buffers of causally linked lifecycle events."""

    enabled = True

    __slots__ = (
        "_simnet",
        "_transport",
        "_phi",
        "_fault",
        "_simnet_cap",
        "_transport_cap",
        "_phi_cap",
        "_fault_cap",
        "simnet_emitted",
        "transport_emitted",
        "phi_emitted",
        "fault_emitted",
        "autodump_path",
        "autodumps",
        "last_dump_reason",
    )

    def __init__(
        self,
        *,
        simnet_capacity: int = DEFAULT_SIMNET_CAPACITY,
        transport_capacity: int = DEFAULT_TRANSPORT_CAPACITY,
        phi_capacity: int = DEFAULT_PHI_CAPACITY,
        fault_capacity: int = DEFAULT_FAULT_CAPACITY,
        autodump_path: Optional[str] = None,
    ) -> None:
        if min(simnet_capacity, transport_capacity, phi_capacity,
               fault_capacity) < 1:
            raise ValueError("ring capacities must be >= 1")
        self._simnet_cap = simnet_capacity
        self._transport_cap = transport_capacity
        self._phi_cap = phi_capacity
        self._fault_cap = fault_capacity
        # Flat preallocated slot buffers (see module docstring for why
        # these are not deques of tuples).
        self._simnet: List[Any] = [None] * (simnet_capacity * _WIDE)
        self._transport: List[Any] = [None] * (transport_capacity * _WIDE)
        self._phi: List[Any] = [None] * (phi_capacity * _PHI_WIDTH)
        self._fault: List[Any] = [None] * (fault_capacity * _WIDE)
        self.simnet_emitted = 0
        self.transport_emitted = 0
        self.phi_emitted = 0
        self.fault_emitted = 0
        #: When set, :meth:`maybe_autodump` snapshots the rings here —
        #: the dump-on-anomaly hooks (watchdog trips, invariant
        #: violations, quarantined sweep points, envelope failures) all
        #: funnel through it.
        self.autodump_path = autodump_path
        self.autodumps = 0
        self.last_dump_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Hot-path emitters: scalar stores into a preallocated slot, fixed
    # positional schema, zero per-event container allocation.
    # ------------------------------------------------------------------
    def simnet(
        self,
        kind: str,
        t: float,
        component: str,
        flow_id: int = -1,
        packet_id: int = -1,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A simnet-layer event (link/queue/fault), keyed by packet id."""
        i = self.simnet_emitted
        self.simnet_emitted = i + 1
        base = (i % self._simnet_cap) * _WIDE
        buf = self._simnet
        buf[base] = t
        buf[base + 1] = kind
        buf[base + 2] = component
        buf[base + 3] = flow_id
        buf[base + 4] = packet_id
        buf[base + 5] = detail

    def transport(
        self,
        kind: str,
        t: float,
        flow_id: int,
        cwnd: float = -1.0,
        ssthresh: float = -1.0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A transport-layer event (cwnd/RTO/recovery), keyed by flow id."""
        i = self.transport_emitted
        self.transport_emitted = i + 1
        base = (i % self._transport_cap) * _WIDE
        buf = self._transport
        buf[base] = t
        buf[base + 1] = kind
        buf[base + 2] = flow_id
        buf[base + 3] = cwnd
        buf[base + 4] = ssthresh
        buf[base + 5] = detail

    def phi(
        self,
        kind: str,
        t: float,
        subject: str = "",
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A control-plane event (RPC/failover/breaker/mode edge)."""
        i = self.phi_emitted
        self.phi_emitted = i + 1
        base = (i % self._phi_cap) * _PHI_WIDTH
        buf = self._phi
        buf[base] = t
        buf[base + 1] = kind
        buf[base + 2] = subject
        buf[base + 3] = detail

    def fault(
        self,
        kind: str,
        t: float,
        component: str,
        flow_id: int = -1,
        packet_id: int = -1,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A fault-injection event (window edge, absorb, delay).

        Same shape as :meth:`simnet` but in its own small ring: fault
        edges must survive any volume of data-plane traffic because the
        post-mortem analyzer attributes stalls against their windows.
        """
        i = self.fault_emitted
        self.fault_emitted = i + 1
        base = (i % self._fault_cap) * _WIDE
        buf = self._fault
        buf[base] = t
        buf[base + 1] = kind
        buf[base + 2] = component
        buf[base + 3] = flow_id
        buf[base + 4] = packet_id
        buf[base + 5] = detail

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def simnet_evicted(self) -> int:
        return max(0, self.simnet_emitted - self._simnet_cap)

    @property
    def transport_evicted(self) -> int:
        return max(0, self.transport_emitted - self._transport_cap)

    @property
    def phi_evicted(self) -> int:
        return max(0, self.phi_emitted - self._phi_cap)

    @property
    def fault_evicted(self) -> int:
        return max(0, self.fault_emitted - self._fault_cap)

    def __len__(self) -> int:
        return (
            min(self.simnet_emitted, self._simnet_cap)
            + min(self.transport_emitted, self._transport_cap)
            + min(self.phi_emitted, self._phi_cap)
            + min(self.fault_emitted, self._fault_cap)
        )

    # ------------------------------------------------------------------
    # Snapshots and serialization
    # ------------------------------------------------------------------
    def _iter_slots(
        self, buf: List[Any], emitted: int, capacity: int, width: int
    ) -> Iterator[List[Any]]:
        """Retained slots of one ring, oldest emission first."""
        count = min(emitted, capacity)
        start = emitted - count  # emission number of the oldest survivor
        for k in range(count):
            base = ((start + k) % capacity) * width
            yield buf[base:base + width]

    def records(self) -> List[Dict[str, Any]]:
        """All retained records as dicts, time-sorted across layers.

        The sort is stable, so within a layer the emission order is
        preserved and the interleaving of layers at equal sim times is
        deterministic (simnet, then transport, then phi, then fault).
        """
        merged: List[Dict[str, Any]] = []
        for t, kind, component, flow_id, packet_id, detail in self._iter_slots(
            self._simnet, self.simnet_emitted, self._simnet_cap, _WIDE
        ):
            record = {
                "layer": "simnet",
                "kind": kind,
                "t": t,
                "component": component,
                "flow_id": flow_id,
                "packet_id": packet_id,
            }
            if detail is not None:
                record["detail"] = detail
            merged.append(record)
        for t, kind, flow_id, cwnd, ssthresh, detail in self._iter_slots(
            self._transport, self.transport_emitted, self._transport_cap, _WIDE
        ):
            record = {
                "layer": "transport",
                "kind": kind,
                "t": t,
                "flow_id": flow_id,
                "cwnd": cwnd,
                "ssthresh": ssthresh,
            }
            if detail is not None:
                record["detail"] = detail
            merged.append(record)
        for t, kind, subject, detail in self._iter_slots(
            self._phi, self.phi_emitted, self._phi_cap, _PHI_WIDTH
        ):
            record = {"layer": "phi", "kind": kind, "t": t, "subject": subject}
            if detail is not None:
                record["detail"] = detail
            merged.append(record)
        for t, kind, component, flow_id, packet_id, detail in self._iter_slots(
            self._fault, self.fault_emitted, self._fault_cap, _WIDE
        ):
            record = {
                "layer": "fault",
                "kind": kind,
                "t": t,
                "component": component,
                "flow_id": flow_id,
                "packet_id": packet_id,
            }
            if detail is not None:
                record["detail"] = detail
            merged.append(record)
        merged.sort(key=lambda record: record["t"])
        return merged

    def header(
        self, *, reason: Optional[str] = None, sim_time: Optional[float] = None
    ) -> Dict[str, Any]:
        """The dump header: anomaly context plus eviction accounting."""
        return {
            "name": HEADER_NAME,
            "kind": "header",
            "reason": reason,
            "sim_time": sim_time,
            "layers": {
                "simnet": {
                    "emitted": self.simnet_emitted,
                    "evicted": self.simnet_evicted,
                    "capacity": self._simnet_cap,
                },
                "transport": {
                    "emitted": self.transport_emitted,
                    "evicted": self.transport_evicted,
                    "capacity": self._transport_cap,
                },
                "phi": {
                    "emitted": self.phi_emitted,
                    "evicted": self.phi_evicted,
                    "capacity": self._phi_cap,
                },
                "fault": {
                    "emitted": self.fault_emitted,
                    "evicted": self.fault_evicted,
                    "capacity": self._fault_cap,
                },
            },
        }

    def dump(
        self,
        path: str,
        *,
        reason: Optional[str] = None,
        sim_time: Optional[float] = None,
    ) -> int:
        """Snapshot the rings to ``path`` as strict JSONL; retained count.

        The write is atomic (temp file + ``os.replace``) so a dump
        interrupted by a dying worker never leaves a torn artifact; a
        repeated dump to the same path (a later anomaly in the same run)
        replaces the earlier snapshot with a superset of its events.
        """
        records = self.records()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            # allow_nan=False: strict JSON, like every other artifact in
            # the repo (journals, manifests, check reports).
            handle.write(
                json.dumps(self.header(reason=reason, sim_time=sim_time),
                           allow_nan=False) + "\n"
            )
            for record in records:
                handle.write(json.dumps(record, allow_nan=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        self.last_dump_reason = reason
        return len(records)

    def maybe_autodump(
        self, reason: str, *, sim_time: Optional[float] = None
    ) -> Optional[str]:
        """Dump to the configured anomaly path, if one is set.

        This is the dump-on-anomaly funnel: cheap to call from anywhere
        (a no-op without ``autodump_path``), idempotent in effect
        (re-dumps replace), and counted so tests can assert it fired.
        """
        if self.autodump_path is None:
            return None
        self.dump(self.autodump_path, reason=reason, sim_time=sim_time)
        self.autodumps += 1
        return self.autodump_path

    def clear(self) -> None:
        self._simnet = [None] * (self._simnet_cap * _WIDE)
        self._transport = [None] * (self._transport_cap * _WIDE)
        self._phi = [None] * (self._phi_cap * _PHI_WIDTH)
        self._fault = [None] * (self._fault_cap * _WIDE)
        self.simnet_emitted = 0
        self.transport_emitted = 0
        self.phi_emitted = 0
        self.fault_emitted = 0
        self.autodumps = 0
        self.last_dump_reason = None


class NullFlightRecorder(FlightRecorder):
    """The shared disabled recorder: every emitter is an empty method.

    Instrumentation sites check ``enabled`` before building any event
    payload, so the per-site cost when disabled is one attribute load
    and one bool test.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(simnet_capacity=1, transport_capacity=1,
                         phi_capacity=1, fault_capacity=1)

    def simnet(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def transport(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def phi(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def fault(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def dump(self, path: str, **kwargs) -> int:
        return 0

    def maybe_autodump(self, reason: str, **kwargs) -> Optional[str]:
        return None


#: The process-wide disabled recorder (see :class:`NullFlightRecorder`).
NULL_RECORDER = NullFlightRecorder()


def load_dump(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a dump back: ``(header, records)``.

    Tolerates a missing header (returns an empty one) but not malformed
    JSON — a dump is written atomically, so damage means a real bug.
    """
    header: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("name") == HEADER_NAME:
                header = payload
            else:
                records.append(payload)
    return header, records


def iter_layer(
    records: List[Dict[str, Any]], layer: str
) -> Iterator[Dict[str, Any]]:
    """The records of one layer, in dump (time) order."""
    return (record for record in records if record.get("layer") == layer)


__all__ = [
    "DEFAULT_FAULT_CAPACITY",
    "DEFAULT_PHI_CAPACITY",
    "DEFAULT_SIMNET_CAPACITY",
    "DEFAULT_TRANSPORT_CAPACITY",
    "FlightRecorder",
    "HEADER_NAME",
    "LAYERS",
    "NULL_RECORDER",
    "NullFlightRecorder",
    "iter_layer",
    "load_dump",
]

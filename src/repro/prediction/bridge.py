"""Bridge from simulation transport statistics to the prediction store.

In a deployment, the provider's servers feed every completed connection
into the shared observation store; this adapter does the same for
simulated connections so the prediction pipeline can be exercised end to
end against traffic the simulator actually carried.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..transport.base import ConnectionStats, TcpSender
from .history import LocationKey, ObservationStore, PerfObservation


def observation_from_stats(
    stats: ConnectionStats,
    location: LocationKey,
) -> Optional[PerfObservation]:
    """Convert a connection's final stats into a performance observation.

    Returns None for connections that never carried data (nothing to
    learn from).
    """
    if stats.bytes_goodput <= 0 or stats.duration <= 0:
        return None
    rtt_ms = stats.mean_rtt * 1e3 if stats.rtt_samples else 0.0
    return PerfObservation(
        location=location,
        timestamp=stats.end_time,
        throughput_mbps=stats.throughput_bps / 1e6,
        rtt_ms=rtt_ms,
        loss_rate=stats.loss_indicator,
    )


class PredictionFeeder:
    """Wraps ``on_complete`` callbacks to feed an observation store.

    Usage with any sender factory::

        feeder = PredictionFeeder(store, location=("isp-a", "nyc"))
        sender = CubicSender(..., on_complete=feeder.wrap(original_callback))
    """

    def __init__(self, store: ObservationStore, location: LocationKey) -> None:
        self.store = store
        self.location = location
        self.recorded = 0
        self.skipped = 0

    def record(self, stats: ConnectionStats) -> None:
        """Feed one connection's stats into the store."""
        observation = observation_from_stats(stats, self.location)
        if observation is None:
            self.skipped += 1
            return
        self.store.record(observation)
        self.recorded += 1

    def wrap(
        self, on_complete: Optional[Callable[[TcpSender], None]] = None
    ) -> Callable[[TcpSender], None]:
        """A completion callback that records, then chains."""

        def callback(sender: TcpSender) -> None:
            self.record(sender.stats)
            if on_complete is not None:
                on_complete(sender)

        return callback

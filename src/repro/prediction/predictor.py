"""Performance prediction from pooled observations (Section 3.5).

"Before an application downloads a file or makes a VoIP call or launches
a video stream, it would be able to obtain an indication of the expected
performance."  Predictions are quantile-based over the location's recent
history, with a confidence grade driven by sample count; VoIP quality
uses a simplified ITU E-model mapping RTT and loss to a MOS score.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from .history import LocationKey, ObservationStore


class Confidence(Enum):
    """How much history backs a prediction."""

    NONE = "none"        # no data: caller should not rely on the estimate
    LOW = "low"          # < 10 observations
    MEDIUM = "medium"    # < 100 observations
    HIGH = "high"        # >= 100 observations

    @classmethod
    def from_samples(cls, n: int) -> "Confidence":
        """Grade from a sample count."""
        if n <= 0:
            return cls.NONE
        if n < 10:
            return cls.LOW
        if n < 100:
            return cls.MEDIUM
        return cls.HIGH


@dataclass(frozen=True)
class DownloadPrediction:
    """Expected download behaviour for a (location, size) pair."""

    expected_seconds: float
    p90_seconds: float
    expected_throughput_mbps: float
    confidence: Confidence


@dataclass(frozen=True)
class CallQualityPrediction:
    """Expected VoIP quality at a location."""

    mos: float                 # 1 (bad) .. 4.4 (toll quality ceiling)
    expected_rtt_ms: float
    expected_loss_rate: float
    acceptable: bool           # MOS >= 3.6 is conventionally "acceptable"
    confidence: Confidence


#: MOS floor/ceiling of the simplified E-model.
MOS_MIN, MOS_MAX = 1.0, 4.4

#: MOS threshold above which a call is conventionally acceptable.
ACCEPTABLE_MOS = 3.6


def e_model_mos(rtt_ms: float, loss_rate: float) -> float:
    """Simplified ITU-T G.107 E-model: R-factor -> MOS.

    R starts at 93.2 (G.711 defaults), degraded by one-way delay and by
    loss; MOS follows the standard cubic mapping.
    """
    if rtt_ms < 0:
        raise ValueError(f"rtt must be >= 0: {rtt_ms}")
    if not 0 <= loss_rate <= 1:
        raise ValueError(f"loss_rate must be in [0, 1]: {loss_rate}")
    one_way_ms = rtt_ms / 2.0
    # Delay impairment: negligible below 160 ms one-way, steep afterwards.
    id_factor = 0.024 * one_way_ms + 0.11 * max(0.0, one_way_ms - 177.3)
    # Loss impairment: Ie,eff = Ie + (95 - Ie) * Ppl / (Ppl + Bpl), with
    # Ie = 0 and packet-loss robustness Bpl = 4.3 (G.711, random loss).
    loss_pct = loss_rate * 100.0
    ie_factor = 95.0 * loss_pct / (loss_pct + 4.3)
    r = 93.2 - id_factor - ie_factor
    if r < 0:
        return MOS_MIN
    if r > 100:
        r = 100.0
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    return max(MOS_MIN, min(MOS_MAX, mos))


class PerformancePredictor:
    """Predicts download times and call quality from shared history."""

    def __init__(self, store: ObservationStore, min_samples: int = 3) -> None:
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {min_samples}")
        self.store = store
        self.min_samples = min_samples

    def predict_download_time(
        self,
        location: LocationKey,
        size_bytes: int,
        *,
        since: Optional[float] = None,
    ) -> DownloadPrediction:
        """Expected and 90th-percentile time to move ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive: {size_bytes}")
        observations = self.store.recent(location, since=since)
        confidence = Confidence.from_samples(len(observations))
        if len(observations) < self.min_samples:
            return DownloadPrediction(
                expected_seconds=float("inf"),
                p90_seconds=float("inf"),
                expected_throughput_mbps=0.0,
                confidence=Confidence.NONE
                if not observations
                else Confidence.LOW,
            )
        throughputs = np.array([o.throughput_mbps for o in observations])
        throughputs = throughputs[throughputs > 0]
        if throughputs.size == 0:
            return DownloadPrediction(
                expected_seconds=float("inf"),
                p90_seconds=float("inf"),
                expected_throughput_mbps=0.0,
                confidence=confidence,
            )
        median_mbps = float(np.median(throughputs))
        p10_mbps = float(np.percentile(throughputs, 10))
        bits = size_bytes * 8.0
        return DownloadPrediction(
            expected_seconds=bits / (median_mbps * 1e6),
            p90_seconds=bits / (max(p10_mbps, 1e-6) * 1e6),
            expected_throughput_mbps=median_mbps,
            confidence=confidence,
        )

    def predict_call_quality(
        self,
        location: LocationKey,
        *,
        since: Optional[float] = None,
    ) -> CallQualityPrediction:
        """Expected VoIP MOS at ``location`` from pooled RTT/loss history."""
        observations = self.store.recent(location, since=since)
        confidence = Confidence.from_samples(len(observations))
        if len(observations) < self.min_samples:
            return CallQualityPrediction(
                mos=MOS_MIN,
                expected_rtt_ms=float("inf"),
                expected_loss_rate=1.0,
                acceptable=False,
                confidence=Confidence.NONE
                if not observations
                else Confidence.LOW,
            )
        rtt = float(np.median([o.rtt_ms for o in observations]))
        loss = float(np.median([o.loss_rate for o in observations]))
        mos = e_model_mos(rtt, loss)
        return CallQualityPrediction(
            mos=mos,
            expected_rtt_ms=rtt,
            expected_loss_rate=loss,
            acceptable=mos >= ACCEPTABLE_MOS,
            confidence=confidence,
        )

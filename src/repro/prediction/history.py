"""Observation store for performance prediction.

Section 3.5: "the large volume of aggregate network performance data
available even within a single cloud provider would ... enable effective
performance prediction".  The store indexes past transfer/call
observations by network location (client AS + metro) so predictions can
be made from the experience of *other* clients in the same location.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

LocationKey = Tuple[str, str]
"""(client AS, metro)."""


@dataclass(frozen=True)
class PerfObservation:
    """One completed transfer or call, as recorded by a server."""

    location: LocationKey
    timestamp: float
    throughput_mbps: float
    rtt_ms: float
    loss_rate: float

    def __post_init__(self) -> None:
        if self.throughput_mbps < 0:
            raise ValueError(f"throughput must be >= 0: {self.throughput_mbps}")
        if self.rtt_ms < 0:
            raise ValueError(f"rtt must be >= 0: {self.rtt_ms}")
        if not 0 <= self.loss_rate <= 1:
            raise ValueError(f"loss_rate must be in [0, 1]: {self.loss_rate}")


class ObservationStore:
    """Bounded per-location history of performance observations."""

    def __init__(self, max_per_location: int = 10_000) -> None:
        if max_per_location < 1:
            raise ValueError(f"max_per_location must be >= 1: {max_per_location}")
        self.max_per_location = max_per_location
        self._by_location: Dict[LocationKey, Deque[PerfObservation]] = defaultdict(
            lambda: deque(maxlen=self.max_per_location)
        )
        self.total_observations = 0

    def record(self, observation: PerfObservation) -> None:
        """Store one observation."""
        self._by_location[observation.location].append(observation)
        self.total_observations += 1

    def recent(
        self,
        location: LocationKey,
        *,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[PerfObservation]:
        """Observations for ``location``, newest last."""
        observations = list(self._by_location.get(location, ()))
        if since is not None:
            observations = [o for o in observations if o.timestamp >= since]
        if limit is not None:
            observations = observations[-limit:]
        return observations

    def sample_count(self, location: LocationKey) -> int:
        """How many observations are held for ``location``."""
        return len(self._by_location.get(location, ()))

    def locations(self) -> List[LocationKey]:
        """All locations with at least one observation."""
        return list(self._by_location)

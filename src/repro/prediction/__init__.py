"""Performance prediction (Section 3.5): quantile predictions of download
time and VoIP quality from location-pooled observations."""

from .bridge import PredictionFeeder, observation_from_stats
from .history import LocationKey, ObservationStore, PerfObservation
from .predictor import (
    ACCEPTABLE_MOS,
    MOS_MAX,
    MOS_MIN,
    CallQualityPrediction,
    Confidence,
    DownloadPrediction,
    PerformancePredictor,
    e_model_mos,
)

__all__ = [
    "ACCEPTABLE_MOS",
    "MOS_MAX",
    "MOS_MIN",
    "CallQualityPrediction",
    "Confidence",
    "DownloadPrediction",
    "LocationKey",
    "ObservationStore",
    "PerfObservation",
    "PerformancePredictor",
    "PredictionFeeder",
    "e_model_mos",
    "observation_from_stats",
]

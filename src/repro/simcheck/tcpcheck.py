"""TCP sender invariant checks and zero-overhead installation hooks.

Checks run at the sender's *stable points* — after a fully processed ACK
(:meth:`~repro.transport.base.TcpSender.handle_packet`) and after an RTO
fires — when the window bookkeeping must be consistent:

- ``0 <= snd_una <= snd_nxt <= flow_size``;
- ``cwnd >= 1`` (every flavour, including the whisker table, clamps at
  one segment);
- ``pipe_segments >= 0`` and the SACK scoreboard never covers more than
  the outstanding byte range;
- RTO timer discipline: a finished sender has no armed RTO, and a sender
  with data outstanding always has one.

Installation is per-instance monkeypatching (``install_sender_checks``
wraps ``handle_packet``/``_on_rto`` as instance attributes), so senders
in an unchecked run carry no wrapper and pay exactly nothing — the same
strict no-op contract as telemetry.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..transport.base import TcpSender
from ..workload.onoff import SenderFactory
from .violations import InvariantViolation, ViolationReport, record_violation

#: Slack for float window comparisons (cwnd is a float of segments).
_CWND_EPSILON = 1e-9


def check_sender_invariants(
    sender: TcpSender,
    report: Optional[ViolationReport] = None,
) -> None:
    """Verify one sender's window/timer invariants at a stable point."""
    subject = f"flow-{sender.spec.flow_id}"
    now = sender.sim.now

    def fail(invariant: str, message: str, **details: float) -> None:
        record_violation(
            InvariantViolation(
                invariant, subject, message, sim_time=now, details=dict(details)
            ),
            report,
        )

    if not 0 <= sender.snd_una <= sender.snd_nxt <= sender.flow_size:
        fail(
            "tcp.sequence_order",
            f"snd_una={sender.snd_una} snd_nxt={sender.snd_nxt} "
            f"flow_size={sender.flow_size} out of order",
            snd_una=sender.snd_una,
            snd_nxt=sender.snd_nxt,
        )
    if not math.isfinite(sender.cwnd) or sender.cwnd < 1.0 - _CWND_EPSILON:
        fail("tcp.cwnd_floor", f"cwnd={sender.cwnd} below one segment", cwnd=sender.cwnd)
    if sender.pipe_segments < 0:
        fail(
            "tcp.pipe_negative",
            f"pipe_segments={sender.pipe_segments}",
            pipe=sender.pipe_segments,
        )
    sacked = sender._sacked.total_bytes
    outstanding = sender.snd_nxt - sender.snd_una
    if sacked > outstanding:
        fail(
            "tcp.sack_overrun",
            f"SACK scoreboard covers {sacked}B of {outstanding}B outstanding",
            sacked=sacked,
            outstanding=outstanding,
        )

    rto_armed = sender._rto_handle is not None and not sender._rto_handle.cancelled
    if sender.finished and rto_armed:
        fail("tcp.rto_after_finish", "RTO armed on a finished sender")
    if not sender.finished and outstanding > 0 and not rto_armed:
        fail(
            "tcp.rto_disarmed",
            f"{outstanding}B outstanding but no RTO armed",
            outstanding=outstanding,
        )
    if report is not None:
        report.counted(6)


def install_sender_checks(
    sender: TcpSender,
    report: Optional[ViolationReport] = None,
) -> TcpSender:
    """Wrap ``sender`` so invariants are verified at every stable point.

    Wraps ``handle_packet`` and ``_on_rto`` as instance attributes; call
    before :meth:`~repro.transport.base.TcpSender.start` so the first
    armed timer resolves the wrapped method.  Returns the sender.
    """
    original_handle = sender.handle_packet
    original_on_rto = sender._on_rto

    def checked_handle(packet) -> None:
        original_handle(packet)
        check_sender_invariants(sender, report)

    def checked_on_rto() -> None:
        original_on_rto()
        check_sender_invariants(sender, report)

    sender.handle_packet = checked_handle  # type: ignore[method-assign]
    sender._on_rto = checked_on_rto  # type: ignore[method-assign]
    return sender


def checked_factory(
    factory: SenderFactory,
    report: Optional[ViolationReport] = None,
) -> SenderFactory:
    """A :class:`SenderFactory` whose senders carry invariant checks."""

    def build(
        sim, host, spec, flow_size_bytes: int, on_complete: Callable
    ) -> TcpSender:
        sender = factory(sim, host, spec, flow_size_bytes, on_complete)
        return install_sender_checks(sender, report)

    return build
